//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `Bencher::iter`, benchmark groups with `sample_size` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock measurement loop.
//! No statistical analysis, plots, or HTML reports: each benchmark prints
//! `name  median ±spread  (n samples)` to stdout. Good enough to compare
//! orders of magnitude, which is what the in-repo benches are for.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 60;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId(name.to_string())
    }
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, keeping one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample takes ~1ms, bounding total runtime while
        // keeping per-sample timer error small for fast routines.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < Duration::from_millis(1) {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        self.iters_per_sample = calibration_iters.max(1);

        let samples = self.samples.capacity();
        for _ in 0..samples {
            let sample_start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(sample_start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = per_iter[per_iter.len() / 2];
    let spread = per_iter[per_iter.len() - 1] - per_iter[0];
    println!(
        "{name:<50} {:>12} ±{:<10} ({} samples)",
        format_time(median),
        format_time(spread),
        per_iter.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
