//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization framework under serde's names. Unlike real serde's
//! visitor architecture, this shim routes everything through one concrete
//! data model: [`Value`], a JSON-shaped tree. [`Serialize`] renders into a
//! `Value`, [`Deserialize`] reads back out of one, and `serde_json` (the
//! sibling shim) converts `Value` to and from JSON text.
//!
//! Supported derive surface (see `serde_derive`): structs with named
//! fields, externally-tagged enums (unit / newtype / tuple / struct
//! variants), container `#[serde(from = "T", into = "T")]`, and field
//! `#[serde(skip)]`, `#[serde(default)]`, `#[serde(default = "path")]`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serialization data model: a JSON-shaped tree.
///
/// Maps preserve insertion order so serialized output is deterministic and
/// follows declaration order, like serde_json's `preserve_order` mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also covers unsigned values up to `i64::MAX`;
    /// larger magnitudes fall back to `Float`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// A (de)serialization error: a plain message, like `serde::de::Error`
/// collapsed to its `custom` case.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    other => Err(type_error("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => {
                u64::try_from(*i).map_err(|_| Error::custom(format!("{i} out of range")))
            }
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
            other => Err(type_error("integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_error("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(type_error("single-character string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::custom("array length mismatch after parse"))
            }
            other => Err(type_error("fixed-length array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(type_error("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(type_error("3-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output — HashMap iteration order is not.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Seq(items)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ------------------------------------------------- derive support helpers

/// Internals used by the generated code of `#[derive(Serialize)]` /
/// `#[derive(Deserialize)]`. Not part of the public API surface.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Reads a required struct field.
    pub fn field<T: Deserialize>(value: &Value, name: &str, ty: &str) -> Result<T, Error> {
        match value.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
            None => Err(Error::custom(format!("{ty}: missing field '{name}'"))),
        }
    }

    /// Reads an optional struct field, falling back to `default`.
    pub fn field_or<T: Deserialize>(
        value: &Value,
        name: &str,
        ty: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        match value.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
            None => Ok(default()),
        }
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`.
    /// Unit variants are encoded as a bare string with no payload.
    pub fn variant<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
        match value {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "{ty}: expected variant string or single-key object, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts the payload of a multi-field tuple variant.
    pub fn tuple<'v>(
        payload: &'v Value,
        arity: usize,
        ty: &str,
        variant: &str,
    ) -> Result<&'v [Value], Error> {
        match payload {
            Value::Seq(items) if items.len() == arity => Ok(items),
            other => Err(Error::custom(format!(
                "{ty}::{variant}: expected {arity}-element array, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).expect("u64"), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).expect("i64"), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).expect("f64"), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).expect("str"), "hi");
        assert!(bool::from_value(&true.to_value()).expect("bool"));
        let v: Vec<usize> = Vec::from_value(&vec![1usize, 2, 3].to_value()).expect("vec");
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u32> = Option::from_value(&Value::Null).expect("none");
        assert_eq!(o, None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2usize);
        m.insert("a".to_string(), 1usize);
        let Value::Map(entries) = m.to_value() else {
            panic!("expected map")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }

    #[test]
    fn errors_name_the_problem() {
        let err = bool::from_value(&Value::Int(1)).expect_err("type clash");
        assert!(err.to_string().contains("bool"));
    }
}
