//! Offline stand-in for `serde_json`.
//!
//! Renders the workspace `serde` shim's [`Value`] tree to JSON text and
//! parses it back. Floats are written with Rust's `{}` formatting, which is
//! shortest-roundtrip exact, so a serialize → parse cycle reproduces every
//! finite `f64` bit-for-bit (integral floats print without a fraction and
//! come back as `Value::Int`, which numeric deserializers accept).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON (de)serialization error: a message, optionally with the byte
/// offset where parsing failed.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// An insertion-ordered JSON object under construction, mirroring
/// `serde_json::Map<String, Value>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any previous value for it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Value {
        Value::Map(map.entries)
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Map(self.entries.clone())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from object syntax (`json!({"k": expr, ...})`) or any
/// serializable expression (`json!(expr)`). Unlike real serde_json, nested
/// objects must themselves be `json!(...)` calls.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::to_value(&$value)); )*
        $crate::Value::from(map)
    }};
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ------------------------------------------------------------------ write

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(items.iter(), '[', ']', indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o);
            });
        }
        Value::Map(entries) => {
            write_bracketed(
                entries.iter(),
                '{',
                '}',
                indent,
                depth,
                out,
                |(k, v), d, o| {
                    write_string(k, o);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(v, indent, d, o);
                },
            );
        }
    }
}

fn write_bracketed<I, T>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, usize, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parse

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate follows.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -1e-300, 81.66666666666667_f64] {
            let text = to_string(&f).expect("serializes");
            let back: f64 = from_str(&text).expect("parses");
            assert_eq!(f.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash \t tab \u{1}ctl émoji 🎈";
        let text = to_string(&String::from(original)).expect("serializes");
        let back: String = from_str(&text).expect("parses");
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let back: String = from_str(r#""🎈""#).expect("parses");
        assert_eq!(back, "🎈");
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1usize, "b": vec![1.5f64, 2.5], "c": "text"});
        let text = to_string(&v).expect("serializes");
        assert_eq!(text, r#"{"a":1,"b":[1.5,2.5],"c":"text"}"#);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let mut map = Map::new();
        map.insert("nested".to_string(), json!({"x": 1i64}));
        map.insert("list".to_string(), json!(vec![true, false]));
        let text = to_string_pretty(&map).expect("serializes");
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).expect("parses");
        assert_eq!(back, Value::from(map));
    }

    #[test]
    fn map_insert_replaces() {
        let mut map = Map::new();
        assert!(map.insert("k".to_string(), Value::Int(1)).is_none());
        assert_eq!(
            map.insert("k".to_string(), Value::Int(2)),
            Some(Value::Int(1))
        );
        assert_eq!(map.len(), 1);
        assert_eq!(map.get("k"), Some(&Value::Int(2)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
