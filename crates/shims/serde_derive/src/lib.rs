//! Offline stand-in for `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls against the workspace
//! `serde` shim's `Value` data model. The item is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` — the container has no
//! crates.io access), which bounds the supported shapes to what this
//! workspace uses:
//!
//! - unit structs and structs with named fields (no generics)
//! - enums with unit, tuple, and struct variants, externally tagged
//! - container attrs `#[serde(from = "T")]`, `#[serde(into = "T")]`
//! - field attrs `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`
//!
//! Field types are never parsed for meaning — the generated code leans on
//! type inference (`__private::field::<T>` in struct-literal position), so
//! any type implementing the traits works. Unsupported shapes produce a
//! `compile_error!` rather than silently wrong code.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
    /// `Some(None)` = `#[serde(default)]`; `Some(Some(path))` = explicit.
    default: Option<Option<String>>,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    UnitStruct,
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    from: Option<String>,
    into: Option<String>,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item, mode),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive: generated code failed to re-parse")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from = None;
    let mut into = None;

    while is_punct(tokens.get(i), '#') {
        let Some(TokenTree::Group(g)) = tokens.get(i + 1) else {
            return Err("serde_derive: malformed attribute".to_string());
        };
        for (key, val) in serde_attr_entries(g) {
            match key.as_str() {
                "from" => from = val,
                "into" => into = val,
                _ => {}
            }
        }
        i += 2;
    }
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected type name".to_string()),
    };
    i += 1;
    if is_punct(tokens.get(i), '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported"
        ));
    }

    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Body::UnitStruct,
        ("struct", None) => Body::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Struct(parse_fields(g)?)
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g)?)
        }
        _ => {
            return Err(format!(
                "serde_derive: unsupported shape for `{name}` (tuple structs, unions, \
                 and `where` clauses are not handled)"
            ));
        }
    };
    Ok(Item {
        name,
        from,
        into,
        body,
    })
}

fn is_punct(token: Option<&TokenTree>, ch: char) -> bool {
    matches!(token, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn is_ident(token: Option<&TokenTree>, word: &str) -> bool {
    matches!(token, Some(TokenTree::Ident(id)) if id.to_string() == word)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if is_ident(tokens.get(*i), "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Extracts `(key, value)` pairs from one `#[...]` attribute group if it is
/// a `serde(...)` attribute; other attributes (doc comments, `#[default]`,
/// ...) yield nothing.
fn serde_attr_entries(attr: &Group) -> Vec<(String, Option<String>)> {
    let tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
    if !is_ident(tokens.first(), "serde") {
        return Vec::new();
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(key) = &toks[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if is_punct(toks.get(i), '=') {
            if let Some(TokenTree::Literal(lit)) = toks.get(i + 1) {
                value = Some(unquote(&lit.to_string()));
            }
            i += 2;
        }
        entries.push((key, value));
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
    entries
}

fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

fn parse_fields(body: &Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = None;
        while is_punct(tokens.get(i), '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                for (key, val) in serde_attr_entries(g) {
                    match key.as_str() {
                        "skip" => skip = true,
                        "default" => default = Some(val),
                        _ => {}
                    }
                }
            }
            i += 2;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde_derive: expected field name".to_string()),
        };
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            return Err(format!("serde_derive: expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: groups are atomic token trees, but generic-argument
        // commas (`HashMap<String, u32>`) sit at this level, so track angle
        // depth and stop at a depth-0 comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

fn parse_variants(body: &Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while is_punct(tokens.get(i), '#') {
            i += 2; // variant attrs (doc comments, #[default]) carry nothing we need
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde_derive: expected variant name".to_string()),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Struct(parse_fields(g)?)
            }
            _ => VariantBody::Unit,
        };
        if !is_punct(tokens.get(i), ',') && tokens.get(i).is_some() {
            return Err(format!(
                "serde_derive: unsupported tokens after variant `{name}` \
                 (explicit discriminants are not handled)"
            ));
        }
        i += 1;
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

/// Counts comma-separated fields of a tuple variant, respecting angle depth.
fn count_tuple_fields(args: &Group) -> usize {
    let tokens: Vec<TokenTree> = args.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// --------------------------------------------------------------- generate

fn generate(item: &Item, mode: Mode) -> String {
    match mode {
        Mode::Serialize => generate_serialize(item),
        Mode::Deserialize => generate_deserialize(item),
    }
}

fn generate_serialize(item: &Item) -> String {
    let ty = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.body {
            Body::UnitStruct => "::serde::Value::Null".to_string(),
            Body::Struct(fields) => struct_to_value(fields, "&self."),
            Body::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Unit => {
                            arms.push_str(&format!(
                                "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),\n"
                            ));
                        }
                        VariantBody::Tuple(1) => {
                            arms.push_str(&format!(
                                "{ty}::{vn}(f0) => ::serde::Value::Map(vec![\
                                 (::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))]),\n"
                            ));
                        }
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{ty}::{vn}({}) => ::serde::Value::Map(vec![\
                                 (::std::string::String::from({vn:?}), ::serde::Value::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            ));
                        }
                        VariantBody::Struct(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            arms.push_str(&format!(
                                "{ty}::{vn} {{ {} }} => ::serde::Value::Map(vec![\
                                 (::std::string::String::from({vn:?}), {})]),\n",
                                binds.join(", "),
                                struct_to_value(fields, "")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// `Value::Map(...)` over named fields; `access` prefixes each field name
/// (`&self.` for structs, empty for struct-variant bindings).
fn struct_to_value(fields: &[Field], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let n = &f.name;
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({access}{n}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn generate_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = if let Some(proxy) = &item.from {
        format!(
            "let proxy = <{proxy} as ::serde::Deserialize>::from_value(value)?;\n\
             ::core::result::Result::Ok(::core::convert::From::from(proxy))"
        )
    } else {
        match &item.body {
            Body::UnitStruct => format!("::core::result::Result::Ok({ty})"),
            Body::Struct(fields) => format!(
                "if !matches!(value, ::serde::Value::Map(_)) {{\n\
                 return ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"{ty}: expected object, found {{}}\", value.kind())));\n}}\n\
                 ::core::result::Result::Ok({ty} {{ {} }})",
                fields_from_value(fields, ty, "value")
            ),
            Body::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let ctx = format!("{ty}::{vn}");
                    match &v.body {
                        VariantBody::Unit => {
                            arms.push_str(&format!(
                                "{vn:?} => ::core::result::Result::Ok({ty}::{vn}),\n"
                            ));
                        }
                        VariantBody::Tuple(1) => {
                            arms.push_str(&format!(
                                "{vn:?} => {{\nlet payload = {};\n\
                                 ::core::result::Result::Ok({ty}::{vn}(\
                                 ::serde::Deserialize::from_value(payload)?))\n}}\n",
                                require_payload(&ctx)
                            ));
                        }
                        VariantBody::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            arms.push_str(&format!(
                                "{vn:?} => {{\nlet payload = {};\n\
                                 let items = ::serde::__private::tuple(payload, {n}, {ty:?}, {vn:?})?;\n\
                                 ::core::result::Result::Ok({ty}::{vn}({}))\n}}\n",
                                require_payload(&ctx),
                                elems.join(", ")
                            ));
                        }
                        VariantBody::Struct(fields) => {
                            arms.push_str(&format!(
                                "{vn:?} => {{\nlet payload = {};\n\
                                 ::core::result::Result::Ok({ty}::{vn} {{ {} }})\n}}\n",
                                require_payload(&ctx),
                                fields_from_value(fields, &ctx, "payload")
                            ));
                        }
                    }
                }
                format!(
                    "let (variant, payload) = ::serde::__private::variant(value, {ty:?})?;\n\
                     match variant {{\n{arms}\
                     other => ::core::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"{ty}: unknown variant '{{other}}'\"))),\n}}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {ty} {{\n\
         fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}

fn require_payload(ctx: &str) -> String {
    format!(
        "match payload {{\n\
         ::core::option::Option::Some(p) => p,\n\
         ::core::option::Option::None => return ::core::result::Result::Err(\
         ::serde::Error::custom({:?})),\n}}",
        format!("{ctx}: missing payload")
    )
}

/// Struct-literal field initializers reading out of `src` (a `&Value`).
fn fields_from_value(fields: &[Field], ctx: &str, src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skip {
                format!("{n}: ::core::default::Default::default()")
            } else {
                match &f.default {
                    None => format!("{n}: ::serde::__private::field({src}, {n:?}, {ctx:?})?"),
                    Some(None) => format!(
                        "{n}: ::serde::__private::field_or({src}, {n:?}, {ctx:?}, \
                         ::core::default::Default::default)?"
                    ),
                    Some(Some(path)) => {
                        format!("{n}: ::serde::__private::field_or({src}, {n:?}, {ctx:?}, {path})?")
                    }
                }
            }
        })
        .collect();
    inits.join(", ")
}
