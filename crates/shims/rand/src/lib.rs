//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *subset* of `rand`'s API it actually uses: [`RngCore`], [`Rng`]
//! (`gen_range`, `gen_bool`, `gen`), [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`]/`choose`. The value streams are
//! deterministic for a given seed but are **not** bit-compatible with the
//! real `rand` crate — every consumer in this workspace only relies on
//! determinism, not on a particular stream.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform 53-bit fraction in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform draw between two endpoints. Mirrors real `rand`'s
/// `SampleUniform` so that [`SampleRange`] can be a single blanket impl per
/// range shape — that structure is what lets `gen_range(1..=6)` fall back
/// to `i32` for unannotated integer literals.
pub trait SampleUniform: Sized {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can be drawn from (the `SampleRange` machinery of real
/// `rand`, collapsed to what the workspace needs).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(&self.start, &self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start(), self.end(), true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: &Self,
                hi: &Self,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let (lo, hi) = (*lo, *hi);
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                if span == 0 {
                    // Full-width inclusive range.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self) < p
    }

    /// A uniform `f64` in `[0, 1)` (the only `gen::<T>()` the workspace
    /// draws).
    fn gen(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice shuffling and choosing.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic under the caller's RNG.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` look-alike for glob imports.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but serviceable mixer for unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
