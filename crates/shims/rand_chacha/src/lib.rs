//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! implementing the workspace `rand` shim's [`RngCore`]/[`SeedableRng`].
//!
//! The stream is deterministic for a seed (the property every consumer in
//! this workspace relies on) but is not bit-compatible with the real
//! `rand_chacha` crate, whose seeding and word-consumption order differ.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Keystream words of the current block.
    block: [u32; 16],
    /// Next unread index into `block`; 16 = exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Produces the next keystream block and advances the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds, four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expands the 64-bit seed into a 256-bit key with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let first: Vec<u64> = (0..8)
            .map(|_| ChaCha8Rng::seed_from_u64(42).next_u64())
            .collect();
        assert!(first.iter().all(|&w| w == first[0]));
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    /// RFC 8439 quarter-round test vector (the core we build on).
    #[test]
    fn quarter_round_vector() {
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn words_are_well_distributed() {
        // A crude sanity check: bytes of the stream hit all 4 quartiles.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0usize; 4];
        for _ in 0..4000 {
            buckets[(rng.next_u32() >> 30) as usize] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 800), "{buckets:?}");
    }
}
