//! Offline stand-in for `proptest`.
//!
//! Reproduces the slice of proptest's API this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_filter`/`prop_recursive`,
//! regex-literal string strategies, `prop::collection`/`prop::option`,
//! `any`, and the `proptest!`/`prop_assert*` macros — on top of the
//! workspace `rand` shim. Two deliberate simplifications versus the real
//! crate:
//!
//! - **No shrinking.** A failing case panics with the inputs embedded in
//!   the assertion message instead of a minimized counterexample.
//! - **Fixed seeding.** Every test function draws from a ChaCha8 stream
//!   with a hard-coded seed, so runs are fully deterministic and
//!   `.proptest-regressions` files are ignored.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

/// The RNG driving all generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::Rng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`, retrying (bounded) until one passes.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Builds recursive structures: `recurse` receives a strategy for
        /// the previous depth level and embeds it. `_desired_size` and
        /// `_expected_branch_size` are accepted for signature parity but
        /// unused — depth alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 candidates in a row",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.0.len());
            self.0[pick].generate(rng)
        }
    }

    impl<T: Clone> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T: Clone> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample(self.clone(), rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod string {
    //! String generation from the regex subset used as strategy literals:
    //! char classes (`[a-z0-9-]`, `[ -~]`), `\PC` (any non-control
    //! character), literal characters, and the quantifiers `{m}`, `{m,n}`,
    //! `?`, `*`, `+` (the unbounded ones capped at 8 repetitions).

    use super::TestRng;
    use rand::Rng;

    enum CharSet {
        /// Inclusive ranges; single chars are `(c, c)`.
        Ranges(Vec<(char, char)>),
        /// `\PC`: any unicode scalar that is not a control character.
        NotControl,
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize,
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.gen_range(atom.min..atom.max + 1);
            for _ in 0..count {
                out.push(pick(&atom.set, rng));
            }
        }
        out
    }

    fn pick(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut index = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if index < span {
                        return char::from_u32(*lo as u32 + index)
                            .expect("range endpoints are valid chars");
                    }
                    index -= span;
                }
                unreachable!("index within total span")
            }
            CharSet::NotControl => loop {
                // Bias toward ASCII so generated text stays mostly readable
                // while still exercising the full unicode space.
                let candidate = if rng.gen_bool(0.8) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F))
                } else {
                    char::from_u32(rng.gen_range(0u32..0x11_0000))
                };
                if let Some(c) = candidate {
                    if !c.is_control() {
                        return c;
                    }
                }
            },
        }
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') if chars.get(i + 1) == Some(&'C') => {
                            i += 2;
                            CharSet::NotControl
                        }
                        Some('d') => {
                            i += 1;
                            CharSet::Ranges(vec![('0', '9')])
                        }
                        Some(&c) => {
                            i += 1;
                            CharSet::Ranges(vec![(c, c)])
                        }
                        None => panic!("dangling backslash in pattern {pattern:?}"),
                    }
                }
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (CharSet, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = chars[i];
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let hi = chars[i + 2];
                assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
                ranges.push((lo, hi));
                i += 3;
            } else {
                ranges.push((lo, lo));
                i += 1;
            }
        }
        assert!(
            i < chars.len(),
            "unterminated char class in pattern {pattern:?}"
        );
        (CharSet::Ranges(ranges), i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier minimum"),
                        n.trim().parse().expect("quantifier maximum"),
                    ),
                    None => {
                        let exact = body.trim().parse().expect("quantifier count");
                        (exact, exact)
                    }
                };
                (min, max, close + 1)
            }
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            _ => (1, 1, i),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace draws.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `vec` and `hash_set` strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A size requirement: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.min + 1 >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let count = self.size.draw(rng);
            (0..count).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::new();
            // Collisions shrink the set below target; bound the retries so
            // narrow element domains cannot loop forever.
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * target + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A set of roughly `size` distinct elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! The `prop::option::of` strategy.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some` of the inner strategy, evenly.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod test_runner {
    //! Case execution for the `proptest!` macro.

    use super::TestRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Run-time knobs (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A genuine failure — the property is violated.
        Fail(String),
        /// A `prop_assume!` rejection — draw another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met).
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Drives `case` until `config.cases` cases pass; panics on the first
    /// failure (no shrinking) or when rejections swamp the budget.
    pub fn run<F>(config: ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(0x5EED_CAFE_F00D_D00D);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > 10 * config.cases + 100 {
                        panic!(
                            "proptest: too many prop_assume! rejections \
                             ({rejected} rejects, {passed}/{} passes)",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!("proptest case failed after {passed} passes: {reason}")
                }
            }
        }
    }
}

/// Everything a test file needs from one glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` etc. resolve after a
    /// glob import, mirroring real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

// Re-export at the root too, matching real proptest's layout.
pub use strategy::Strategy;

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::test_runner::run($config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($option)),+
        ])
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Rejects the current case (drawing a fresh one) if the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_their_shape() {
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        for _ in 0..200 {
            let name = crate::string::generate("[a-z][a-z0-9-]{0,8}", &mut rng);
            assert!((1..=9).contains(&name.chars().count()), "{name:?}");
            assert!(name.chars().next().expect("non-empty").is_ascii_lowercase());
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

            let printable = crate::string::generate("[ -~]{1,30}", &mut rng);
            assert!((1..=30).contains(&printable.len()));
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));

            let free = crate::string::generate("\\PC{0,60}", &mut rng);
            assert!(free.chars().count() <= 60);
            assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0usize..10, 1..5),
            o in prop::option::of(Just(7u8)),
            pick in prop_oneof![Just(1i32), Just(2), 10i32..20],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        impl Tree {
            fn depth(&self) -> usize {
                match self {
                    Tree::Leaf(_) => 1,
                    Tree::Node(kids) => 1 + kids.iter().map(Tree::depth).max().unwrap_or(0),
                }
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = rand::SeedableRng::seed_from_u64(11);
        for _ in 0..100 {
            let tree = strat.generate(&mut rng);
            assert!(tree.depth() <= 4, "{tree:?}");
        }
    }
}
