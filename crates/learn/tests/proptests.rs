//! Property-based tests for the learning framework.

use lsd_learn::{
    fold_assignments, linear_least_squares, nonnegative_least_squares, LabelSet, Prediction,
};
use proptest::prelude::*;

proptest! {
    /// Predictions built from arbitrary non-negative scores are
    /// distributions.
    #[test]
    fn prediction_is_distribution(scores in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let p = Prediction::from_scores(scores);
        let total: f64 = p.scores().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.best_label() < p.len());
        // ranked_labels is a permutation with non-increasing scores.
        let ranked = p.ranked_labels();
        prop_assert_eq!(ranked.len(), p.len());
        for w in ranked.windows(2) {
            prop_assert!(p.score(w[0]) >= p.score(w[1]) - 1e-12);
        }
    }

    /// Averaging distributions yields a distribution, and averaging a
    /// prediction with itself is the identity.
    #[test]
    fn average_properties(scores in prop::collection::vec(0.001f64..10.0, 2..8)) {
        let p = Prediction::from_scores(scores);
        let avg = Prediction::average([p.clone(), p.clone()].iter()).expect("non-empty");
        for l in 0..p.len() {
            prop_assert!((avg.score(l) - p.score(l)).abs() < 1e-9);
        }
    }

    /// Softmax of log-scores preserves the argmax.
    #[test]
    fn log_scores_preserve_argmax(logs in prop::collection::vec(-50.0f64..50.0, 1..10)) {
        let p = Prediction::from_log_scores(&logs);
        let arg_logs = logs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        prop_assert_eq!(p.best_label(), arg_logs);
    }

    /// Fold assignments are balanced (sizes differ by at most one) and
    /// deterministic in the seed.
    #[test]
    fn folds_balanced(n in 1usize..200, d in 2usize..8, seed in any::<u64>()) {
        let folds = fold_assignments(n, d, seed);
        prop_assert_eq!(folds.clone(), fold_assignments(n, d, seed));
        let mut counts = vec![0usize; d];
        for f in &folds {
            prop_assert!(*f < d);
            counts[*f] += 1;
        }
        let max = counts.iter().max().expect("non-empty");
        let min = counts.iter().min().expect("non-empty");
        prop_assert!(max - min <= 1, "{counts:?}");
    }

    /// NNLS weights are always non-negative, and its residual is never
    /// more than a hair worse than unconstrained least squares clamped at
    /// zero would suggest (sanity: it actually fits).
    #[test]
    fn nnls_nonnegative_and_fits(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 3..20),
        true_w in prop::collection::vec(0.0f64..2.0, 3),
    ) {
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&true_w).map(|(x, w)| x * w).sum())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = nonnegative_least_squares(&refs, &y, 1e-9);
        prop_assert!(w.iter().all(|&x| x >= 0.0), "{w:?}");
        // The generating weights are non-negative, so NNLS must reach
        // (near-)zero residual.
        let rss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(r, &target)| {
                let fit: f64 = r.iter().zip(&w).map(|(x, wi)| x * wi).sum();
                (fit - target) * (fit - target)
            })
            .sum();
        prop_assert!(rss < 1e-6, "rss = {rss}, w = {w:?}, true = {true_w:?}");
    }

    /// Plain least squares reproduces exact linear relationships.
    #[test]
    fn ls_exact_recovery(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 2), 8..20),
        w0 in -3.0f64..3.0,
        w1 in -3.0f64..3.0,
    ) {
        // Ensure the design matrix is not rank-deficient.
        let distinct = rows.windows(2).any(|p| {
            (p[0][0] * p[1][1] - p[0][1] * p[1][0]).abs() > 1e-3
        });
        prop_assume!(distinct);
        let y: Vec<f64> = rows.iter().map(|r| w0 * r[0] + w1 * r[1]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = linear_least_squares(&refs, &y, 0.0);
        prop_assert!((w[0] - w0).abs() < 1e-6, "{w:?} vs ({w0}, {w1})");
        prop_assert!((w[1] - w1).abs() < 1e-6);
    }

    /// Label sets index consistently for arbitrary distinct names.
    #[test]
    fn labelset_roundtrip(names in prop::collection::hash_set("[A-Z][A-Z-]{0,8}", 1..15)) {
        prop_assume!(!names.contains("OTHER"));
        let names: Vec<String> = names.into_iter().collect();
        let ls = LabelSet::new(names.clone());
        prop_assert_eq!(ls.len(), names.len() + 1);
        for n in &names {
            let idx = ls.get(n).expect("present");
            prop_assert_eq!(ls.name(idx), n.as_str());
        }
        prop_assert!(ls.is_other(ls.other()));
    }
}
