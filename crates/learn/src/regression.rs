//! Least-squares linear regression for the stacking meta-learner.
//!
//! The meta-learner computes, for each label `cᵢ`, the learner weights
//! `W(cᵢ,Lⱼ)` minimizing `Σₓ (l(cᵢ,x) − Σⱼ s(cᵢ|x,Lⱼ)·W(cᵢ,Lⱼ))²` (paper
//! Section 3.1, step 5c). With only a handful of base learners the design
//! matrix is tiny, so we solve the normal equations `(XᵀX + λI)·w = Xᵀy`
//! directly by Gaussian elimination with partial pivoting; the small ridge
//! term `λ` guards against singular systems (e.g. two base learners that
//! produced identical CV scores).

/// Solves the least-squares problem `min ‖X·w − y‖²` and returns `w`.
///
/// * `rows` — the design matrix, one slice per observation.
/// * `targets` — `y`, one entry per observation.
/// * `ridge` — Tikhonov regularization strength `λ ≥ 0`; pass a small value
///   such as `1e-6` to guarantee a solution for rank-deficient systems.
///
/// # Panics
/// If rows have inconsistent widths or `rows.len() != targets.len()`.
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix algebra
pub fn linear_least_squares(rows: &[&[f64]], targets: &[f64], ridge: f64) -> Vec<f64> {
    assert_eq!(rows.len(), targets.len(), "one target per row required");
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let k = first.len();
    assert!(rows.iter().all(|r| r.len() == k), "inconsistent row widths");
    if k == 0 {
        return Vec::new();
    }

    // Normal equations: A = XᵀX + λI (k×k), b = Xᵀy.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &y) in rows.iter().zip(targets) {
        for i in 0..k {
            b[i] += row[i] * y;
            for j in i..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            a[i][j] = a[j][i];
        }
        a[i][i] += ridge;
    }

    solve_gaussian(a, b)
}

/// Least squares with the constraint `w ≥ 0` (Breiman's *stacked
/// regressions* recommendation, which LSD's meta-learner follows: a base
/// learner may be ignored, but never inverted).
///
/// Implemented by iterated elimination: solve the unconstrained problem,
/// zero out and remove the most-negative coordinate, repeat on the reduced
/// feature set until all remaining weights are non-negative. For the small
/// systems the meta-learner builds (k = number of base learners), this
/// matches full NNLS in practice and is trivially robust.
pub fn nonnegative_least_squares(rows: &[&[f64]], targets: &[f64], ridge: f64) -> Vec<f64> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let k = first.len();
    let mut active: Vec<usize> = (0..k).collect();
    loop {
        if active.is_empty() {
            return vec![0.0; k];
        }
        let reduced: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| active.iter().map(|&j| r[j]).collect())
            .collect();
        let reduced_refs: Vec<&[f64]> = reduced.iter().map(Vec::as_slice).collect();
        let w = linear_least_squares(&reduced_refs, targets, ridge);
        // Most negative coordinate, if any.
        let worst = w
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < 0.0)
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i);
        match worst {
            Some(i) => {
                active.remove(i);
            }
            None => {
                let mut full = vec![0.0; k];
                for (slot, &j) in active.iter().enumerate() {
                    full[j] = w[slot];
                }
                return full;
            }
        }
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting. If the
/// matrix is numerically singular the corresponding solution entries are 0
/// (a learner whose scores carry no independent information gets no weight).
#[allow(clippy::needless_range_loop)] // in-place elimination over a and b
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot: the row with the largest magnitude in this column.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            continue; // singular column
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= factor * a[col][j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        if a[col][col].abs() < 1e-12 {
            x[col] = 0.0;
            continue;
        }
        let mut sum = b[col];
        for j in col + 1..n {
            sum -= a[col][j] * x[j];
        }
        x[col] = sum / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(rows: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        linear_least_squares(&refs, y, 0.0)
    }

    #[test]
    fn exact_system_recovers_weights() {
        // y = 2·x₀ + 3·x₁ exactly.
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 3.0 * r[1]).collect();
        let w = fit(&rows, &y);
        assert!((w[0] - 2.0).abs() < 1e-9);
        assert!((w[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overdetermined_noisy_system_is_near_truth() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64) / 50.0, ((i * 7 % 13) as f64) / 13.0])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 0.3 * r[0] + 0.8 * r[1] + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let w = fit(&rows, &y);
        assert!((w[0] - 0.3).abs() < 0.05, "{w:?}");
        assert!((w[1] - 0.8).abs() < 0.05, "{w:?}");
    }

    #[test]
    fn meta_learner_shape_good_learner_gets_high_weight() {
        // Learner 0's score tracks the truth; learner 1 outputs noise ~0.5.
        let truth = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let rows: Vec<Vec<f64>> = truth.iter().map(|&t| vec![0.8 * t + 0.1, 0.5]).collect();
        let w = fit(&rows, &truth);
        assert!(w[0] > 1.0, "informative learner should dominate: {w:?}");
        assert!(
            w[0] * 0.5 > w[1].abs(),
            "noise learner should matter less: {w:?}"
        );
    }

    #[test]
    fn singular_system_with_ridge_is_finite() {
        // Two identical columns: rank deficient.
        let rows = [vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![2.0, 4.0, 6.0];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = linear_least_squares(&refs, &y, 1e-6);
        assert!(w.iter().all(|x| x.is_finite()));
        // Combined prediction still ≈ y.
        let pred = rows[1][0] * w[0] + rows[1][1] * w[1];
        assert!((pred - 4.0).abs() < 1e-3, "{w:?}");
    }

    #[test]
    fn singular_without_ridge_does_not_panic() {
        let rows = [vec![0.0, 0.0], vec![0.0, 0.0]];
        let y = vec![1.0, 2.0];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = linear_least_squares(&refs, &y, 0.0);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(linear_least_squares(&[], &[], 0.0).is_empty());
    }

    #[test]
    fn single_feature_is_ratio() {
        // w = Σxy / Σx².
        let rows = [vec![2.0], vec![4.0]];
        let y = vec![1.0, 2.0];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = linear_least_squares(&refs, &y, 0.0);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one target per row")]
    fn mismatched_lengths_panic() {
        linear_least_squares(&[&[1.0]], &[], 0.0);
    }

    #[test]
    fn nnls_matches_ls_when_unconstrained_solution_is_positive() {
        let rows = [vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 3.0 * r[1]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = nonnegative_least_squares(&refs, &y, 0.0);
        assert!((w[0] - 2.0).abs() < 1e-9);
        assert!((w[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn nnls_zeroes_negative_coordinates() {
        // Feature 1 is anti-correlated with the target: plain LS gives it a
        // negative weight; NNLS must zero it.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 2) as f64, 1.0 - (i % 2) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let unconstrained = linear_least_squares(&refs, &y, 0.0);
        assert!(unconstrained.iter().any(|&v| v < 1e-12));
        let w = nonnegative_least_squares(&refs, &y, 0.0);
        assert!(w.iter().all(|&v| v >= 0.0), "{w:?}");
        assert!((w[0] - 1.0).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn nnls_all_negative_returns_zeros() {
        let rows = [vec![1.0], vec![2.0]];
        let y = vec![-1.0, -2.0];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        assert_eq!(nonnegative_least_squares(&refs, &y, 0.0), vec![0.0]);
    }

    #[test]
    fn nnls_empty_input() {
        assert!(nonnegative_least_squares(&[], &[], 0.0).is_empty());
    }
}
