//! Thread-pool-free parallel execution on top of [`std::thread::scope`].
//!
//! LSD's workloads are embarrassingly parallel at two granularities — the
//! d = 5 cross-validation folds inside [`crate::cross_validation_predictions`]
//! and the per-source fan-out of `Lsd::match_batch` — and none of them need
//! a persistent pool: scoped threads are spawned per call, borrow the
//! shared read-only state directly, and join before the call returns. No
//! external crates, no `'static` bounds, no channels.
//!
//! Output order is **always** input order: every job writes its result into
//! its own index slot, so the caller observes byte-identical results
//! regardless of thread count or scheduling. [`ExecPolicy::deterministic_order`]
//! additionally fixes *which worker runs which job* (static striding instead
//! of dynamic work-stealing), which makes wall-clock profiles reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a batch of independent jobs is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker thread count. `0` means one worker per available CPU
    /// (`std::thread::available_parallelism`); `1` runs everything on the
    /// calling thread.
    pub threads: usize,
    /// `true` assigns job *i* to worker `i % threads` (static striding):
    /// the same worker runs the same jobs on every run. `false` lets idle
    /// workers claim the next unstarted job (dynamic scheduling), which
    /// balances uneven jobs better. Results are returned in input order
    /// either way.
    pub deterministic_order: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            threads: 0,
            deterministic_order: true,
        }
    }
}

impl ExecPolicy {
    /// Everything on the calling thread.
    pub fn serial() -> Self {
        ExecPolicy {
            threads: 1,
            deterministic_order: true,
        }
    }

    /// A fixed worker count with the default (deterministic) scheduling.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads,
            ..ExecPolicy::default()
        }
    }

    /// The number of workers to actually spawn for `jobs` jobs.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        };
        let requested = if self.threads == 0 {
            hw()
        } else {
            self.threads
        };
        requested.min(jobs).max(1)
    }
}

/// Applies `f` to every item, in parallel under `policy`, returning results
/// in input order. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], policy: &ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = policy.effective_threads(items.len());
    if lsd_obs::enabled() && !items.is_empty() {
        lsd_obs::counter_add("parallel.batches", "", 1);
        lsd_obs::counter_add("parallel.jobs", "", items.len() as u64);
        // A histogram, not a gauge: worker count varies with ExecPolicy,
        // and gauges are part of the deterministic (thread-count-invariant)
        // snapshot subset.
        lsd_obs::record_value("parallel.workers", "", workers as u64);
    }
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let out = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let out = &out;
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                if policy.deterministic_order {
                    // Static striding: worker w owns jobs w, w+T, w+2T, …
                    let owned = (worker..items.len()).step_by(workers).count();
                    lsd_obs::record_value("parallel.jobs_per_worker", "", owned as u64);
                    let mut i = worker;
                    while i < items.len() {
                        let r = f(i, &items[i]);
                        out.lock().expect("no poisoned worker")[i] = Some(r);
                        i += workers;
                    }
                } else {
                    // Dynamic scheduling: claim the next unstarted job.
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // Queue occupancy at claim time: jobs not yet started.
                        lsd_obs::record_value(
                            "parallel.queue_occupancy",
                            "",
                            (items.len() - i) as u64,
                        );
                        let r = f(i, &items[i]);
                        out.lock().expect("no poisoned worker")[i] = Some(r);
                    }
                }
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    out.into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_every_policy() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for policy in [
            ExecPolicy::serial(),
            ExecPolicy::with_threads(2),
            ExecPolicy::with_threads(8),
            ExecPolicy {
                threads: 3,
                deterministic_order: false,
            },
            ExecPolicy::default(),
        ] {
            let got = parallel_map(&items, &policy, |_, &x| x * 3);
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c", "d", "e"];
        let got = parallel_map(&items, &ExecPolicy::with_threads(4), |i, s| {
            format!("{i}{s}")
        });
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u8> = Vec::new();
        let got: Vec<u8> = parallel_map(&items, &ExecPolicy::default(), |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_threads_clamps_to_jobs() {
        assert_eq!(ExecPolicy::with_threads(8).effective_threads(3), 3);
        assert_eq!(ExecPolicy::with_threads(2).effective_threads(100), 2);
        assert_eq!(ExecPolicy::serial().effective_threads(100), 1);
        assert!(ExecPolicy::default().effective_threads(100) >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items = [0usize, 1, 2, 3];
        parallel_map(&items, &ExecPolicy::with_threads(2), |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
