//! Evaluation metrics for Section 6's experiments.
//!
//! "The matching accuracy of a source is defined as the percentage of
//! matchable source-schema tags that are matched correctly by LSD."

/// Matching accuracy: fraction of `(predicted, truth)` pairs that agree,
/// restricted by the caller to matchable tags. Returns `None` for an empty
/// input (an undefined accuracy must not silently count as 0 or 1).
pub fn matching_accuracy(predicted: &[usize], truth: &[usize]) -> Option<f64> {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return None;
    }
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    Some(correct as f64 / predicted.len() as f64)
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values).expect("non-empty");
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// A confusion matrix over `n` labels: `counts[truth][predicted]`.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// An empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        ConfusionMatrix {
            counts: vec![vec![0; n]; n],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// The count for a `(truth, predicted)` cell.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (diagonal mass); `None` if empty.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let diag: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        Some(diag as f64 / total as f64)
    }

    /// Per-label recall: fraction of `truth == label` rows predicted
    /// correctly; `None` if the label never occurs as truth.
    pub fn recall(&self, label: usize) -> Option<f64> {
        let row_total: usize = self.counts[label].iter().sum();
        if row_total == 0 {
            None
        } else {
            Some(self.counts[label][label] as f64 / row_total as f64)
        }
    }

    /// Per-label precision: fraction of `predicted == label` rows that were
    /// right; `None` if the label is never predicted.
    pub fn precision(&self, label: usize) -> Option<f64> {
        let col_total: usize = self.counts.iter().map(|r| r[label]).sum();
        if col_total == 0 {
            None
        } else {
            Some(self.counts[label][label] as f64 / col_total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(matching_accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), Some(0.75));
        assert_eq!(matching_accuracy(&[], &[]), None);
        assert_eq!(matching_accuracy(&[5], &[5]), Some(1.0));
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_stats() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 1);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.accuracy(), Some(0.6));
        assert_eq!(cm.recall(0), Some(2.0 / 3.0));
        assert_eq!(cm.precision(1), Some(1.0 / 3.0));
        assert_eq!(cm.recall(2), Some(0.0));
        assert_eq!(cm.precision(2), None);
    }

    #[test]
    fn empty_matrix_accuracy_is_none() {
        assert_eq!(ConfusionMatrix::new(2).accuracy(), None);
    }
}
