//! The multinomial Naive Bayes text classifier (paper Section 3.3).
//!
//! Each input instance is a bag of tokens `d = {w₁ … wₖ}`. The learner
//! assigns `d` to the class maximizing `P(cᵢ|d) ∝ P(d|cᵢ)·P(cᵢ)` with
//! `P(d|cᵢ) = Π P(wⱼ|cᵢ)` under the token-independence assumption, where
//! `P(wⱼ|cᵢ) = n(wⱼ,cᵢ) / n(cᵢ)` — the fraction of token positions of class
//! `cᵢ` occupied by `wⱼ`. We add Laplace smoothing (configurable for the
//! ablation bench) so unseen tokens don't zero out the product, and work in
//! log space for numerical stability.

use crate::prediction::Prediction;
use crate::Classifier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Naive Bayes hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing pseudo-count added to every token count.
    pub smoothing: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig { smoothing: 1.0 }
    }
}

/// A trained multinomial Naive Bayes model over string tokens.
///
/// ```
/// use lsd_learn::{NaiveBayes, NaiveBayesConfig};
///
/// let mut nb = NaiveBayes::new(2, NaiveBayesConfig::default());
/// let desc: Vec<String> = ["fantastic", "great", "view"].iter().map(|s| s.to_string()).collect();
/// let addr: Vec<String> = ["miami", "fl"].iter().map(|s| s.to_string()).collect();
/// nb.add_example(&desc, 0);
/// nb.add_example(&addr, 1);
/// let query: Vec<String> = ["great", "fantastic"].iter().map(|s| s.to_string()).collect();
/// assert_eq!(nb.predict_tokens(&query).best_label(), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    config: NaiveBayesConfig,
    num_labels: usize,
    /// `n(w, c)` — token counts per (token, class).
    token_counts: HashMap<String, Vec<f64>>,
    /// `n(c)` — total token positions per class.
    class_token_totals: Vec<f64>,
    /// Number of training instances per class (for the prior `P(c)`).
    class_doc_counts: Vec<f64>,
    total_docs: f64,
}

impl NaiveBayes {
    /// Creates an untrained model for `num_labels` classes.
    pub fn new(num_labels: usize, config: NaiveBayesConfig) -> Self {
        NaiveBayes {
            config,
            num_labels,
            token_counts: HashMap::new(),
            class_token_totals: vec![0.0; num_labels],
            class_doc_counts: vec![0.0; num_labels],
            total_docs: 0.0,
        }
    }

    /// Adds one training instance incrementally.
    pub fn add_example(&mut self, tokens: &[String], label: usize) {
        assert!(label < self.num_labels);
        for t in tokens {
            self.token_counts
                .entry(t.clone())
                .or_insert_with(|| vec![0.0; self.num_labels])[label] += 1.0;
        }
        self.class_token_totals[label] += tokens.len() as f64;
        self.class_doc_counts[label] += 1.0;
        self.total_docs += 1.0;
    }

    /// Vocabulary size (distinct tokens seen in training).
    pub fn vocab_size(&self) -> usize {
        self.token_counts.len()
    }

    /// Number of classes.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// `log P(c)` — the fraction of training instances with label `c`, as
    /// in the paper ("P(cᵢ) is approximated as the portion of training
    /// instances with label cᵢ"). Deliberately *not* smoothed: a class with
    /// no training instances must get probability 0, otherwise its empty
    /// token model (where every token is equally "likely") outcompetes
    /// trained classes on unseen tokens.
    fn log_prior(&self, label: usize) -> f64 {
        if self.class_doc_counts[label] == 0.0 {
            f64::NEG_INFINITY
        } else {
            (self.class_doc_counts[label] / self.total_docs).ln()
        }
    }

    /// `log P(w|c)` with Laplace smoothing over the vocabulary.
    fn log_token_prob(&self, token: &str, label: usize) -> f64 {
        let v = self.vocab_size() as f64 + 1.0; // +1 for the unseen-token bucket
        let count = self.token_counts.get(token).map_or(0.0, |c| c[label]);
        ((count + self.config.smoothing)
            / (self.class_token_totals[label] + self.config.smoothing * v))
            .ln()
    }

    /// Predicts the class distribution for a token bag.
    pub fn predict_tokens(&self, tokens: &[String]) -> Prediction {
        if self.total_docs == 0.0 {
            return Prediction::uniform(self.num_labels);
        }
        let log_scores: Vec<f64> = (0..self.num_labels)
            .map(|c| {
                self.log_prior(c)
                    + tokens
                        .iter()
                        .map(|t| self.log_token_prob(t, c))
                        .sum::<f64>()
            })
            .collect();
        Prediction::from_log_scores(&log_scores)
    }
}

impl Classifier<[String]> for NaiveBayes {
    fn train(&mut self, examples: &[(&[String], usize)]) {
        *self = NaiveBayes::new(self.num_labels, self.config);
        for (tokens, label) in examples {
            self.add_example(tokens, *label);
        }
    }

    fn predict(&self, example: &[String]) -> Prediction {
        self.predict_tokens(example)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn trained() -> NaiveBayes {
        // 0 = DESCRIPTION, 1 = ADDRESS.
        let mut nb = NaiveBayes::new(2, NaiveBayesConfig::default());
        nb.add_example(&toks("fantastic house great location"), 0);
        nb.add_example(&toks("great yard beautiful view"), 0);
        nb.add_example(&toks("nice area close to river"), 0);
        nb.add_example(&toks("miami fl"), 1);
        nb.add_example(&toks("boston ma"), 1);
        nb.add_example(&toks("seattle wa"), 1);
        nb
    }

    #[test]
    fn frequent_indicative_tokens_drive_prediction() {
        let nb = trained();
        assert_eq!(
            nb.predict_tokens(&toks("great fantastic view"))
                .best_label(),
            0
        );
        assert_eq!(nb.predict_tokens(&toks("portland or")).best_label(), 1);
    }

    #[test]
    fn prediction_is_distribution() {
        let nb = trained();
        let p = nb.predict_tokens(&toks("great house miami"));
        assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.scores().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn untrained_model_is_uniform() {
        let nb = NaiveBayes::new(3, NaiveBayesConfig::default());
        let p = nb.predict_tokens(&toks("anything"));
        assert!(p.scores().iter().all(|&s| (s - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_token_bag_follows_prior() {
        let mut nb = NaiveBayes::new(2, NaiveBayesConfig::default());
        nb.add_example(&toks("a"), 0);
        nb.add_example(&toks("b"), 0);
        nb.add_example(&toks("c"), 0);
        nb.add_example(&toks("d"), 1);
        let p = nb.predict_tokens(&[]);
        assert_eq!(p.best_label(), 0);
    }

    #[test]
    fn unseen_tokens_are_smoothed_not_fatal() {
        let nb = trained();
        let p = nb.predict_tokens(&toks("zzz qqq www"));
        assert!(p.scores().iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn smoothing_strength_affects_confidence() {
        let mut weak = NaiveBayes::new(2, NaiveBayesConfig { smoothing: 0.01 });
        let mut strong = NaiveBayes::new(2, NaiveBayesConfig { smoothing: 10.0 });
        for nb in [&mut weak, &mut strong] {
            nb.add_example(&toks("alpha alpha alpha"), 0);
            nb.add_example(&toks("beta beta beta"), 1);
        }
        let pw = weak.predict_tokens(&toks("alpha"));
        let ps = strong.predict_tokens(&toks("alpha"));
        assert!(
            pw.score(0) > ps.score(0),
            "weaker smoothing → sharper posterior"
        );
        assert_eq!(pw.best_label(), 0);
        assert_eq!(ps.best_label(), 0);
    }

    #[test]
    fn classifier_trait_retrains_from_scratch() {
        let mut nb = NaiveBayes::new(2, NaiveBayesConfig::default());
        let a = toks("old data");
        nb.train(&[(a.as_slice(), 0)]);
        let b = toks("new tokens");
        nb.train(&[(b.as_slice(), 1)]);
        // After retraining, "old data" is no longer known to class 0.
        assert_eq!(nb.vocab_size(), 2);
        assert_eq!(nb.predict_tokens(&toks("new")).best_label(), 1);
    }

    #[test]
    fn repeated_tokens_count_multiply() {
        let mut nb = NaiveBayes::new(2, NaiveBayesConfig::default());
        nb.add_example(&toks("x x x x y"), 0);
        nb.add_example(&toks("y y y y x"), 1);
        assert_eq!(nb.predict_tokens(&toks("x")).best_label(), 0);
        assert_eq!(nb.predict_tokens(&toks("y")).best_label(), 1);
    }
}
