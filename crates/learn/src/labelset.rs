//! The label universe: mediated-schema tags plus the reserved OTHER label.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The classification labels: the mediated-schema tag names `c₁ … cₙ` plus
/// the unique reserved label `OTHER`, assigned when no mediated tag matches
/// a source tag (paper Section 2.2).
///
/// Labels are addressed by dense `usize` indices. `OTHER` is always the
/// *last* index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "Vec<String>", into = "Vec<String>")]
pub struct LabelSet {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl From<Vec<String>> for LabelSet {
    /// Rebuilds the index from a serialized name list (which already ends
    /// with `OTHER`).
    fn from(names: Vec<String>) -> Self {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        LabelSet { names, index }
    }
}

impl From<LabelSet> for Vec<String> {
    fn from(ls: LabelSet) -> Self {
        ls.names
    }
}

impl LabelSet {
    /// The reserved name of the no-match label.
    pub const OTHER: &'static str = "OTHER";

    /// Builds a label set from mediated-schema tag names, appending `OTHER`.
    /// Duplicate names and an explicit `OTHER` entry are rejected with a
    /// panic (they indicate a malformed mediated schema).
    pub fn new<I, S>(mediated_tags: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = mediated_tags.into_iter().map(Into::into).collect();
        assert!(
            !names.iter().any(|n| n == Self::OTHER),
            "mediated schema must not declare a tag named OTHER"
        );
        names.push(Self::OTHER.to_string());
        let index: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        assert_eq!(
            index.len(),
            names.len(),
            "duplicate mediated-schema tag names"
        );
        LabelSet { names, index }
    }

    /// Total number of labels, including `OTHER`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: a label set has at least the `OTHER` label.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The index of the `OTHER` label (always the last one).
    pub fn other(&self) -> usize {
        self.names.len() - 1
    }

    /// Looks up a label index by name.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name of a label index.
    pub fn name(&self, label: usize) -> &str {
        &self.names[label]
    }

    /// All label names in index order (`OTHER` last).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The mediated-tag names only, excluding `OTHER`.
    pub fn mediated_names(&self) -> impl Iterator<Item = &str> {
        self.names[..self.names.len() - 1]
            .iter()
            .map(String::as_str)
    }

    /// True if `label` is the `OTHER` index.
    pub fn is_other(&self, label: usize) -> bool {
        label == self.other()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_appended_last() {
        let ls = LabelSet::new(["ADDRESS", "DESCRIPTION", "AGENT-PHONE"]);
        assert_eq!(ls.len(), 4);
        assert_eq!(ls.other(), 3);
        assert_eq!(ls.name(3), "OTHER");
        assert!(ls.is_other(3));
        assert!(!ls.is_other(0));
    }

    #[test]
    fn lookup_roundtrips() {
        let ls = LabelSet::new(["A", "B"]);
        for (i, n) in ls.names().enumerate().collect::<Vec<_>>() {
            assert_eq!(ls.get(n), Some(i));
        }
        assert_eq!(ls.get("missing"), None);
    }

    #[test]
    fn mediated_names_exclude_other() {
        let ls = LabelSet::new(["A", "B"]);
        let names: Vec<&str> = ls.mediated_names().collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        LabelSet::new(["A", "A"]);
    }

    #[test]
    #[should_panic(expected = "OTHER")]
    fn explicit_other_rejected() {
        LabelSet::new(["A", "OTHER"]);
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let ls = LabelSet::new(["A", "B"]);
        let json = serde_json::to_string(&ls).unwrap();
        let back: LabelSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ls);
        assert_eq!(back.get("B"), Some(1));
    }
}
