//! d-fold cross-validation (paper Section 3.1, step 5a).
//!
//! "To apply cross validation, the examples in T(L) are randomly divided
//! into d equal parts T₁ … T_d (we use d = 5 in our experiments). Next, for
//! each part Tᵢ, L is trained on the remaining (d−1) parts, then applied to
//! the examples in Tᵢ." The resulting `CV(L)` set contains exactly one
//! unbiased prediction per training example, which the meta-learner uses to
//! judge each base learner.

use crate::parallel::{parallel_map, ExecPolicy};
use crate::prediction::Prediction;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Randomly assigns `n` examples to `d` folds of (as near as possible)
/// equal size, deterministically for a given seed. Every fold index in
/// `0..d` is used when `n ≥ d`.
pub fn fold_assignments(n: usize, d: usize, seed: u64) -> Vec<usize> {
    assert!(d >= 2, "cross-validation needs at least 2 folds");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = vec![0usize; n];
    for (rank, &example) in order.iter().enumerate() {
        folds[example] = rank % d;
    }
    folds
}

/// Produces the `CV(L)` prediction set: one out-of-fold prediction per
/// example, in example order.
///
/// `make_learner` builds a fresh, untrained learner for each fold (training
/// state must not leak between folds). If `n < d` the fold count shrinks to
/// `max(2, n)`; with fewer than 2 examples the learner is trained on
/// everything and predictions are in-sample (there is nothing to hold out).
pub fn cross_validation_predictions<X: ?Sized + Sync, C: Classifier<X>>(
    examples: &[(&X, usize)],
    d: usize,
    seed: u64,
    make_learner: impl Fn() -> C + Sync,
) -> Vec<Prediction> {
    let n = examples.len();
    if n < 2 {
        return in_sample_predictions(examples, make_learner);
    }
    let d = d.min(n).max(2);
    let folds = fold_assignments(n, d, seed);
    predictions_for_folds(examples, &folds, d, &ExecPolicy::default(), make_learner)
}

/// Group-aware cross-validation: all examples sharing a group id land in
/// the same fold, so a learner can never train on an example from the
/// group it is asked to predict.
///
/// LSD's meta-learner uses this with one group per (source, tag): the
/// instances of one source tag are near-duplicates from the name matcher's
/// point of view (identical tag names), and example-level folds would leak
/// them across the train/test split, inflating that learner's apparent
/// accuracy and starving the others of stacking weight. Grouped folds make
/// the CV estimate match the real deployment condition — a new source's
/// tag names were never seen in training.
pub fn cross_validation_predictions_grouped<X: ?Sized + Sync, C: Classifier<X>>(
    examples: &[(&X, usize)],
    groups: &[usize],
    d: usize,
    seed: u64,
    make_learner: impl Fn() -> C + Sync,
) -> Vec<Prediction> {
    cross_validation_predictions_grouped_with(
        examples,
        groups,
        d,
        seed,
        &ExecPolicy::default(),
        make_learner,
    )
}

/// [`cross_validation_predictions_grouped`] under an explicit execution
/// policy: the d per-fold train/predict passes are independent and run on
/// scoped worker threads. Results are identical to the serial path for any
/// thread count (each fold's learner sees exactly the same training set and
/// predictions land in example order).
pub fn cross_validation_predictions_grouped_with<X: ?Sized + Sync, C: Classifier<X>>(
    examples: &[(&X, usize)],
    groups: &[usize],
    d: usize,
    seed: u64,
    policy: &ExecPolicy,
    make_learner: impl Fn() -> C + Sync,
) -> Vec<Prediction> {
    assert_eq!(examples.len(), groups.len(), "one group per example");
    let mut distinct: Vec<usize> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return in_sample_predictions(examples, make_learner);
    }
    let d = d.min(distinct.len()).max(2);
    let group_folds = fold_assignments(distinct.len(), d, seed);
    let fold_of_group: std::collections::HashMap<usize, usize> =
        distinct.iter().copied().zip(group_folds).collect();
    let folds: Vec<usize> = groups.iter().map(|g| fold_of_group[g]).collect();
    predictions_for_folds(examples, &folds, d, policy, make_learner)
}

fn in_sample_predictions<X: ?Sized, C: Classifier<X>>(
    examples: &[(&X, usize)],
    make_learner: impl Fn() -> C,
) -> Vec<Prediction> {
    let mut learner = make_learner();
    learner.train(examples);
    examples.iter().map(|(x, _)| learner.predict(x)).collect()
}

/// One fold per job: each worker trains a fresh learner on the other folds
/// and predicts its own, returning `(example index, prediction)` pairs that
/// are merged into example order. The per-fold learner never leaves its
/// worker, so `C` needs no `Send` bound — only the factory must be callable
/// from any worker.
fn predictions_for_folds<X: ?Sized + Sync, C: Classifier<X>>(
    examples: &[(&X, usize)],
    folds: &[usize],
    d: usize,
    policy: &ExecPolicy,
    make_learner: impl Fn() -> C + Sync,
) -> Vec<Prediction> {
    let fold_ids: Vec<usize> = (0..d).collect();
    let per_fold: Vec<Vec<(usize, Prediction)>> = parallel_map(&fold_ids, policy, |_, &fold| {
        let _span = lsd_obs::span!("train.cv_fold");
        lsd_obs::counter_add("crossval.folds", "", 1);
        let train: Vec<(&X, usize)> = examples
            .iter()
            .zip(folds)
            .filter(|(_, &f)| f != fold)
            .map(|((x, l), _)| (*x, *l))
            .collect();
        if train.len() == examples.len() {
            return Vec::new(); // no example in this fold
        }
        let mut learner = make_learner();
        learner.train(&train);
        examples
            .iter()
            .zip(folds)
            .enumerate()
            .filter(|(_, (_, &f))| f == fold)
            .map(|(i, ((x, _), _))| (i, learner.predict(x)))
            .collect()
    });
    let mut out: Vec<Option<Prediction>> = vec![None; examples.len()];
    for (i, prediction) in per_fold.into_iter().flatten() {
        out[i] = Some(prediction);
    }
    out.into_iter()
        .map(|p| p.expect("every fold predicted"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::{NaiveBayes, NaiveBayesConfig};

    #[test]
    fn folds_are_balanced_and_deterministic() {
        let f1 = fold_assignments(100, 5, 42);
        let f2 = fold_assignments(100, 5, 42);
        assert_eq!(f1, f2);
        for fold in 0..5 {
            assert_eq!(f1.iter().filter(|&&f| f == fold).count(), 20);
        }
        let f3 = fold_assignments(100, 5, 43);
        assert_ne!(f1, f3, "different seeds give different splits");
    }

    #[test]
    fn uneven_sizes_differ_by_at_most_one() {
        let f = fold_assignments(23, 5, 7);
        let counts: Vec<usize> = (0..5)
            .map(|k| f.iter().filter(|&&x| x == k).count())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 23);
        assert!(counts.iter().all(|&c| c == 4 || c == 5), "{counts:?}");
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn cv_produces_one_prediction_per_example() {
        let data: Vec<(Vec<String>, usize)> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    (toks("great fantastic house"), 0)
                } else {
                    (toks("miami boston seattle"), 1)
                }
            })
            .collect();
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions(&examples, 5, 1, || {
            NaiveBayes::new(2, NaiveBayesConfig::default())
        });
        assert_eq!(cv.len(), 20);
        // Out-of-fold predictions should still be mostly right for separable data.
        let correct = cv
            .iter()
            .zip(&examples)
            .filter(|(p, (_, l))| p.best_label() == *l)
            .count();
        assert!(correct >= 18, "got {correct}/20");
    }

    #[test]
    fn cv_with_fewer_examples_than_folds() {
        let data = [(toks("a"), 0), (toks("b"), 1), (toks("c"), 0)];
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions(&examples, 5, 1, || {
            NaiveBayes::new(2, NaiveBayesConfig::default())
        });
        assert_eq!(cv.len(), 3);
    }

    #[test]
    fn cv_single_example_trains_in_sample() {
        let data = [(toks("solo"), 1)];
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions(&examples, 5, 1, || {
            NaiveBayes::new(2, NaiveBayesConfig::default())
        });
        assert_eq!(cv.len(), 1);
        assert_eq!(cv[0].best_label(), 1);
    }

    #[test]
    fn cv_empty_input() {
        let examples: Vec<(&[String], usize)> = Vec::new();
        let cv = cross_validation_predictions(&examples, 5, 1, || {
            NaiveBayes::new(2, NaiveBayesConfig::default())
        });
        assert!(cv.is_empty());
    }

    /// The defining property of stacking CV: an example memorized by an
    /// overfitting learner still gets an out-of-fold (not memorized)
    /// prediction. We simulate with a learner that predicts a label iff it
    /// saw that exact example during training.
    struct Memorizer {
        seen: Vec<(Vec<String>, usize)>,
    }
    impl Classifier<[String]> for Memorizer {
        fn train(&mut self, examples: &[(&[String], usize)]) {
            self.seen = examples.iter().map(|(x, l)| (x.to_vec(), *l)).collect();
        }
        fn predict(&self, example: &[String]) -> Prediction {
            match self.seen.iter().find(|(x, _)| x.as_slice() == example) {
                Some(&(_, l)) => Prediction::certain(2, l),
                None => Prediction::uniform(2),
            }
        }
    }

    #[test]
    fn grouped_cv_keeps_groups_together() {
        // 4 groups of 3 identical examples each. The memorizer can only
        // answer examples it saw during training; with grouped folds it can
        // never have seen the held-out example's duplicates.
        let data: Vec<(Vec<String>, usize)> = (0..12)
            .map(|i| (toks(&format!("group{}", i / 3)), (i / 3) % 2))
            .collect();
        let groups: Vec<usize> = (0..12).map(|i| i / 3).collect();
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions_grouped(&examples, &groups, 4, 3, || Memorizer {
            seen: vec![],
        });
        for p in &cv {
            assert_eq!(
                p.scores(),
                &[0.5, 0.5],
                "duplicate leaked across grouped folds"
            );
        }
        // Plain example-level CV *does* leak duplicates: the memorizer gets
        // most of them right, proving the grouped variant changes behavior.
        let cv_plain = cross_validation_predictions(&examples, 4, 3, || Memorizer { seen: vec![] });
        assert!(
            cv_plain.iter().any(|p| p.scores() != [0.5, 0.5]),
            "expected example-level folds to leak duplicates"
        );
    }

    #[test]
    fn grouped_cv_single_group_is_in_sample() {
        let data = [(toks("a"), 0), (toks("a"), 0)];
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions_grouped(&examples, &[7, 7], 5, 1, || {
            NaiveBayes::new(2, NaiveBayesConfig::default())
        });
        assert_eq!(cv.len(), 2);
        assert_eq!(cv[0].best_label(), 0);
    }

    #[test]
    fn cv_predictions_are_out_of_fold() {
        // All 10 examples distinct, so the memorizer can never have seen the
        // held-out example: every CV prediction must be uniform.
        let data: Vec<(Vec<String>, usize)> =
            (0..10).map(|i| (toks(&format!("tok{i}")), i % 2)).collect();
        let examples: Vec<(&[String], usize)> =
            data.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let cv = cross_validation_predictions(&examples, 5, 9, || Memorizer { seen: vec![] });
        for p in &cv {
            assert_eq!(p.scores(), &[0.5, 0.5], "prediction leaked training data");
        }
    }
}
