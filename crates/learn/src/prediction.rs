//! Confidence-score predictions.

use serde::{Deserialize, Serialize};

/// A prediction of the form `⟨s(c₁|x,L), …, s(cₙ|x,L)⟩` with
/// `Σ s(cᵢ|x,L) = 1` (paper Section 2.2). Index `i` is the label index in
/// the corresponding [`crate::LabelSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    scores: Vec<f64>,
}

impl Prediction {
    /// Builds a prediction from raw non-negative scores, normalizing them to
    /// sum to 1. If every score is zero (a learner with no opinion), the
    /// result is the uniform distribution.
    pub fn from_scores(scores: Vec<f64>) -> Self {
        assert!(!scores.is_empty(), "prediction over empty label set");
        debug_assert!(
            scores.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "scores: {scores:?}"
        );
        let mut p = Prediction { scores };
        p.renormalize();
        p
    }

    /// The uniform distribution over `n` labels — the "no information"
    /// prediction.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        Prediction {
            scores: vec![1.0 / n as f64; n],
        }
    }

    /// A point-mass prediction: probability 1 on `label`.
    pub fn certain(n: usize, label: usize) -> Self {
        assert!(label < n);
        let mut scores = vec![0.0; n];
        scores[label] = 1.0;
        Prediction { scores }
    }

    /// Builds from log-scores (e.g. Naive Bayes log-posteriors) via a
    /// numerically-stable softmax.
    pub fn from_log_scores(log_scores: &[f64]) -> Self {
        assert!(!log_scores.is_empty());
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return Prediction::uniform(log_scores.len());
        }
        let scores: Vec<f64> = log_scores.iter().map(|&l| (l - max).exp()).collect();
        Prediction::from_scores(scores)
    }

    /// Score of one label.
    pub fn score(&self, label: usize) -> f64 {
        self.scores[label]
    }

    /// All scores, indexed by label.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Never true; predictions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The highest-scoring label (lowest index wins ties).
    pub fn best_label(&self) -> usize {
        let mut best = 0;
        for (i, &s) in self.scores.iter().enumerate() {
            if s > self.scores[best] {
                best = i;
            }
        }
        best
    }

    /// Labels sorted by decreasing score (stable for ties).
    pub fn ranked_labels(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }

    /// The element-wise average of several predictions — the paper's
    /// prediction converter rule (Section 3.2, step 2: "simply computes the
    /// average score of each label from the given predictions").
    pub fn average<'a>(
        predictions: impl IntoIterator<Item = &'a Prediction>,
    ) -> Option<Prediction> {
        let mut iter = predictions.into_iter();
        let first = iter.next()?;
        let mut sum = first.scores.clone();
        let mut count = 1usize;
        for p in iter {
            assert_eq!(p.scores.len(), sum.len(), "mismatched label sets");
            for (acc, s) in sum.iter_mut().zip(&p.scores) {
                *acc += s;
            }
            count += 1;
        }
        for s in &mut sum {
            *s /= count as f64;
        }
        Some(Prediction::from_scores(sum))
    }

    /// Zeroes the scores of the given labels and renormalizes — used when
    /// constraint pre-processing rules labels out for a tag.
    pub fn mask_labels(&mut self, labels: &[usize]) {
        for &l in labels {
            self.scores[l] = 0.0;
        }
        self.renormalize();
    }

    fn renormalize(&mut self) {
        let total: f64 = self.scores.iter().sum();
        if total > 0.0 {
            for s in &mut self.scores {
                *s /= total;
            }
        } else {
            let n = self.scores.len();
            self.scores.fill(1.0 / n as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_normalizes() {
        let p = Prediction::from_scores(vec![1.0, 3.0]);
        assert_eq!(p.scores(), &[0.25, 0.75]);
        assert_eq!(p.best_label(), 1);
    }

    #[test]
    fn zero_scores_become_uniform() {
        let p = Prediction::from_scores(vec![0.0, 0.0, 0.0]);
        assert!(p.scores().iter().all(|&s| (s - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn certain_is_point_mass() {
        let p = Prediction::certain(4, 2);
        assert_eq!(p.score(2), 1.0);
        assert_eq!(p.best_label(), 2);
    }

    #[test]
    fn log_scores_softmax() {
        let p = Prediction::from_log_scores(&[0.0, (2.0f64).ln()]);
        assert!((p.score(1) / p.score(0) - 2.0).abs() < 1e-9);
        assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_scores_handle_extreme_magnitudes() {
        let p = Prediction::from_log_scores(&[-1e6, -1e6 + 1.0]);
        assert!(p.score(1) > p.score(0));
        assert!(p.scores().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn all_neg_infinity_is_uniform() {
        let p = Prediction::from_log_scores(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(p.scores(), &[0.5, 0.5]);
    }

    #[test]
    fn average_matches_paper_example() {
        // Section 3.2: averaging the three instance predictions for `area`
        // gives ⟨0.7, 0.163, 0.137⟩.
        let ps = [
            Prediction::from_scores(vec![0.7, 0.2, 0.1]),
            Prediction::from_scores(vec![0.5, 0.2, 0.3]),
            Prediction::from_scores(vec![0.9, 0.09, 0.01]),
        ];
        let avg = Prediction::average(ps.iter()).unwrap();
        assert!((avg.score(0) - 0.7).abs() < 1e-9);
        assert!((avg.score(1) - 0.163).abs() < 1e-3);
        assert!((avg.score(2) - 0.137).abs() < 1e-3);
    }

    #[test]
    fn average_of_none_is_none() {
        assert!(Prediction::average(std::iter::empty()).is_none());
    }

    #[test]
    fn ranked_labels_order() {
        let p = Prediction::from_scores(vec![0.2, 0.5, 0.3]);
        assert_eq!(p.ranked_labels(), vec![1, 2, 0]);
    }

    #[test]
    fn mask_labels_renormalizes() {
        let mut p = Prediction::from_scores(vec![0.5, 0.25, 0.25]);
        p.mask_labels(&[0]);
        assert_eq!(p.score(0), 0.0);
        assert!((p.score(1) - 0.5).abs() < 1e-12);
        assert!((p.score(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mask_all_labels_falls_back_to_uniform() {
        let mut p = Prediction::from_scores(vec![0.5, 0.5]);
        p.mask_labels(&[0, 1]);
        assert_eq!(p.scores(), &[0.5, 0.5]);
    }
}
