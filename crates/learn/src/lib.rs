//! # lsd-learn
//!
//! The machine-learning framework underneath LSD, hand-rolled because the
//! offline Rust ecosystem has no suitable ML crates:
//!
//! - [`LabelSet`] — the mediated-schema tag names as dense label indices,
//!   including the reserved [`LabelSet::OTHER`] label for unmatchable tags
//!   (paper Section 2.2).
//! - [`Prediction`] — a confidence-score distribution
//!   `⟨s(c₁|x), …, s(cₙ|x)⟩` with `Σ s(cᵢ|x) = 1` (Section 2.2).
//! - [`Classifier`] — the common train/predict interface of the base
//!   learners, generic over their feature type.
//! - [`NaiveBayes`] — the multinomial Naive Bayes text classifier of
//!   Section 3.3.
//! - [`cross_validation_predictions`] — the d-fold cross-validation
//!   procedure (d = 5 in the paper) that produces the unbiased `CV(L)`
//!   prediction sets used to train the meta-learner (Section 3.1, step 5a).
//! - [`linear_least_squares`] — the least-squares regression that computes
//!   the per-label learner weights (Section 3.1, step 5c).
//! - [`metrics`] — matching accuracy and summary statistics for Section 6.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod crossval;
mod labelset;
pub mod metrics;
mod naive_bayes;
pub mod parallel;
mod prediction;
mod regression;

pub use crossval::{
    cross_validation_predictions, cross_validation_predictions_grouped,
    cross_validation_predictions_grouped_with, fold_assignments,
};
pub use labelset::LabelSet;
pub use naive_bayes::{NaiveBayes, NaiveBayesConfig};
pub use parallel::{parallel_map, ExecPolicy};
pub use prediction::Prediction;
pub use regression::{linear_least_squares, nonnegative_least_squares};

/// The train/predict interface shared by all base learners.
///
/// `X` is the learner's feature type: the Name matcher sees tag names, the
/// Content matcher and Naive Bayes see token bags, the XML learner sees
/// element trees. Labels are dense indices into a [`LabelSet`].
pub trait Classifier<X: ?Sized> {
    /// Trains (or retrains) on `(example, label)` pairs.
    fn train(&mut self, examples: &[(&X, usize)]);

    /// Predicts a confidence-score distribution for one example.
    fn predict(&self, example: &X) -> Prediction;
}
