//! Single-occurrence automata and the rewrite rules that turn them into
//! deterministic regular expressions.
//!
//! The construction is 2T-INF style (Garcia & Vidal, as used by
//! Bex–Gelade–Neven–Vansummeren for XML schema inference): the automaton
//! has one node per distinct child name plus virtual source and sink
//! nodes, and an edge `a → b` whenever `b` immediately follows `a` in some
//! observed child sequence. By construction the automaton accepts every
//! training sequence; every rewrite rule below is an *exact* rewriting of
//! the automaton's language, so the extracted expression accepts the
//! automaton's language — a superset of the corpus — and, being
//! single-occurrence, is 1-unambiguous for free.

use lsd_xml::{ContentModel, Occurrence};
use std::collections::{BTreeMap, BTreeSet};

/// Virtual source node id (start of every sequence).
const SRC: usize = 0;
/// Virtual sink node id (end of every sequence).
const SNK: usize = 1;

/// A single-occurrence automaton whose non-virtual nodes carry regular
/// expressions (initially single names; rewriting folds them together).
pub(crate) struct Soa {
    /// `terms[n]` — the expression at node `n`; `None` for src/snk.
    terms: Vec<Option<ContentModel>>,
    succ: Vec<BTreeSet<usize>>,
    pred: Vec<BTreeSet<usize>>,
    alive: Vec<bool>,
}

/// A successful rewrite: the extracted expression and how many
/// generalizing operators (`?`, `*`, `+`) the rules introduced.
pub(crate) struct RewriteOutcome {
    pub model: ContentModel,
    pub generalizations: usize,
}

impl Soa {
    /// Builds the automaton for a set of observed child sequences. Node
    /// ids are assigned in lexicographic name order, so the automaton —
    /// and everything extracted from it — is independent of instance
    /// order.
    pub fn build(seqs: &BTreeSet<Vec<String>>) -> Soa {
        let names: BTreeSet<&str> = seqs.iter().flatten().map(String::as_str).collect();
        let ids: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, i + 2))
            .collect();
        let n = ids.len() + 2;
        let mut soa = Soa {
            terms: vec![None; n],
            succ: vec![BTreeSet::new(); n],
            pred: vec![BTreeSet::new(); n],
            alive: vec![true; n],
        };
        for (&name, &id) in &ids {
            soa.terms[id] = Some(ContentModel::Name(name.to_string(), Occurrence::One));
        }
        for seq in seqs {
            match seq.first() {
                None => soa.add_edge(SRC, SNK),
                Some(first) => {
                    soa.add_edge(SRC, ids[first.as_str()]);
                    for pair in seq.windows(2) {
                        soa.add_edge(ids[pair[0].as_str()], ids[pair[1].as_str()]);
                    }
                    if let Some(last) = seq.last() {
                        soa.add_edge(ids[last.as_str()], SNK);
                    }
                }
            }
        }
        soa
    }

    /// Total number of edges (including the virtual src/snk edges).
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(BTreeSet::len).sum()
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        self.succ[a].insert(b);
        self.pred[b].insert(a);
    }

    fn remove_edge(&mut self, a: usize, b: usize) {
        self.succ[a].remove(&b);
        self.pred[b].remove(&a);
    }

    fn remove_node(&mut self, n: usize) {
        for s in self.succ[n].clone() {
            self.pred[s].remove(&n);
        }
        for p in self.pred[n].clone() {
            self.succ[p].remove(&n);
        }
        self.succ[n].clear();
        self.pred[n].clear();
        self.alive[n] = false;
    }

    /// Alive expression-carrying nodes, in ascending id order.
    fn expr_nodes(&self) -> Vec<usize> {
        (2..self.terms.len()).filter(|&n| self.alive[n]).collect()
    }

    /// The automaton is fully reduced when exactly one expression node
    /// remains and the only edges are `src → r → snk`.
    fn finished(&self) -> Option<ContentModel> {
        let nodes = self.expr_nodes();
        if let [r] = nodes[..] {
            let src_ok = self.succ[SRC].len() == 1 && self.succ[SRC].contains(&r);
            let snk_ok = self.succ[r].len() == 1 && self.succ[r].contains(&SNK);
            if src_ok && snk_ok && self.pred[r].len() == 1 {
                return self.terms[r].clone();
            }
        }
        None
    }

    /// `r → r` becomes `r+`.
    fn rule_self_loop(&mut self, generalizations: &mut usize) -> bool {
        for r in self.expr_nodes() {
            if self.succ[r].contains(&r) {
                self.remove_edge(r, r);
                self.terms[r] = self.terms[r].take().map(plus);
                *generalizations += 1;
                return true;
            }
        }
        false
    }

    /// Nodes with identical predecessor and successor sets become one
    /// choice node. Identical signatures rule out edges among the merged
    /// nodes (an internal edge would put one member in the other's
    /// predecessor set but not in its own, since self-loops are gone).
    fn rule_disjunction(&mut self) -> bool {
        let mut groups: BTreeMap<(Vec<usize>, Vec<usize>), Vec<usize>> = BTreeMap::new();
        for r in self.expr_nodes() {
            let key = (
                self.pred[r].iter().copied().collect(),
                self.succ[r].iter().copied().collect(),
            );
            groups.entry(key).or_default().push(r);
        }
        for members in groups.into_values() {
            if members.len() < 2 {
                continue;
            }
            let keep = members[0];
            let parts: Vec<ContentModel> = members
                .iter()
                .filter_map(|&m| self.terms[m].clone())
                .collect();
            self.terms[keep] = Some(choice(parts));
            for &m in &members[1..] {
                self.remove_node(m);
            }
            return true;
        }
        false
    }

    /// `r1 → r2` where `r2` is `r1`'s only successor and `r1` is `r2`'s
    /// only predecessor becomes one sequence node.
    fn rule_concatenation(&mut self) -> bool {
        for r1 in self.expr_nodes() {
            let Some(&r2) = self.succ[r1].iter().next() else {
                continue;
            };
            if self.succ[r1].len() != 1 || r2 == SNK || r2 == r1 {
                continue;
            }
            if self.pred[r2].len() != 1 {
                continue;
            }
            let followers: Vec<usize> = self.succ[r2].iter().copied().collect();
            let (left, right) = (self.terms[r1].take(), self.terms[r2].take());
            self.terms[r1] = match (left, right) {
                (Some(l), Some(r)) => Some(seq(l, r)),
                _ => None,
            };
            self.remove_node(r2);
            for s in followers {
                self.add_edge(r1, s);
            }
            return true;
        }
        false
    }

    /// When every predecessor of `r` also connects directly to every
    /// successor of `r`, those bypass edges encode exactly "skip `r`":
    /// delete them and make `r` optional.
    fn rule_optional(&mut self, generalizations: &mut usize) -> bool {
        for r in self.expr_nodes() {
            let preds: Vec<usize> = self.pred[r].iter().copied().collect();
            let succs: Vec<usize> = self.succ[r].iter().copied().collect();
            if preds.is_empty() || succs.is_empty() {
                continue;
            }
            let bypassed = preds
                .iter()
                .all(|&p| succs.iter().all(|&s| self.succ[p].contains(&s)));
            if !bypassed {
                continue;
            }
            for &p in &preds {
                for &s in &succs {
                    self.remove_edge(p, s);
                }
            }
            self.terms[r] = self.terms[r].take().map(optional);
            *generalizations += 1;
            return true;
        }
        false
    }
}

/// Exhaustively applies the rewrite rules in a fixed priority order
/// (self-loop, disjunction, concatenation, optional — restarting after
/// every application). Returns `None` when the automaton has no
/// single-occurrence expression, i.e. no rule applies before full
/// reduction; callers then escalate to occurrence marking or fall back.
pub(crate) fn rewrite(mut soa: Soa) -> Option<RewriteOutcome> {
    let mut generalizations = 0;
    loop {
        if let Some(model) = soa.finished() {
            return Some(RewriteOutcome {
                model,
                generalizations,
            });
        }
        if soa.rule_self_loop(&mut generalizations) {
            continue;
        }
        if soa.rule_disjunction() {
            continue;
        }
        if soa.rule_concatenation() {
            continue;
        }
        if soa.rule_optional(&mut generalizations) {
            continue;
        }
        return None;
    }
}

/// `r+`, folding the occurrence algebra (`(r?)+` = `r*`, `(r*)+` = `r*`).
fn plus(model: ContentModel) -> ContentModel {
    with_occurrence(model, |occ| match occ {
        Occurrence::One | Occurrence::OneOrMore => Occurrence::OneOrMore,
        Occurrence::Optional | Occurrence::ZeroOrMore => Occurrence::ZeroOrMore,
    })
}

/// `r?`, folding the occurrence algebra (`(r+)?` = `r*`).
fn optional(model: ContentModel) -> ContentModel {
    with_occurrence(model, |occ| match occ {
        Occurrence::One | Occurrence::Optional => Occurrence::Optional,
        Occurrence::ZeroOrMore | Occurrence::OneOrMore => Occurrence::ZeroOrMore,
    })
}

fn with_occurrence(model: ContentModel, f: impl Fn(Occurrence) -> Occurrence) -> ContentModel {
    match model {
        ContentModel::Name(n, occ) => ContentModel::Name(n, f(occ)),
        ContentModel::Seq(parts, occ) => ContentModel::Seq(parts, f(occ)),
        ContentModel::Choice(parts, occ) => ContentModel::Choice(parts, f(occ)),
        // Src/snk never carry these and rewriting never produces them.
        other => other,
    }
}

/// `l, r` — flattening nested once-occurring sequences so extracted models
/// render as `(a, b, c)` rather than `(a, (b, c))`.
fn seq(l: ContentModel, r: ContentModel) -> ContentModel {
    let mut parts = Vec::new();
    for m in [l, r] {
        match m {
            ContentModel::Seq(inner, Occurrence::One) => parts.extend(inner),
            other => parts.push(other),
        }
    }
    ContentModel::Seq(parts, Occurrence::One)
}

/// `a | b | ...` — flattening nested once-occurring choices.
fn choice(members: Vec<ContentModel>) -> ContentModel {
    let mut parts = Vec::new();
    for m in members {
        match m {
            ContentModel::Choice(inner, Occurrence::One) => parts.extend(inner),
            other => parts.push(other),
        }
    }
    ContentModel::Choice(parts, Occurrence::One)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(rows: &[&[&str]]) -> BTreeSet<Vec<String>> {
        rows.iter()
            .map(|row| row.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    fn extract(rows: &[&[&str]]) -> Option<String> {
        rewrite(Soa::build(&seqs(rows))).map(|out| out.model.to_dtd_syntax())
    }

    #[test]
    fn chain_reduces_to_sequence() {
        assert_eq!(extract(&[&["a", "b", "c"]]).as_deref(), Some("(a, b, c)"));
    }

    #[test]
    fn missing_middle_becomes_optional() {
        assert_eq!(
            extract(&[&["a", "b", "c"], &["a", "c"]]).as_deref(),
            Some("(a, b?, c)")
        );
    }

    #[test]
    fn repeats_become_plus_and_star() {
        assert_eq!(
            extract(&[&["a", "b", "b"], &["a"]]).as_deref(),
            Some("(a, b*)")
        );
        assert_eq!(extract(&[&["a", "a"], &["a"]]).as_deref(), Some("a+"));
    }

    #[test]
    fn alternatives_become_choice() {
        assert_eq!(
            extract(&[&["a", "b"], &["a", "c"]]).as_deref(),
            Some("(a, (b | c))")
        );
        assert_eq!(extract(&[&["a"], &["b"], &[]]).as_deref(), Some("(a | b)?"));
    }

    #[test]
    fn interleaved_repeat_is_not_single_occurrence() {
        // `a b a` needs two `a` positions: no SORE exists, rewrite reports
        // failure instead of guessing.
        assert_eq!(extract(&[&["a", "b", "a"]]), None);
    }

    #[test]
    fn edge_count_counts_virtual_edges() {
        // src→a, a→b, b→snk
        assert_eq!(Soa::build(&seqs(&[&["a", "b"]])).edge_count(), 3);
    }
}
