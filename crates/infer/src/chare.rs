//! CHARE-style fallback: a chain of single names with occurrence factors.
//!
//! When rewriting the single-occurrence automaton gets stuck (and the
//! k-ORE escalation does not help), we try the simplest expression family
//! that still captures most real-world content models: a sequence
//! `a₁ᵒ¹, a₂ᵒ², …` of distinct names, each with an occurrence factor
//! derived from observed per-sequence counts. Such a chain exists exactly
//! when the corpus orders the names consistently: for every pair of names
//! the relative order is the same in every sequence that contains both.
//! Pairwise consistency also forces the occurrences of each name to be
//! contiguous within a sequence (anything between two runs of `a` would
//! have to be both before and after `a`), so the chain accepts every
//! training sequence by construction — and being single-occurrence it is
//! 1-unambiguous for free.

use lsd_xml::{ContentModel, Occurrence};
use std::collections::{BTreeMap, BTreeSet};

/// Attempts the chain expression. `None` when the corpus orders names
/// inconsistently (including interleaved repeats) — the caller then uses
/// the catch-all `(a | b | …)*`.
pub(crate) fn chare(seqs: &BTreeSet<Vec<String>>) -> Option<ContentModel> {
    let names: BTreeSet<&str> = seqs.iter().flatten().map(String::as_str).collect();
    if names.is_empty() {
        return None;
    }

    // Per-name occurrence bounds over all sequences (0 when absent).
    let mut min_count: BTreeMap<&str, usize> = BTreeMap::new();
    let mut max_count: BTreeMap<&str, usize> = BTreeMap::new();
    // `a` observed (somewhere) before `b`.
    let mut before: BTreeSet<(&str, &str)> = BTreeSet::new();

    for seq in seqs {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for name in seq {
            *counts.entry(name.as_str()).or_insert(0) += 1;
        }
        for &name in &names {
            let c = counts.get(name).copied().unwrap_or(0);
            let min = min_count.entry(name).or_insert(usize::MAX);
            *min = (*min).min(c);
            let max = max_count.entry(name).or_insert(0);
            *max = (*max).max(c);
        }
        for (i, a) in seq.iter().enumerate() {
            for b in &seq[i + 1..] {
                if a != b {
                    before.insert((a.as_str(), b.as_str()));
                }
            }
        }
    }

    // A 2-cycle means two names appear in both orders; a longer cycle is
    // caught by the topological sort below. Either way: no chain.
    if before.iter().any(|&(a, b)| before.contains(&(b, a))) {
        return None;
    }

    let order = topo_sort(&names, &before)?;
    let mut parts: Vec<ContentModel> = order
        .into_iter()
        .map(|name| {
            let occ = occurrence(min_count[name], max_count[name]);
            ContentModel::Name(name.to_string(), occ)
        })
        .collect();
    Some(if parts.len() == 1 {
        parts.remove(0)
    } else {
        ContentModel::Seq(parts, Occurrence::One)
    })
}

/// Kahn's algorithm with a lexicographic frontier, so ties between names
/// that never co-occur are broken deterministically. `None` on a cycle.
fn topo_sort<'a>(
    names: &BTreeSet<&'a str>,
    before: &BTreeSet<(&'a str, &'a str)>,
) -> Option<Vec<&'a str>> {
    let mut indegree: BTreeMap<&str, usize> = names.iter().map(|&n| (n, 0)).collect();
    for &(_, b) in before {
        *indegree.entry(b).or_insert(0) += 1;
    }
    let mut frontier: BTreeSet<&str> = indegree
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut order = Vec::with_capacity(names.len());
    while let Some(&next) = frontier.iter().next() {
        frontier.remove(next);
        order.push(next);
        for &(a, b) in before {
            if a == next {
                let d = indegree.entry(b).or_insert(0);
                *d -= 1;
                if *d == 0 {
                    frontier.insert(b);
                }
            }
        }
    }
    (order.len() == names.len()).then_some(order)
}

/// Maps observed per-sequence bounds to a DTD occurrence factor.
fn occurrence(min: usize, max: usize) -> Occurrence {
    match (min, max) {
        (0, 1) => Occurrence::Optional,
        (0, _) => Occurrence::ZeroOrMore,
        (_, 1) => Occurrence::One,
        _ => Occurrence::OneOrMore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(rows: &[&[&str]]) -> BTreeSet<Vec<String>> {
        rows.iter()
            .map(|row| row.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    fn render(rows: &[&[&str]]) -> Option<String> {
        chare(&seqs(rows)).map(|m| m.to_dtd_syntax())
    }

    #[test]
    fn consistent_order_yields_a_chain() {
        assert_eq!(
            render(&[&["a", "b", "b", "c"], &["a", "c"], &["a", "b", "c"]]).as_deref(),
            Some("(a, b*, c)")
        );
    }

    #[test]
    fn names_that_never_cooccur_are_ordered_lexicographically() {
        assert_eq!(render(&[&["b"], &["a"]]).as_deref(), Some("(a?, b?)"));
    }

    #[test]
    fn inconsistent_order_is_rejected() {
        assert_eq!(render(&[&["a", "b"], &["b", "a"]]), None);
        // Interleaved repeats imply a 2-cycle through the interleaver.
        assert_eq!(render(&[&["a", "b", "a"]]), None);
    }

    #[test]
    fn single_name_is_not_wrapped_in_a_sequence() {
        assert_eq!(render(&[&["a", "a"], &["a"]]).as_deref(), Some("a+"));
    }
}
