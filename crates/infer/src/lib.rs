//! # lsd-infer
//!
//! Deterministic DTD inference from raw, DTD-less XML instances.
//!
//! The paper's pipeline assumes every source ships a DTD; scraped data
//! almost never does. This crate learns one from positive examples alone,
//! following the program of Bex–Gelade–Neven–Vansummeren ("Learning
//! Deterministic Regular Expressions for the Inference of Schemas from
//! XML Data"): per element name, the observed child sequences are
//! aggregated into a **single-occurrence automaton** (2T-INF style), which
//! rewrite rules reduce to a **SORE** — a single-occurrence regular
//! expression, 1-unambiguous by construction. Elements whose children
//! interleave repeats (no SORE exists) escalate to **k-occurrence
//! marking** (k = 2): occurrences are distinguished, the marked automaton
//! is rewritten, and the marks are stripped — the result is kept only if
//! it passes the Glushkov 1-unambiguity check and accepts the corpus.
//! When that fails too, a **CHARE-style chain** of names with occurrence
//! factors is tried, and finally the catch-all `(a | b | …)*`, both of
//! which are deterministic and accept the corpus trivially.
//!
//! Two invariants hold for every inferred model, enforced by
//! verification against [`lsd_analysis::GlushkovAutomaton`]:
//!
//! 1. it is 1-unambiguous (zero `LSD001` findings), and
//! 2. it accepts every training instance.
//!
//! Inference is **deterministic**: all intermediate state is kept in
//! ordered containers keyed by element name, sequences are deduplicated
//! into sets, and nothing depends on instance order or thread count — the
//! same corpus always yields a byte-identical DTD.
//!
//! ```
//! use lsd_infer::infer_dtd;
//! use lsd_xml::parse_document;
//!
//! let docs = [
//!     "<house><area>Miami</area><price>$70,000</price></house>",
//!     "<house><area>Kent</area></house>",
//! ];
//! let instances: Vec<_> = docs
//!     .iter()
//!     .map(|d| parse_document(d).unwrap().root)
//!     .collect();
//! let inferred = infer_dtd(&instances).unwrap();
//! assert!(inferred.dtd.to_dtd_syntax().contains("(area, price?)"));
//! assert_eq!(inferred.stats.corpus_size, 2);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod chare;
mod soa;

use lsd_analysis::GlushkovAutomaton;
use lsd_xml::{AttDef, AttlistDecl, ContentModel, Dtd, Element, ElementDecl, Occurrence, Span};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Separator between a name and its occurrence index during k-ORE
/// marking; cannot appear in a parsed XML name.
const MARK: char = '\u{1}';

/// How a content model was obtained, from strongest to weakest evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    /// Single-occurrence rewriting succeeded directly.
    Sore,
    /// Needed k-occurrence marking (children repeat).
    KOre,
    /// Rewriting failed; CHARE chain or catch-all.
    Fallback,
}

/// Aggregate statistics of one inference run. Recorded as provenance on
/// trained models (`SourceProvenance::inferred`) so `lsd-audit` can flag
/// snapshots built on weakly-evidenced schemas.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InferenceStats {
    /// Number of training instances.
    pub corpus_size: usize,
    /// Declared elements in the inferred DTD.
    pub elements: usize,
    /// Total single-occurrence-automaton edges across all elements
    /// (including the virtual source/sink edges).
    pub edges: usize,
    /// Rewrite steps that introduced a generalizing operator
    /// (`?`/`*`/`+`), plus one per k-ORE escalation.
    pub generalizations: usize,
    /// Elements whose content model came from the CHARE chain or the
    /// catch-all rather than (k-)SORE rewriting.
    pub fallbacks: usize,
    /// Observed occurrences per element name — the evidence behind each
    /// declaration.
    pub element_support: BTreeMap<String, usize>,
}

/// A successful inference: the learned DTD and how it was earned.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The inferred schema: 1-unambiguous, accepting every training
    /// instance.
    pub dtd: Dtd,
    /// Corpus and per-element evidence.
    pub stats: InferenceStats,
}

/// Why inference could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// No instances were supplied — there is nothing to learn from.
    EmptyCorpus,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::EmptyCorpus => write!(f, "cannot infer a DTD from an empty corpus"),
        }
    }
}

impl std::error::Error for InferError {}

/// Per-element evidence aggregated over the corpus.
#[derive(Default)]
struct Facts {
    support: usize,
    /// Distinct observed child-name sequences. A *set*, so inference is
    /// independent of instance order and multiplicity.
    seqs: BTreeSet<Vec<String>>,
    has_text: bool,
    attrs: BTreeSet<String>,
}

/// Learns a deterministic DTD from raw XML instances.
///
/// Every instance contributes evidence for each element it contains:
/// child sequences, text presence, attribute names. Instances may use
/// different root elements; roots are declared first (so
/// [`Dtd::root_name`] resolves to them), remaining elements follow in
/// lexicographic order.
///
/// # Errors
/// [`InferError::EmptyCorpus`] when `instances` is empty.
pub fn infer_dtd(instances: &[Element]) -> Result<Inference, InferError> {
    let _span = lsd_obs::span!("infer.dtd");
    if instances.is_empty() {
        return Err(InferError::EmptyCorpus);
    }

    let mut roots: BTreeSet<String> = BTreeSet::new();
    let mut facts: BTreeMap<String, Facts> = BTreeMap::new();
    for instance in instances {
        roots.insert(instance.name.clone());
        instance.visit(&mut |e| {
            let f = facts.entry(e.name.clone()).or_default();
            f.support += 1;
            f.seqs
                .insert(e.child_elements().map(|c| c.name.clone()).collect());
            f.has_text |= !e.direct_text().is_empty();
            f.attrs.extend(e.attributes.iter().map(|(k, _)| k.clone()));
        });
    }

    let ordered: Vec<String> = roots
        .iter()
        .cloned()
        .chain(facts.keys().filter(|k| !roots.contains(*k)).cloned())
        .collect();

    let mut stats = InferenceStats {
        corpus_size: instances.len(),
        ..InferenceStats::default()
    };
    let mut decls = Vec::with_capacity(ordered.len());
    let mut attlists = Vec::new();
    for name in &ordered {
        let f = &facts[name];
        let model = infer_content(f, &mut stats);
        decls.push(ElementDecl::new(name.clone(), model));
        if !f.attrs.is_empty() {
            attlists.push(AttlistDecl {
                element: name.clone(),
                attrs: f
                    .attrs
                    .iter()
                    .map(|a| AttDef {
                        name: a.clone(),
                        span: Span::SYNTHETIC,
                    })
                    .collect(),
                span: Span::SYNTHETIC,
            });
        }
        stats.element_support.insert(name.clone(), f.support);
    }
    stats.elements = decls.len();

    lsd_obs::counter_add("infer.elements", "", stats.elements as u64);
    lsd_obs::counter_add("infer.generalizations", "", stats.generalizations as u64);
    lsd_obs::counter_add("infer.fallbacks", "", stats.fallbacks as u64);

    let dtd = Dtd::with_attlists(decls, attlists)
        .expect("inferred declarations are unique by construction");
    Ok(Inference { dtd, stats })
}

/// Infers one element's content model from its aggregated evidence.
fn infer_content(f: &Facts, stats: &mut InferenceStats) -> ContentModel {
    let all_empty = f.seqs.iter().all(Vec::is_empty);
    if all_empty {
        // Leaf element: text content (or nothing — `(#PCDATA)` accepts
        // the empty string too).
        return ContentModel::Pcdata;
    }
    let names: BTreeSet<&str> = f.seqs.iter().flatten().map(String::as_str).collect();
    if f.has_text {
        // Text alongside child elements: the only DTD shape is mixed
        // content, `(#PCDATA | a | b)*`.
        return ContentModel::Mixed(names.iter().map(|n| n.to_string()).collect());
    }

    stats.edges += soa::Soa::build(&f.seqs).edge_count();
    let (model, method) = infer_element_only(&f.seqs, stats);
    if method == Method::Fallback {
        stats.fallbacks += 1;
    }
    model
}

/// The element-only pipeline: SORE → k-ORE (k = 2) → CHARE → catch-all.
fn infer_element_only(
    seqs: &BTreeSet<Vec<String>>,
    stats: &mut InferenceStats,
) -> (ContentModel, Method) {
    if let Some(out) = soa::rewrite(soa::Soa::build(seqs)) {
        if verified(&out.model, seqs) {
            stats.generalizations += out.generalizations;
            return (out.model, Method::Sore);
        }
    }

    let has_repeats = seqs.iter().any(|seq| {
        let mut seen = BTreeSet::new();
        seq.iter().any(|name| !seen.insert(name))
    });
    if has_repeats {
        if let Some(out) = soa::rewrite(soa::Soa::build(&mark_sequences(seqs, 2))) {
            let model = unmark(out.model);
            // Stripping marks can reintroduce ambiguity, so the escaped
            // result only stands if it verifies against the *unmarked*
            // corpus.
            if verified(&model, seqs) {
                stats.generalizations += out.generalizations + 1;
                return (model, Method::KOre);
            }
        }
    }

    if let Some(model) = chare::chare(seqs) {
        if verified(&model, seqs) {
            return (model, Method::Fallback);
        }
    }
    (catch_all(seqs), Method::Fallback)
}

/// `(a | b | …)*` over the distinct observed names: deterministic (every
/// name occurs once) and accepting any child sequence over the alphabet.
fn catch_all(seqs: &BTreeSet<Vec<String>>) -> ContentModel {
    let names: BTreeSet<&str> = seqs.iter().flatten().map(String::as_str).collect();
    if let [name] = names.iter().copied().collect::<Vec<_>>()[..] {
        return ContentModel::Name(name.to_string(), Occurrence::ZeroOrMore);
    }
    let parts: Vec<ContentModel> = names
        .iter()
        .map(|n| ContentModel::Name(n.to_string(), Occurrence::One))
        .collect();
    ContentModel::Choice(parts, Occurrence::ZeroOrMore)
}

/// Both inference invariants at once: 1-unambiguous and accepting every
/// training sequence.
fn verified(model: &ContentModel, seqs: &BTreeSet<Vec<String>>) -> bool {
    let auto = GlushkovAutomaton::from_model(model);
    if auto.ambiguity().is_some() {
        return false;
    }
    seqs.iter().all(|seq| {
        let names: Vec<&str> = seq.iter().map(String::as_str).collect();
        auto.accepts(&names)
    })
}

/// k-ORE occurrence marking: the i-th occurrence of a name within a
/// sequence is renamed `name␁min(i, k)`, so repeats up to `k` get their
/// own automaton states while further repeats share the k-th (adjacent
/// extras become a self-loop, i.e. a `+`).
fn mark_sequences(seqs: &BTreeSet<Vec<String>>, k: usize) -> BTreeSet<Vec<String>> {
    seqs.iter()
        .map(|seq| {
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            seq.iter()
                .map(|name| {
                    let c = counts.entry(name.as_str()).or_insert(0);
                    *c += 1;
                    format!("{name}{MARK}{}", (*c).min(k))
                })
                .collect()
        })
        .collect()
}

/// Strips k-ORE marks from an extracted expression.
fn unmark(model: ContentModel) -> ContentModel {
    match model {
        ContentModel::Name(n, occ) => {
            let base = match n.find(MARK) {
                Some(i) => n[..i].to_string(),
                None => n,
            };
            ContentModel::Name(base, occ)
        }
        ContentModel::Seq(parts, occ) => {
            ContentModel::Seq(parts.into_iter().map(unmark).collect(), occ)
        }
        ContentModel::Choice(parts, occ) => {
            ContentModel::Choice(parts.into_iter().map(unmark).collect(), occ)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_document;

    fn instances(docs: &[&str]) -> Vec<Element> {
        docs.iter()
            .map(|d| parse_document(d).expect("test doc parses").root)
            .collect()
    }

    fn infer(docs: &[&str]) -> Inference {
        infer_dtd(&instances(docs)).expect("inference succeeds")
    }

    #[test]
    fn empty_corpus_is_an_error() {
        assert_eq!(infer_dtd(&[]).unwrap_err(), InferError::EmptyCorpus);
    }

    #[test]
    fn learns_nested_structure_with_occurrences() {
        let inferred = infer(&[
            "<l><addr>x</addr><ph>1</ph><ph>2</ph><agent><name>n</name></agent></l>",
            "<l><addr>y</addr><agent><name>m</name></agent></l>",
        ]);
        let text = inferred.dtd.to_dtd_syntax();
        assert!(text.contains("<!ELEMENT l (addr, ph*, agent)>"), "{text}");
        assert!(text.contains("<!ELEMENT agent (name)>"), "{text}");
        assert!(text.contains("<!ELEMENT addr (#PCDATA)>"), "{text}");
        for instance in instances(&[
            "<l><addr>x</addr><ph>1</ph><ph>2</ph><agent><name>n</name></agent></l>",
            "<l><addr>y</addr><agent><name>m</name></agent></l>",
        ]) {
            inferred.dtd.validate(&instance).expect("training accepted");
        }
    }

    #[test]
    fn interleaved_repeats_escalate_to_k_ore() {
        // a b a has no SORE; the 2-ORE pipeline learns (a, b, a) — still
        // deterministic, still accepting the corpus.
        let inferred = infer(&["<r><a/><b/><a/></r>"]);
        let decl = inferred.dtd.decl("r").expect("r declared");
        assert_eq!(decl.content.to_dtd_syntax(), "(a, b, a)");
        assert_eq!(inferred.stats.fallbacks, 0);
        inferred
            .dtd
            .validate(&instances(&["<r><a/><b/><a/></r>"])[0])
            .expect("training accepted");
    }

    #[test]
    fn inconsistent_orders_fall_back_to_catch_all() {
        let docs = ["<r><a/><b/></r>", "<r><b/><a/></r>"];
        let inferred = infer(&docs);
        let decl = inferred.dtd.decl("r").expect("r declared");
        assert_eq!(decl.content.to_dtd_syntax(), "(a | b)*");
        assert_eq!(inferred.stats.fallbacks, 1);
        for instance in instances(&docs) {
            inferred.dtd.validate(&instance).expect("training accepted");
        }
    }

    #[test]
    fn mixed_content_and_attributes_are_detected() {
        let inferred = infer(&["<p lang=\"en\">hello <b>world</b></p>"]);
        let text = inferred.dtd.to_dtd_syntax();
        assert!(text.contains("<!ELEMENT p (#PCDATA | b)*>"), "{text}");
        let attlist = &inferred.dtd.attlists()[0];
        assert_eq!(attlist.element, "p");
        assert_eq!(attlist.attrs[0].name, "lang");
    }

    #[test]
    fn stats_record_support_and_corpus_size() {
        let inferred = infer(&["<r><a/></r>", "<r><a/><a/></r>"]);
        assert_eq!(inferred.stats.corpus_size, 2);
        assert_eq!(inferred.stats.element_support["r"], 2);
        assert_eq!(inferred.stats.element_support["a"], 3);
        assert_eq!(inferred.stats.elements, 2);
        assert!(inferred.stats.edges > 0);
    }

    #[test]
    fn inference_is_independent_of_instance_order() {
        let docs = [
            "<r><a/><b/><b/></r>",
            "<r><a/></r>",
            "<r><a/><c/></r>",
            "<r><b/></r>",
        ];
        let forward = infer(&docs).dtd.to_dtd_syntax();
        let mut reversed: Vec<&str> = docs.to_vec();
        reversed.reverse();
        let backward = infer(&reversed).dtd.to_dtd_syntax();
        assert_eq!(forward, backward);
    }

    #[test]
    fn every_inferred_model_is_one_unambiguous() {
        let inferred = infer(&[
            "<r><a/><b/><a/><c/></r>",
            "<r><c/><a/></r>",
            "<r><a/><a/><a/></r>",
        ]);
        for decl in inferred.dtd.declarations() {
            assert_eq!(
                lsd_analysis::check_one_unambiguous(&decl.content),
                None,
                "{}",
                decl.name
            );
        }
    }

    #[test]
    fn distinct_roots_are_all_declared_first() {
        let inferred = infer(&["<x><k/></x>", "<y><k/></y>"]);
        let names: Vec<&str> = inferred.dtd.element_names().collect();
        assert_eq!(names, ["x", "y", "k"]);
    }
}
