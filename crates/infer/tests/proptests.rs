//! Property tests for the inference invariants: for arbitrary datagen
//! corpora the inferred DTD (a) accepts every training instance, (b)
//! passes the static schema lints with zero errors, and (c) is stable —
//! byte-identical regardless of instance order and `LSD_THREADS`.

use lsd_datagen::DomainId;
use lsd_infer::infer_dtd;
use lsd_xml::Element;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_domain() -> impl Strategy<Value = DomainId> {
    prop_oneof![
        Just(DomainId::RealEstate1),
        Just(DomainId::TimeSchedule),
        Just(DomainId::FacultyListings),
        Just(DomainId::RealEstate2),
    ]
}

/// The DTD-less corpora of one generated domain: each source's listings,
/// with the source DTD deliberately thrown away.
fn corpora(id: DomainId, listings: usize, seed: u64) -> Vec<Vec<Element>> {
    id.generate(listings, seed)
        .sources
        .into_iter()
        .map(|s| s.listings)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant (a): the inferred DTD accepts 100% of its training
    /// instances, and (b): it is clean under the static schema lints —
    /// in particular every content model passes the Glushkov
    /// 1-unambiguity check.
    #[test]
    fn inferred_dtds_accept_their_corpus_and_lint_clean(
        id in arb_domain(),
        listings in 1usize..8,
        seed in any::<u64>(),
    ) {
        for corpus in corpora(id, listings, seed) {
            let inferred = infer_dtd(&corpus).expect("non-empty corpus infers");
            for instance in &corpus {
                inferred.dtd.validate(instance).map_err(|e| {
                    TestCaseError::fail(format!("training instance rejected: {e}"))
                })?;
            }
            let diagnostics = lsd_analysis::analyze_dtd(&inferred.dtd);
            prop_assert!(
                !lsd_analysis::has_errors(&diagnostics),
                "inferred DTD has lint errors: {:?}",
                diagnostics
            );
            prop_assert_eq!(inferred.stats.corpus_size, corpus.len());
            prop_assert!(inferred.stats.elements > 0);
        }
    }

    /// Invariant (c): inference is a pure function of the corpus *set* —
    /// shuffling instance order yields a byte-identical DTD.
    #[test]
    fn inference_is_stable_under_instance_order(
        id in arb_domain(),
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        for corpus in corpora(id, 4, seed) {
            let reference = infer_dtd(&corpus).expect("infers").dtd.to_dtd_syntax();
            let mut shuffled = corpus.clone();
            shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));
            let reshuffled = infer_dtd(&shuffled).expect("infers").dtd.to_dtd_syntax();
            prop_assert_eq!(&reference, &reshuffled);
        }
    }
}

/// Invariant (c), thread axis: `LSD_THREADS` (the knob that fans out the
/// matching engine) must not leak into inference. Inference is
/// single-threaded by construction; this pins that contract. Runs as one
/// sequential test because it mutates process environment.
#[test]
fn inference_is_stable_under_lsd_threads() {
    let corpus = &corpora(DomainId::RealEstate1, 5, 7)[0];
    let mut renderings = Vec::new();
    for threads in ["1", "4", "0"] {
        std::env::set_var("LSD_THREADS", threads);
        renderings.push(infer_dtd(corpus).expect("infers").dtd.to_dtd_syntax());
    }
    std::env::remove_var("LSD_THREADS");
    assert_eq!(renderings[0], renderings[1]);
    assert_eq!(renderings[1], renderings[2]);
}
