//! Property-based tests for the metrics aggregation layer: quantile
//! estimates, shard-merge equivalence, and the event sink's drop
//! accounting.

use lsd_obs::export::{EventSink, ExportEvent};
use lsd_obs::HistogramSummary;
use proptest::prelude::*;

fn event(i: u64) -> ExportEvent {
    ExportEvent {
        kind: "counter".to_string(),
        name: format!("e{i}"),
        label: String::new(),
        value: i,
        thread: 0,
        start_ns: 0,
    }
}

proptest! {
    /// Quantile estimates are monotone in `q`, bracketed by the observed
    /// extremes' bucket bounds, and exact at the recorded min.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let h = HistogramSummary::from_samples(samples.iter().copied());
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(f64::total_cmp);
        let values: Vec<u64> = sorted_q.iter().map(|&q| h.quantile(q)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantile not monotone: {values:?}");
        }
        // Estimates are clamped to the observed range, with the extremes
        // exact: q=0 is the recorded min, q=1 the recorded max.
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        for &v in &values {
            prop_assert!((min..=max).contains(&v), "quantile {v} outside [{min}, {max}]");
        }
        prop_assert_eq!(h.quantile(0.0), min);
        prop_assert_eq!(h.quantile(1.0), max);
    }

    /// Merging per-shard histograms is exactly the histogram of the merged
    /// stream — count, sum, min, max, and every bucket agree, so sharded
    /// recording is invisible to every downstream consumer.
    #[test]
    fn merge_of_shards_equals_merged_stream(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 0..50),
            1..6,
        ),
    ) {
        let per_shard: Vec<HistogramSummary> = shards
            .iter()
            .map(|s| HistogramSummary::from_samples(s.iter().copied()))
            .collect();
        let merged = HistogramSummary::merged(per_shard.iter());
        let stream = HistogramSummary::from_samples(shards.iter().flatten().copied());
        prop_assert_eq!(merged.count, stream.count);
        prop_assert_eq!(merged.sum, stream.sum);
        prop_assert_eq!(merged.max, stream.max);
        if stream.count > 0 {
            prop_assert_eq!(merged.min, stream.min);
        }
        prop_assert_eq!(merged.bucket_counts(), stream.bucket_counts());
        // Identical buckets mean identical quantiles, but check anyway:
        // this is the property /metrics consumers actually observe.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), stream.quantile(q));
        }
    }

    /// Merging in either order gives the same summary (merge is
    /// commutative), and merging an empty histogram is the identity.
    #[test]
    fn merge_is_commutative_with_empty_identity(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let ha = HistogramSummary::from_samples(a.iter().copied());
        let hb = HistogramSummary::from_samples(b.iter().copied());
        let mut ab = ha;
        ab.merge_from(&hb);
        let mut ba = hb;
        ba.merge_from(&ha);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.sum, ba.sum);
        prop_assert_eq!(ab.min, ba.min);
        prop_assert_eq!(ab.max, ba.max);
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());

        let mut with_empty = ha;
        with_empty.merge_from(&HistogramSummary::empty());
        prop_assert_eq!(with_empty.count, ha.count);
        prop_assert_eq!(with_empty.sum, ha.sum);
        prop_assert_eq!(with_empty.min, ha.min);
        prop_assert_eq!(with_empty.bucket_counts(), ha.bucket_counts());
    }

    /// The event sink's accounting is exact at every capacity boundary:
    /// `len + dropped == pushed`, `len <= capacity`, the buffer holds
    /// exactly the newest events in order, and `dropped` counts the oldest.
    #[test]
    fn event_sink_drop_accounting_is_exact(
        capacity in 1usize..20,
        pushed in 0u64..60,
    ) {
        let mut sink = EventSink::with_capacity(capacity);
        for i in 0..pushed {
            sink.push(event(i));
        }
        prop_assert_eq!(sink.capacity(), capacity);
        prop_assert_eq!(sink.len() as u64 + sink.dropped(), pushed);
        prop_assert!(sink.len() <= capacity);
        prop_assert_eq!(
            sink.dropped(),
            pushed.saturating_sub(capacity as u64),
            "exactly the overflow is dropped"
        );
        // Survivors are the newest `len` events, oldest first.
        let first_kept = pushed.saturating_sub(capacity as u64);
        let kept: Vec<u64> = sink.events().map(|e| e.value).collect();
        let expected: Vec<u64> = (first_kept..pushed).collect();
        prop_assert_eq!(kept, expected);
        prop_assert_eq!(sink.is_empty(), pushed == 0);
    }
}
