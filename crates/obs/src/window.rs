//! Rolling-window histograms: "what is p99 *right now*", next to the
//! cumulative-since-boot registry.
//!
//! A [`RollingWindow`] is a ring of [`WINDOW_SECS`]` + 1` one-second
//! epochs, each a log2-bucket [`HistogramSummary`]. Recording a sample
//! stamps the current-second slot (lazily clearing slots left over from
//! previous laps of the ring); reading merges every slot whose stamp falls
//! inside the trailing 60 seconds. Merging log2 histograms is exact, so a
//! window summary is exactly the summary of the samples recorded in its
//! span — no decay approximation.
//!
//! The process-global registry ([`window_record`] / [`window_snapshot`])
//! is a plain mutex-guarded map, **not** the thread-local shard machinery
//! the cumulative registry uses: windows are fed at request *completion*
//! (a handful of calls per request, not per-probe), where one short lock
//! is cheaper than per-thread ring duplication and a time-based merge
//! protocol. Like every probe it is a no-op while observability is
//! disabled.

use crate::{enabled, process_epoch_secs, HistogramSummary};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

/// Width of the rolling window, in seconds.
pub const WINDOW_SECS: u64 = 60;

/// Ring slots: one per window second plus one being overwritten.
const SLOTS: usize = WINDOW_SECS as usize + 1;

/// A 60-second rolling histogram over one-second epochs.
///
/// Time is passed in explicitly (seconds on any monotonic clock) so the
/// ring is deterministic under test; the global registry feeds it seconds
/// since the process timing epoch.
pub struct RollingWindow {
    /// `(second stamp, samples recorded in that second)` per ring slot.
    /// A slot belongs to the window iff its stamp is within the trailing
    /// [`WINDOW_SECS`] seconds of "now"; stale stamps are dead laps.
    slots: Box<[(u64, HistogramSummary); SLOTS]>,
}

impl Default for RollingWindow {
    fn default() -> Self {
        RollingWindow::new()
    }
}

impl RollingWindow {
    /// An empty window.
    pub fn new() -> RollingWindow {
        RollingWindow {
            // Stamp u64::MAX marks "never written" (no real second reaches
            // it; second 0 must stay distinguishable from an empty slot).
            slots: Box::new([(u64::MAX, HistogramSummary::empty()); SLOTS]),
        }
    }

    /// Records `v` into the epoch for second `sec`, clearing the slot
    /// first if it still holds data from a previous lap of the ring.
    pub fn record_at(&mut self, sec: u64, v: u64) {
        let slot = &mut self.slots[(sec % SLOTS as u64) as usize];
        if slot.0 != sec {
            *slot = (sec, HistogramSummary::empty());
        }
        slot.1.observe(v);
    }

    /// Merged summary of every sample recorded in `[sec - WINDOW_SECS,
    /// sec]` — the trailing window (inclusive at both ends, which is
    /// exactly the span the 61-slot ring holds collision-free) as seen at
    /// second `sec`. The never-written stamp `u64::MAX` can't satisfy
    /// `stamp <= sec`, so empty slots are skipped for free.
    pub fn summary_at(&self, sec: u64) -> HistogramSummary {
        let floor = sec.saturating_sub(WINDOW_SECS);
        let mut out = HistogramSummary::empty();
        for (stamp, hist) in self.slots.iter() {
            if *stamp <= sec && *stamp >= floor {
                out.merge_from(hist);
            }
        }
        out
    }
}

type Key = (&'static str, &'static str);

fn registry() -> &'static Mutex<HashMap<Key, RollingWindow>> {
    static REG: OnceLock<Mutex<HashMap<Key, RollingWindow>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records one sample into the rolling window `(name, label)`, stamped
/// with the current second. No-op when observability is disabled.
pub fn window_record(name: &'static str, label: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    let sec = process_epoch_secs();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.entry((name, label)).or_default().record_at(sec, v);
}

/// Records an elapsed duration (nanoseconds) into the rolling window
/// `(name, label)`. No-op when disabled.
pub fn window_record_duration(name: &'static str, label: &'static str, d: std::time::Duration) {
    window_record(name, label, d.as_nanos() as u64);
}

/// Current trailing-window summaries for every recorded series, keyed like
/// the cumulative snapshot (`name` / `name/label`). Series whose window is
/// empty (no samples in the last [`WINDOW_SECS`] seconds) are omitted.
pub fn window_snapshot() -> BTreeMap<String, HistogramSummary> {
    let sec = process_epoch_secs();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .filter_map(|(key, window)| {
            let summary = window.summary_at(sec);
            (summary.count > 0).then(|| (crate::flat_key(key), summary))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sees_only_the_trailing_sixty_seconds() {
        let mut w = RollingWindow::new();
        w.record_at(100, 10);
        w.record_at(130, 20);
        w.record_at(160, 30);
        let at_160 = w.summary_at(160);
        assert_eq!(at_160.count, 3, "all three inside (100, 160]");
        // At second 161 the sample from second 100 ages out (floor 101).
        let at_161 = w.summary_at(161);
        assert_eq!((at_161.count, at_161.min, at_161.max), (2, 20, 30));
        // Far in the future everything has aged out.
        assert_eq!(w.summary_at(400).count, 0);
    }

    #[test]
    fn ring_reuse_clears_stale_laps() {
        let mut w = RollingWindow::new();
        w.record_at(5, 111);
        // Second 5 + SLOTS lands on the same ring slot one lap later.
        let next_lap = 5 + SLOTS as u64;
        w.record_at(next_lap, 222);
        let s = w.summary_at(next_lap);
        assert_eq!((s.count, s.min, s.max), (1, 222, 222), "old lap cleared");
    }

    #[test]
    fn second_zero_is_recordable() {
        let mut w = RollingWindow::new();
        w.record_at(0, 7);
        let s = w.summary_at(0);
        assert_eq!((s.count, s.min), (1, 7));
        assert_eq!(w.summary_at(WINDOW_SECS).count, 1, "still inside window");
        assert_eq!(w.summary_at(WINDOW_SECS + 1).count, 0, "aged out");
    }

    #[test]
    fn window_merge_is_exact_over_the_covered_seconds() {
        let mut w = RollingWindow::new();
        let samples: Vec<u64> = (0..50).map(|i| i * 37 + 1).collect();
        for (i, &v) in samples.iter().enumerate() {
            w.record_at(200 + (i as u64 % 10), v);
        }
        let s = w.summary_at(209);
        let expect = HistogramSummary::from_samples(samples.iter().copied());
        assert_eq!(s, expect, "ring merge equals straight summary");
    }

    #[test]
    fn global_registry_is_gated_on_enabled() {
        // Not under `collect` — recording is off, so nothing lands.
        window_record("win.gated", "", 5);
        assert!(!window_snapshot().contains_key("win.gated"));
    }
}
