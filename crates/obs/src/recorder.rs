//! Slow-request flight recorder: a bounded ring of tail-sampled traces.
//!
//! Tail sampling decides *after* a request completes whether it was
//! interesting — latency over the configured threshold, or a 4xx/5xx
//! response — and only then stores its assembled span tree as a
//! [`TraceSample`]. Healthy traffic costs nothing here beyond the
//! per-request decision branch.
//!
//! The ring is bounded ([`FlightRecorder::capacity`]): storing into a full
//! ring evicts the oldest sample and bumps the `evicted` counter, so a
//! storm of slow requests degrades to "most recent N" rather than
//! unbounded memory. Writers take one short mutex per *sampled* request —
//! "lock-free-ish" in the sense that the hot path (requests that are not
//! sampled) never touches the lock, only two relaxed atomics.

use crate::trace::TraceId;
use crate::SpanRecord;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One tail-sampled request: identity, outcome, and the full span tree.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSample {
    /// The request's trace id (32-hex in JSON).
    pub trace_id: TraceId,
    /// Route label, e.g. `"match"`.
    pub route: String,
    /// Model slug the request resolved to (empty when none).
    pub model: String,
    /// HTTP status the request answered with.
    pub status: u16,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Why the sample was kept: `"slow"`, `"error"`, or `"slow+error"`.
    pub reason: String,
    /// Unix timestamp (milliseconds) of request completion.
    pub unix_ms: u64,
    /// The spans collected for this trace, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the per-trace cap was hit.
    pub truncated_spans: u64,
}

/// Bounded ring of [`TraceSample`]s with eviction accounting.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceSample>>,
    capacity: usize,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a sample, evicting the oldest if the ring is full.
    pub fn record(&self, sample: TraceSample) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(sample);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> Vec<TraceSample> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Looks up a retained sample by trace id (most recent wins if a trace
    /// id was somehow sampled twice).
    pub fn find(&self, trace_id: TraceId) -> Option<TraceSample> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().find(|s| s.trace_id == trace_id).cloned()
    }

    /// Total samples ever stored.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Samples evicted to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Default ring capacity of the process-global recorder.
pub const DEFAULT_CAPACITY: usize = 256;

/// The process-global flight recorder (capacity [`DEFAULT_CAPACITY`]).
pub fn flight_recorder() -> &'static FlightRecorder {
    static REC: OnceLock<FlightRecorder> = OnceLock::new();
    REC.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::synthetic_span;

    fn sample(id: u128, total_ns: u64) -> TraceSample {
        let trace_id = TraceId(id);
        TraceSample {
            trace_id,
            route: "match".to_string(),
            model: "real-estate-1".to_string(),
            status: 200,
            total_ns,
            reason: "slow".to_string(),
            unix_ms: 0,
            spans: vec![synthetic_span(
                "serve.request",
                "",
                0,
                total_ns,
                trace_id,
                None,
            )],
            truncated_spans: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let rec = FlightRecorder::new(3);
        for i in 1..=5u128 {
            rec.record(sample(i, i as u64 * 100));
        }
        let ids: Vec<u128> = rec.samples().iter().map(|s| s.trace_id.0).collect();
        assert_eq!(ids, [3, 4, 5], "oldest evicted first");
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.evicted(), 2);
        assert_eq!(rec.capacity(), 3);
    }

    #[test]
    fn find_locates_by_trace_id() {
        let rec = FlightRecorder::new(8);
        rec.record(sample(7, 100));
        rec.record(sample(9, 200));
        assert_eq!(rec.find(TraceId(9)).expect("found").total_ns, 200);
        assert!(rec.find(TraceId(1234)).is_none());
    }

    #[test]
    fn samples_serialize_with_span_trees() {
        let json = serde_json::to_string(&sample(0xabc, 5_000)).expect("serializable");
        assert!(json.contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(json.contains("\"spans\""));
        assert!(json.contains("serve.request"));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record(sample(1, 10));
        rec.record(sample(2, 20));
        assert_eq!(rec.samples().len(), 1);
        assert_eq!(rec.evicted(), 1);
    }
}
