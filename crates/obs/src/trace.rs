//! Request-scoped trace contexts and the active-trace span collector.
//!
//! A [`TraceContext`] identifies one request end-to-end: a 128-bit trace id
//! plus the 64-bit id of the current span within it, in the shape of the
//! W3C Trace Context `traceparent` header (`00-<trace>-<span>-<flags>`), so
//! callers can ingest upstream contexts and propagate their own.
//!
//! Two mechanisms thread the context through the pipeline:
//!
//! * **Thread-local scope** — [`TraceScope::enter`] marks the context as
//!   current for the calling thread; every [`SpanGuard`](crate::SpanGuard)
//!   opened while a scope is active stamps its [`SpanRecord`] with the
//!   trace id, and the closed record is mirrored into the trace's span
//!   list. Scopes nest and restore the previous context on drop, so a
//!   worker can flip between jobs cheaply.
//! * **Explicit attachment** — work that covers *several* requests at once
//!   (the serve worker pool coalesces many jobs into one `match_batch`
//!   micro-batch) cannot sit inside a single scope. [`attach`] appends a
//!   synthetic [`SpanRecord`] (built with [`synthetic_span`]) to any live
//!   trace, so one batch execution shows up in every member request's
//!   span tree with its true start and duration.
//!
//! Traces are tracked between [`begin`] and [`finish`]; `finish` returns
//! the collected spans (sorted by start time) for the caller to render,
//! tail-sample into the [`FlightRecorder`](crate::FlightRecorder), or
//! drop. The collector is bounded: at most [`MAX_ACTIVE_TRACES`] live
//! traces and [`MAX_SPANS_PER_TRACE`] spans per trace — beyond either
//! limit spans are counted but not stored, never unbounded memory.

use crate::{now_ns, SpanRecord};
use serde::{Serialize, Value};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// 128-bit trace identifier. Displays (and serializes) as the 32 lowercase
/// hex digits used in `traceparent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for TraceId {
    type Err = ();

    /// Parses exactly 32 lowercase/uppercase hex digits; the all-zero id is
    /// rejected (the W3C spec reserves it as "invalid").
    fn from_str(s: &str) -> Result<TraceId, ()> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(());
        }
        match u128::from_str_radix(s, 16) {
            Ok(0) | Err(_) => Err(()),
            Ok(v) => Ok(TraceId(v)),
        }
    }
}

impl Serialize for TraceId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// One request's position in a distributed trace: which trace it belongs
/// to, which span represents it, and whether the upstream asked for it to
/// be sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit trace this request belongs to.
    pub trace_id: TraceId,
    /// The 64-bit id of the request's root span (the `parent-id` field of
    /// an outgoing `traceparent`).
    pub span_id: u64,
    /// The `sampled` flag from the upstream `traceparent` (set for
    /// generated contexts).
    pub sampled: bool,
}

/// Cheap process-local entropy: the std `RandomState` per-process seed
/// hashed with a monotonically increasing counter and the current clock.
/// Not cryptographic — collision-resistant enough for trace ids.
fn entropy(stream: u64) -> u64 {
    static STATE: OnceLock<std::collections::hash_map::RandomState> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0x9e37_79b9);
    let mut h = STATE.get_or_init(Default::default).build_hasher();
    h.write_u64(stream);
    h.write_u64(COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed));
    h.write_u64(now_ns());
    h.finish()
}

impl TraceContext {
    /// A fresh context with random non-zero trace and span ids, sampled.
    pub fn generate() -> TraceContext {
        let hi = entropy(1);
        let lo = entropy(2);
        let trace_id = TraceId((u128::from(hi) << 64 | u128::from(lo)).max(1));
        TraceContext {
            trace_id,
            span_id: entropy(3).max(1),
            sampled: true,
        }
    }

    /// Parses a W3C `traceparent` header value
    /// (`{version}-{trace-id}-{parent-id}-{flags}`). Returns `None` for
    /// malformed values, the reserved version `ff`, or all-zero ids —
    /// callers fall back to [`generate`](TraceContext::generate).
    pub fn from_traceparent(value: &str) -> Option<TraceContext> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        if version.len() != 2 || !version.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        if version.eq_ignore_ascii_case("ff") {
            return None;
        }
        let trace_id: TraceId = parts.next()?.parse().ok()?;
        let span_hex = parts.next()?;
        if span_hex.len() != 16 || !span_hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let span_id = u64::from_str_radix(span_hex, 16).ok()?;
        if span_id == 0 {
            return None;
        }
        let flags = parts.next()?;
        if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let sampled = u8::from_str_radix(flags, 16).ok()? & 1 == 1;
        Some(TraceContext {
            trace_id,
            span_id,
            sampled,
        })
    }

    /// Renders the context as a version-00 `traceparent` header value.
    pub fn to_traceparent(&self) -> String {
        format!(
            "00-{}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// The same trace with a fresh span id — the context a child unit of
    /// work propagates onward.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: entropy(4).max(1),
            sampled: self.sampled,
        }
    }
}

thread_local! {
    /// The trace context current on this thread, if any.
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context current on this thread, if a [`TraceScope`] is active.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Marks a [`TraceContext`] as current for the enclosing scope; restores
/// the previous context (scopes nest) on drop.
#[must_use = "the scope ends when this guard drops"]
pub struct TraceScope {
    previous: Option<TraceContext>,
}

impl TraceScope {
    /// Enters `context` on the calling thread.
    pub fn enter(context: TraceContext) -> TraceScope {
        TraceScope {
            previous: CURRENT.with(|c| c.replace(Some(context))),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous.take()));
    }
}

/// Upper bound on concurrently tracked traces. A request arriving beyond
/// it is simply not tracked (its spans still reach the metric registry).
pub const MAX_ACTIVE_TRACES: usize = 1024;

/// Upper bound on spans stored per trace; extra spans are counted in the
/// trace's `truncated` tally but not stored.
pub const MAX_SPANS_PER_TRACE: usize = 256;

#[derive(Default)]
struct ActiveTrace {
    spans: Vec<SpanRecord>,
    truncated: u64,
}

fn active() -> &'static Mutex<HashMap<u128, ActiveTrace>> {
    static ACTIVE: OnceLock<Mutex<HashMap<u128, ActiveTrace>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Starts tracking `context`'s trace. Returns `false` (and tracks nothing)
/// when [`MAX_ACTIVE_TRACES`] traces are already live or the trace id is
/// already tracked — the request still runs, it just cannot be sampled.
pub fn begin(context: &TraceContext) -> bool {
    let mut map = active().lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= MAX_ACTIVE_TRACES || map.contains_key(&context.trace_id.0) {
        return false;
    }
    map.insert(context.trace_id.0, ActiveTrace::default());
    true
}

/// Appends a span record to a live trace; a no-op for untracked traces.
pub fn attach(trace_id: TraceId, record: SpanRecord) {
    let mut map = active().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = map.get_mut(&trace_id.0) {
        if entry.spans.len() < MAX_SPANS_PER_TRACE {
            entry.spans.push(record);
        } else {
            entry.truncated += 1;
        }
    }
}

/// Called by `SpanGuard` when a span closed under an active scope.
pub(crate) fn note_closed_span(record: &SpanRecord) {
    if let Some(trace) = record.trace {
        attach(trace, record.clone());
    }
}

/// Stops tracking the trace and returns `(spans sorted by start, spans
/// dropped over the per-trace cap)`. Untracked traces yield `([], 0)`.
pub fn finish(trace_id: TraceId) -> (Vec<SpanRecord>, u64) {
    let entry = {
        let mut map = active().lock().unwrap_or_else(|e| e.into_inner());
        map.remove(&trace_id.0)
    };
    match entry {
        Some(mut entry) => {
            entry.spans.sort_by_key(|s| (s.start_ns, s.id));
            (entry.spans, entry.truncated)
        }
        None => (Vec::new(), 0),
    }
}

/// Builds a synthetic [`SpanRecord`] — a span measured outside the
/// [`SpanGuard`](crate::SpanGuard) machinery, e.g. queue wait reconstructed
/// from an enqueue timestamp — ready for [`attach`]. `start_ns` is an
/// offset from the process timing epoch (see [`now_ns`]).
pub fn synthetic_span(
    name: &'static str,
    label: &'static str,
    start_ns: u64,
    duration_ns: u64,
    trace_id: TraceId,
    parent: Option<u64>,
) -> SpanRecord {
    SpanRecord {
        name,
        label,
        id: crate::alloc_span_id(),
        parent,
        thread: crate::current_thread_ordinal(),
        start_ns,
        duration_ns,
        trace: Some(trace_id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: TraceId(0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c),
            span_id: 0x00f0_67aa_0ba9_02b7,
            sampled: true,
        };
        let header = ctx.to_traceparent();
        assert_eq!(
            header,
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"
        );
        assert_eq!(TraceContext::from_traceparent(&header), Some(ctx));
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "garbage",
            "00-short-00f067aa0ba902b7-01",
            // all-zero trace id is reserved
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            // all-zero parent id is reserved
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            // version ff is reserved
            "ff-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-zz",
            "00-zzf7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
        ] {
            assert_eq!(TraceContext::from_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn unsampled_flag_parses() {
        let ctx = TraceContext::from_traceparent(
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-00",
        )
        .expect("valid");
        assert!(!ctx.sampled);
    }

    #[test]
    fn generated_contexts_are_distinct_and_nonzero() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id.0, 0);
        assert_ne!(a.span_id, 0);
        assert!(a.sampled);
        // And they survive their own header rendering.
        assert_eq!(TraceContext::from_traceparent(&a.to_traceparent()), Some(a));
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), None);
        let outer = TraceContext::generate();
        let inner = TraceContext::generate();
        {
            let _o = TraceScope::enter(outer);
            assert_eq!(current(), Some(outer));
            {
                let _i = TraceScope::enter(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn begin_attach_finish_collects_spans_in_start_order() {
        let ctx = TraceContext::generate();
        assert!(begin(&ctx));
        assert!(!begin(&ctx), "double-begin is rejected");
        attach(
            ctx.trace_id,
            synthetic_span("b", "", 20, 5, ctx.trace_id, None),
        );
        attach(
            ctx.trace_id,
            synthetic_span("a", "", 10, 5, ctx.trace_id, None),
        );
        let (spans, truncated) = finish(ctx.trace_id);
        assert_eq!(truncated, 0);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["a", "b"], "sorted by start_ns");
        assert!(spans.iter().all(|s| s.trace == Some(ctx.trace_id)));
        // Finished traces are gone.
        assert_eq!(finish(ctx.trace_id).0.len(), 0);
    }

    #[test]
    fn per_trace_span_cap_counts_overflow() {
        let ctx = TraceContext::generate();
        assert!(begin(&ctx));
        for i in 0..(MAX_SPANS_PER_TRACE as u64 + 7) {
            attach(
                ctx.trace_id,
                synthetic_span("s", "", i, 1, ctx.trace_id, None),
            );
        }
        let (spans, truncated) = finish(ctx.trace_id);
        assert_eq!(spans.len(), MAX_SPANS_PER_TRACE);
        assert_eq!(truncated, 7);
    }

    #[test]
    fn scoped_spans_are_stamped_and_collected() {
        let ctx = TraceContext::generate();
        assert!(begin(&ctx));
        let ((), _snap) = crate::collect(|| {
            let _scope = TraceScope::enter(ctx);
            let _outer = crate::span!("traced.outer");
            let _inner = crate::span!("traced.inner");
        });
        let (spans, _) = finish(ctx.trace_id);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(
            names.contains(&"traced.outer") && names.contains(&"traced.inner"),
            "{names:?}"
        );
        assert!(spans.iter().all(|s| s.trace == Some(ctx.trace_id)));
    }
}
