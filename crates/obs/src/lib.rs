//! Zero-dependency observability for the LSD pipeline.
//!
//! Two instruments, one aggregation strategy:
//!
//! * **Spans** — [`span!`] opens a lightweight tracing span with monotonic
//!   timing, a thread ordinal, and parent nesting (tracked per thread via a
//!   span stack). Every closed span is also folded into a duration histogram
//!   keyed `span.<name>`, so coarse wall-time summaries survive even when
//!   callers only look at the metric tables.
//! * **Metrics** — [`counter_add`], [`gauge_max`] and [`record_value`] feed a
//!   registry of counters, high-watermark gauges and `{count, sum, min, max}`
//!   histograms keyed by `(name, label)` pairs of `&'static str`.
//!
//! Besides the pipeline's own probes (A\* search counters, per-learner
//! train/predict timings, CV fold counts, batch-queue occupancy), the
//! static-analysis gate in `lsd-core` records warning-severity diagnostics
//! here: `analysis.warnings` counts them in total, and
//! `analysis.diagnostics` is labelled per code (flattened to
//! `analysis.diagnostics/LSD003`-style keys in the snapshot).
//!
//! # Shard-and-merge aggregation
//!
//! Probes write to a **thread-local shard** — no locks, no shared cache lines
//! in the hot loop. Shards drain into a process-wide aggregate at two points:
//! when a thread exits (the shard's TLS destructor fires, which for
//! `std::thread::scope` workers happens before the scope returns) and when the
//! owning thread calls [`flush`] explicitly. [`collect`] wraps a closure with
//! the full lifecycle: bump the epoch (invalidating any stale shard contents
//! left over from a previous collection), enable recording, run the closure,
//! flush the calling thread, and return a [`MetricsSnapshot`] of everything
//! the closure's thread tree recorded.
//!
//! # Disabled-mode cost
//!
//! Every probe starts with one `Relaxed` load of a global `AtomicBool` and
//! returns immediately when observability is off — no TLS access, no
//! allocation, no time reads. [`span!`] yields a guard wrapping `None`, whose
//! drop is a single branch.

use serde::Serialize;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch. Off by default; [`collect`] turns it on for the
/// duration of the wrapped closure.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Collection epoch. Shards stamped with an older epoch are cleared on next
/// use instead of leaking data from a previous [`collect`] call.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Dense thread ordinals for span records (thread names are not guaranteed
/// and `ThreadId` has no stable integer form on older toolchains).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Globally unique span ids, so parent links survive the shard merge.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// The instant all span start offsets are measured from.
fn process_epoch() -> Instant {
    static T: OnceLock<Instant> = OnceLock::new();
    *T.get_or_init(Instant::now)
}

type Key = (&'static str, &'static str);

/// A closed span: timing, thread ordinal and parent link.
///
/// `parent` is the [`SpanRecord::id`] of the span that was open on the same
/// thread when this one was entered, or `None` for a root span.
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    /// Static span name, e.g. `"train.cv_fold"`.
    pub name: &'static str,
    /// Optional static label, e.g. a learner name. Empty when unused.
    pub label: &'static str,
    /// Globally unique id (unique within one process run).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dense ordinal of the recording thread.
    pub thread: u64,
    /// Start offset in nanoseconds from the process-wide timing epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

/// `{count, sum, min, max}` summary of recorded `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSummary {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn new(v: u64) -> Self {
        HistogramSummary {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Tables {
    counters: HashMap<Key, u64>,
    gauges: HashMap<Key, u64>,
    histograms: HashMap<Key, HistogramSummary>,
    spans: Vec<SpanRecord>,
}

impl Tables {
    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

struct Shard {
    epoch: u64,
    thread: u64,
    tables: Tables,
    /// Ids of spans currently open on this thread, innermost last.
    open_spans: Vec<u64>,
}

impl Shard {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.tables = Tables::default();
        self.open_spans.clear();
    }
}

/// Merges the shard into the global aggregate on thread exit.
struct ShardHolder(Shard);

impl Drop for ShardHolder {
    fn drop(&mut self) {
        merge_into_global(&mut self.0);
    }
}

thread_local! {
    static SHARD: RefCell<ShardHolder> = RefCell::new(ShardHolder(Shard {
        epoch: 0,
        thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        tables: Tables::default(),
        open_spans: Vec::new(),
    }));
}

fn global() -> &'static Mutex<Tables> {
    static GLOBAL: OnceLock<Mutex<Tables>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Tables::default()))
}

fn merge_into_global(shard: &mut Shard) {
    if shard.tables.is_empty() || shard.epoch != EPOCH.load(Ordering::Relaxed) {
        shard.tables = Tables::default();
        return;
    }
    let mut tables = Tables::default();
    std::mem::swap(&mut tables, &mut shard.tables);
    let mut agg = global().lock().unwrap_or_else(|e| e.into_inner());
    for (k, v) in tables.counters {
        *agg.counters.entry(k).or_insert(0) += v;
    }
    for (k, v) in tables.gauges {
        let slot = agg.gauges.entry(k).or_insert(0);
        *slot = (*slot).max(v);
    }
    for (k, v) in tables.histograms {
        agg.histograms
            .entry(k)
            .and_modify(|h| h.merge(&v))
            .or_insert(v);
    }
    agg.spans.extend(tables.spans);
}

/// Runs `f` on this thread's shard, resetting it first if it belongs to a
/// previous collection epoch. Returns `None` during TLS teardown.
fn with_shard<R>(f: impl FnOnce(&mut Shard) -> R) -> Option<R> {
    SHARD
        .try_with(|cell| {
            let mut holder = cell.borrow_mut();
            let epoch = EPOCH.load(Ordering::Relaxed);
            if holder.0.epoch != epoch {
                holder.0.reset(epoch);
            }
            f(&mut holder.0)
        })
        .ok()
}

/// True when probes are recording. One `Relaxed` atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off globally. Prefer [`collect`], which also
/// isolates the data of one run; this is the escape hatch for long-lived
/// recording (e.g. a server exporting metrics periodically).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Adds `n` to the counter `(name, label)`. No-op when disabled.
#[inline]
pub fn counter_add(name: &'static str, label: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| *s.tables.counters.entry((name, label)).or_insert(0) += n);
}

/// Raises the high-watermark gauge `(name, label)` to at least `v`.
/// Gauges merge by maximum so the snapshot reports the peak across all
/// threads. No-op when disabled.
#[inline]
pub fn gauge_max(name: &'static str, label: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        let slot = s.tables.gauges.entry((name, label)).or_insert(0);
        *slot = (*slot).max(v);
    });
}

/// Records one sample into the histogram `(name, label)`. No-op when
/// disabled.
#[inline]
pub fn record_value(name: &'static str, label: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        s.tables
            .histograms
            .entry((name, label))
            .and_modify(|h| h.record(v))
            .or_insert_with(|| HistogramSummary::new(v));
    });
}

/// Records an elapsed duration (nanoseconds) into the histogram
/// `(name, label)`. No-op when disabled.
#[inline]
pub fn record_duration(name: &'static str, label: &'static str, elapsed: std::time::Duration) {
    record_value(name, label, elapsed.as_nanos() as u64);
}

/// Opens a tracing span; prefer the [`span!`] macro.
///
/// The guard records the span when dropped. When observability is disabled
/// the guard is inert and costs one branch on drop.
pub struct SpanGuard {
    data: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    label: &'static str,
    id: u64,
    parent: Option<u64>,
    epoch: u64,
    start: Instant,
    start_ns: u64,
}

impl SpanGuard {
    /// Enters a span named `name` with an optional static `label`.
    pub fn enter(name: &'static str, label: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { data: None };
        }
        let start = Instant::now();
        let start_ns = start.duration_since(process_epoch()).as_nanos() as u64;
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let info = with_shard(|s| {
            let parent = s.open_spans.last().copied();
            s.open_spans.push(id);
            (parent, s.epoch)
        });
        let Some((parent, epoch)) = info else {
            return SpanGuard { data: None };
        };
        SpanGuard {
            data: Some(OpenSpan {
                name,
                label,
                id,
                parent,
                epoch,
                start,
                start_ns,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.data.take() else {
            return;
        };
        let duration_ns = open.start.elapsed().as_nanos() as u64;
        with_shard(|s| {
            // If the epoch rolled over mid-span (a new `collect` started),
            // the shard was cleared; drop the record rather than emit a span
            // whose parent no longer exists.
            if s.epoch != open.epoch {
                return;
            }
            if let Some(pos) = s.open_spans.iter().rposition(|&id| id == open.id) {
                s.open_spans.truncate(pos);
            }
            s.tables.spans.push(SpanRecord {
                name: open.name,
                label: open.label,
                id: open.id,
                parent: open.parent,
                thread: s.thread,
                start_ns: open.start_ns,
                duration_ns,
            });
            s.tables
                .histograms
                .entry(("span", open.name))
                .and_modify(|h| h.record(duration_ns))
                .or_insert_with(|| HistogramSummary::new(duration_ns));
        });
    }
}

/// Opens a tracing span for the enclosing scope.
///
/// ```
/// let _span = lsd_obs::span!("train.cv_fold");
/// let _labeled = lsd_obs::span!("learner.train", "naive_bayes");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, "")
    };
    ($name:expr, $label:expr) => {
        $crate::SpanGuard::enter($name, $label)
    };
}

/// Merges this thread's shard into the global aggregate immediately.
///
/// Worker threads merge automatically on exit; the thread driving a
/// collection calls this (via [`collect`]) before snapshotting.
pub fn flush() {
    with_shard(merge_into_global_entry);
}

fn merge_into_global_entry(shard: &mut Shard) {
    merge_into_global(shard);
}

/// Everything one [`collect`] run recorded, with keys flattened to
/// `name` / `name/label` strings (deterministically ordered).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges, max-merged across threads.
    pub gauges: BTreeMap<String, u64>,
    /// Sample summaries (durations in nanoseconds unless noted).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Closed spans in merge order. Ids and timings vary run to run.
    pub spans: Vec<SpanRecord>,
}

fn flat_key(key: &Key) -> String {
    if key.1.is_empty() {
        key.0.to_string()
    } else {
        format!("{}/{}", key.0, key.1)
    }
}

impl MetricsSnapshot {
    /// Counter value for a flattened key (`"astar.nodes_expanded"` or
    /// `"learner.predict_calls/naive_bayes"`); 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value for a flattened key, if recorded.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Histogram summary for a flattened key, if recorded. Span durations
    /// appear under `"span/<name>"`.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms.get(key)
    }

    /// `(suffix, value)` pairs of all counters whose key starts with
    /// `prefix + "/"` — e.g. `counters_labelled("learner.predict_ns")`
    /// yields one entry per learner.
    pub fn counters_labelled(&self, prefix: &str) -> Vec<(&str, u64)> {
        let want = format!("{prefix}/");
        self.counters
            .iter()
            .filter_map(|(k, &v)| k.strip_prefix(&want).map(|s| (s, v)))
            .collect()
    }

    /// `(suffix, summary)` pairs of all histograms whose key starts with
    /// `prefix + "/"` — e.g. `histograms_labelled("learner.train_ns")`
    /// yields one summary per learner.
    pub fn histograms_labelled(&self, prefix: &str) -> Vec<(&str, &HistogramSummary)> {
        let want = format!("{prefix}/");
        self.histograms
            .iter()
            .filter_map(|(k, h)| k.strip_prefix(&want).map(|s| (s, h)))
            .collect()
    }

    /// The deterministic subset (counters and gauges only — histograms and
    /// spans carry wall-clock measurements that vary run to run). Two runs
    /// of the same deterministic pipeline must produce equal values here
    /// regardless of thread count.
    pub fn deterministic_view(&self) -> (&BTreeMap<String, u64>, &BTreeMap<String, u64>) {
        (&self.counters, &self.gauges)
    }

    fn from_tables(tables: &Tables) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: tables
                .counters
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            gauges: tables
                .gauges
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            histograms: tables
                .histograms
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            spans: tables.spans.clone(),
        }
    }
}

/// Records everything `f` (and the threads it spawns and joins) does, and
/// returns `f`'s result with the snapshot.
///
/// Collections are serialized process-wide: concurrent `collect` calls run
/// one after another so their data cannot interleave. Worker threads created
/// inside `f` with `std::thread::scope` merge their shards when they exit,
/// i.e. before `f` returns; threads that outlive `f` contribute whatever
/// they flushed in time.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    static COLLECT_LOCK: Mutex<()> = Mutex::new(());
    let _guard = COLLECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    EPOCH.fetch_add(1, Ordering::SeqCst);
    {
        let mut agg = global().lock().unwrap_or_else(|e| e.into_inner());
        *agg = Tables::default();
    }
    let was_enabled = ENABLED.swap(true, Ordering::SeqCst);
    let result = f();
    flush();
    ENABLED.store(was_enabled, Ordering::SeqCst);
    let snapshot = {
        let agg = global().lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot::from_tables(&agg)
    };
    (result, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let (_, snap) = collect(|| ());
        assert!(snap.counters.is_empty());
        counter_add("ghost", "", 7);
        let (_, snap) = collect(|| ());
        assert_eq!(snap.counter("ghost"), 0, "pre-collect data must not leak");
    }

    #[test]
    fn counters_sum_across_scoped_threads() {
        let (_, snap) = collect(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| counter_add("work.items", "", 10));
                }
            });
            counter_add("work.items", "", 2);
        });
        assert_eq!(snap.counter("work.items"), 42);
    }

    #[test]
    fn gauges_take_the_maximum() {
        let (_, snap) = collect(|| {
            gauge_max("cache.size", "", 5);
            gauge_max("cache.size", "", 3);
            std::thread::scope(|scope| {
                scope.spawn(|| gauge_max("cache.size", "", 9));
            });
        });
        assert_eq!(snap.gauge("cache.size"), Some(9));
    }

    #[test]
    fn histograms_summarize_samples() {
        let (_, snap) = collect(|| {
            for v in [4, 2, 9] {
                record_value("queue.depth", "", v);
            }
        });
        let h = snap.histogram("queue.depth").expect("recorded");
        assert_eq!(
            *h,
            HistogramSummary {
                count: 3,
                sum: 15,
                min: 2,
                max: 9
            }
        );
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_and_feed_duration_histograms() {
        let (_, snap) = collect(|| {
            let _outer = span!("outer");
            {
                let _inner = span!("inner", "lbl");
            }
        });
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.label, "lbl");
        assert_eq!(inner.thread, outer.thread);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(snap.histogram("span/outer").is_some());
        assert!(snap.histogram("span/inner").is_some());
    }

    #[test]
    fn labelled_counters_flatten_with_slash() {
        let (_, snap) = collect(|| {
            counter_add("learner.predict_calls", "naive_bayes", 3);
            counter_add("learner.predict_calls", "whirl_name", 1);
        });
        assert_eq!(snap.counter("learner.predict_calls/naive_bayes"), 3);
        let mut labelled = snap.counters_labelled("learner.predict_calls");
        labelled.sort();
        assert_eq!(labelled, vec![("naive_bayes", 3), ("whirl_name", 1)]);
    }

    #[test]
    fn collect_restores_prior_enabled_state() {
        assert!(!enabled());
        let ((), _snap) = collect(|| assert!(enabled()));
        assert!(!enabled());
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let (_, snap) = collect(|| {
            counter_add("a", "", 1);
            record_value("h", "", 2);
            let _s = span!("root");
        });
        let json = serde_json::to_string(&snap).expect("serializable");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"spans\""));
    }
}
