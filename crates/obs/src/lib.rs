//! Zero-dependency observability for the LSD pipeline.
//!
//! Two instruments, one aggregation strategy:
//!
//! * **Spans** — [`span!`] opens a lightweight tracing span with monotonic
//!   timing, a thread ordinal, and parent nesting (tracked per thread via a
//!   span stack). Every closed span is also folded into a duration histogram
//!   keyed `span.<name>`, so coarse wall-time summaries survive even when
//!   callers only look at the metric tables.
//! * **Metrics** — [`counter_add`], [`gauge_max`] and [`record_value`] feed a
//!   registry of counters, high-watermark gauges and histogram summaries
//!   (`{count, sum, min, max}` plus log2-bucket p50/p95/p99 estimates) keyed
//!   by `(name, label)` pairs of `&'static str`.
//!
//! The [`export`] module turns a collected [`MetricsSnapshot`] into files
//! other tools can read: Chrome trace-event JSON for Perfetto /
//! `chrome://tracing`, and a JSONL event stream behind a bounded ring
//! buffer.
//!
//! Besides the pipeline's own probes (A\* search counters, per-learner
//! train/predict timings, CV fold counts, batch-queue occupancy), the
//! static-analysis gate in `lsd-core` records warning-severity diagnostics
//! here: `analysis.warnings` counts them in total, and
//! `analysis.diagnostics` is labelled per code (flattened to
//! `analysis.diagnostics/LSD003`-style keys in the snapshot).
//!
//! # Shard-and-merge aggregation
//!
//! Probes write to a **thread-local shard** — no locks, no shared cache lines
//! in the hot loop. Shards drain into a process-wide aggregate at two points:
//! when a thread exits (the shard's TLS destructor fires) and when the
//! owning thread calls [`flush`] explicitly. Worker threads must be joined
//! through their `JoinHandle`s (as `parallel_map` in `lsd-learn` does) or
//! call [`flush`] before returning: `std::thread::scope`'s *implicit* wait
//! unblocks before TLS destructors run, so data recorded by an unjoined
//! scope worker can miss the snapshot. [`collect`] wraps a closure with
//! the full lifecycle: bump the epoch (invalidating any stale shard contents
//! left over from a previous collection), enable recording, run the closure,
//! flush the calling thread, and return a [`MetricsSnapshot`] of everything
//! the closure's thread tree recorded.
//!
//! # Disabled-mode cost
//!
//! Every probe starts with one `Relaxed` load of a global `AtomicBool` and
//! returns immediately when observability is off — no TLS access, no
//! allocation, no time reads. [`span!`] yields a guard wrapping `None`, whose
//! drop is a single branch.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use serde::{Serialize, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod export;
pub mod recorder;
pub mod trace;
pub mod window;

pub use recorder::{flight_recorder, FlightRecorder, TraceSample};
pub use trace::{TraceContext, TraceId, TraceScope};
pub use window::{window_record, window_record_duration, window_snapshot, RollingWindow};

/// Global on/off switch. Off by default; [`collect`] turns it on for the
/// duration of the wrapped closure.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Collection epoch. Shards stamped with an older epoch are cleared on next
/// use instead of leaking data from a previous [`collect`] call.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Dense thread ordinals for span records (thread names are not guaranteed
/// and `ThreadId` has no stable integer form on older toolchains).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Globally unique span ids, so parent links survive the shard merge.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// The instant all span start offsets are measured from.
fn process_epoch() -> Instant {
    static T: OnceLock<Instant> = OnceLock::new();
    *T.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide timing epoch — the clock all
/// span `start_ns` offsets are measured on, exposed so callers can build
/// synthetic spans (see [`trace::synthetic_span`]) on the same timeline.
pub fn now_ns() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// Allocates a fresh globally unique span id (for synthetic spans).
pub(crate) fn alloc_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Whole seconds elapsed since the process timing epoch (the clock the
/// rolling windows stamp their one-second slots with).
pub(crate) fn process_epoch_secs() -> u64 {
    process_epoch().elapsed().as_secs()
}

/// This thread's dense ordinal (`u64::MAX` during TLS teardown).
pub(crate) fn current_thread_ordinal() -> u64 {
    with_shard(|s| s.thread).unwrap_or(u64::MAX)
}

type Key = (&'static str, &'static str);

/// A closed span: timing, thread ordinal and parent link.
///
/// `parent` is the [`SpanRecord::id`] of the span that was open on the same
/// thread when this one was entered, or `None` for a root span.
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    /// Static span name, e.g. `"train.cv_fold"`.
    pub name: &'static str,
    /// Optional static label, e.g. a learner name. Empty when unused.
    pub label: &'static str,
    /// Globally unique id (unique within one process run).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dense ordinal of the recording thread.
    pub thread: u64,
    /// Start offset in nanoseconds from the process-wide timing epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// The request trace this span belongs to, when it closed under an
    /// active [`TraceScope`] (or was attached explicitly).
    pub trace: Option<TraceId>,
}

/// Number of log2 magnitude buckets backing the quantile estimates: bucket 0
/// holds the value 0, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
const LOG2_BUCKETS: usize = 65;

/// `{count, sum, min, max}` summary of recorded `u64` samples, plus a log2
/// magnitude histogram for p50/p95/p99 estimates.
///
/// Quantiles are estimated by locating the target rank's bucket and
/// interpolating linearly inside it, then clamping to `[min, max]` — exact
/// for the extremes, within a factor of two elsewhere, which is plenty for
/// nanosecond span durations spread over many orders of magnitude.
///
/// Serializes as `{count, sum, min, max, mean, p50, p95, p99}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sample counts per log2 magnitude bucket.
    buckets: [u64; LOG2_BUCKETS],
}

fn log2_bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl HistogramSummary {
    /// A summary with no samples. `min` holds `u64::MAX` until the first
    /// [`observe`](HistogramSummary::observe); all accessors treat the
    /// empty summary as zeros.
    pub fn empty() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0u64; LOG2_BUCKETS],
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[log2_bucket(v)] += 1;
    }

    /// Folds another summary into this one. Merging is **exact** (not an
    /// approximation): log2 buckets, count, sum, min and max all combine
    /// losslessly, so merging per-shard summaries equals summarizing the
    /// concatenated stream.
    pub fn merge_from(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (slot, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += n;
        }
    }

    /// Summarizes a full sample stream.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut h = HistogramSummary::empty();
        for v in samples {
            h.observe(v);
        }
        h
    }

    /// Merges a set of per-shard summaries into one.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramSummary>) -> Self {
        let mut h = HistogramSummary::empty();
        for part in parts {
            h.merge_from(part);
        }
        h
    }

    /// Per-bucket sample counts. Bucket 0 holds the value 0; bucket
    /// `i >= 1` holds values in `[2^(i-1), 2^i)`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive upper bound of log2 bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    fn new(v: u64) -> Self {
        let mut h = HistogramSummary::empty();
        h.observe(v);
        h
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]` (0 when empty). `quantile(0.0)`
    /// is `min` and `quantile(1.0)` is `max`; in between the estimate
    /// interpolates within the target rank's log2 bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0u64
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                let within = if n <= 1 {
                    0.0
                } else {
                    (rank - seen) as f64 / (n - 1) as f64
                };
                let est = lo as f64 + within * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl Serialize for HistogramSummary {
    fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(v as i64);
        Value::Map(vec![
            ("count".to_string(), int(self.count)),
            ("sum".to_string(), int(self.sum)),
            (
                "min".to_string(),
                int(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max".to_string(), int(self.max)),
            ("mean".to_string(), Value::Float(self.mean())),
            ("p50".to_string(), int(self.p50())),
            ("p95".to_string(), int(self.p95())),
            ("p99".to_string(), int(self.p99())),
        ])
    }
}

#[derive(Default)]
struct Tables {
    counters: HashMap<Key, u64>,
    gauges: HashMap<Key, u64>,
    histograms: HashMap<Key, HistogramSummary>,
    spans: Vec<SpanRecord>,
}

impl Tables {
    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

struct Shard {
    epoch: u64,
    thread: u64,
    tables: Tables,
    /// Ids of spans currently open on this thread, innermost last.
    open_spans: Vec<u64>,
}

impl Shard {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.tables = Tables::default();
        self.open_spans.clear();
    }
}

/// Merges the shard into the global aggregate on thread exit.
struct ShardHolder(Shard);

impl Drop for ShardHolder {
    fn drop(&mut self) {
        merge_into_global(&mut self.0);
    }
}

thread_local! {
    static SHARD: RefCell<ShardHolder> = RefCell::new(ShardHolder(Shard {
        epoch: 0,
        thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        tables: Tables::default(),
        open_spans: Vec::new(),
    }));
}

fn global() -> &'static Mutex<Tables> {
    static GLOBAL: OnceLock<Mutex<Tables>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Tables::default()))
}

fn merge_into_global(shard: &mut Shard) {
    if shard.tables.is_empty() || shard.epoch != EPOCH.load(Ordering::Relaxed) {
        shard.tables = Tables::default();
        return;
    }
    let mut tables = Tables::default();
    std::mem::swap(&mut tables, &mut shard.tables);
    let mut agg = global().lock().unwrap_or_else(|e| e.into_inner());
    for (k, v) in tables.counters {
        *agg.counters.entry(k).or_insert(0) += v;
    }
    for (k, v) in tables.gauges {
        let slot = agg.gauges.entry(k).or_insert(0);
        *slot = (*slot).max(v);
    }
    for (k, v) in tables.histograms {
        agg.histograms
            .entry(k)
            .and_modify(|h| h.merge_from(&v))
            .or_insert(v);
    }
    agg.spans.extend(tables.spans);
}

/// Runs `f` on this thread's shard, resetting it first if it belongs to a
/// previous collection epoch. Returns `None` during TLS teardown.
fn with_shard<R>(f: impl FnOnce(&mut Shard) -> R) -> Option<R> {
    SHARD
        .try_with(|cell| {
            let mut holder = cell.borrow_mut();
            let epoch = EPOCH.load(Ordering::Relaxed);
            if holder.0.epoch != epoch {
                holder.0.reset(epoch);
            }
            f(&mut holder.0)
        })
        .ok()
}

/// True when probes are recording. One `Relaxed` atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off globally. Prefer [`collect`], which also
/// isolates the data of one run; this is the escape hatch for long-lived
/// recording (e.g. a server exporting metrics periodically).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Adds `n` to the counter `(name, label)`. No-op when disabled.
#[inline]
pub fn counter_add(name: &'static str, label: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| *s.tables.counters.entry((name, label)).or_insert(0) += n);
}

/// Raises the high-watermark gauge `(name, label)` to at least `v`.
/// Gauges merge by maximum so the snapshot reports the peak across all
/// threads. No-op when disabled.
#[inline]
pub fn gauge_max(name: &'static str, label: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        let slot = s.tables.gauges.entry((name, label)).or_insert(0);
        *slot = (*slot).max(v);
    });
}

/// Records one sample into the histogram `(name, label)`. No-op when
/// disabled.
#[inline]
pub fn record_value(name: &'static str, label: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        s.tables
            .histograms
            .entry((name, label))
            .and_modify(|h| h.observe(v))
            .or_insert_with(|| HistogramSummary::new(v));
    });
}

/// Records an elapsed duration (nanoseconds) into the histogram
/// `(name, label)`. No-op when disabled.
#[inline]
pub fn record_duration(name: &'static str, label: &'static str, elapsed: std::time::Duration) {
    record_value(name, label, elapsed.as_nanos() as u64);
}

/// Opens a tracing span; prefer the [`span!`] macro.
///
/// The guard records the span when dropped. When observability is disabled
/// the guard is inert and costs one branch on drop.
pub struct SpanGuard {
    data: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    label: &'static str,
    id: u64,
    parent: Option<u64>,
    epoch: u64,
    start: Instant,
    start_ns: u64,
    trace: Option<TraceId>,
}

impl SpanGuard {
    /// Enters a span named `name` with an optional static `label`.
    pub fn enter(name: &'static str, label: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { data: None };
        }
        let start = Instant::now();
        let start_ns = start.duration_since(process_epoch()).as_nanos() as u64;
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let info = with_shard(|s| {
            let parent = s.open_spans.last().copied();
            s.open_spans.push(id);
            (parent, s.epoch)
        });
        let Some((parent, epoch)) = info else {
            return SpanGuard { data: None };
        };
        SpanGuard {
            data: Some(OpenSpan {
                name,
                label,
                id,
                parent,
                epoch,
                start,
                start_ns,
                trace: trace::current().map(|ctx| ctx.trace_id),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.data.take() else {
            return;
        };
        let duration_ns = open.start.elapsed().as_nanos() as u64;
        with_shard(|s| {
            // If the epoch rolled over mid-span (a new `collect` started),
            // the shard was cleared; drop the record rather than emit a span
            // whose parent no longer exists.
            if s.epoch != open.epoch {
                return;
            }
            if let Some(pos) = s.open_spans.iter().rposition(|&id| id == open.id) {
                s.open_spans.truncate(pos);
            }
            let record = SpanRecord {
                name: open.name,
                label: open.label,
                id: open.id,
                parent: open.parent,
                thread: s.thread,
                start_ns: open.start_ns,
                duration_ns,
                trace: open.trace,
            };
            trace::note_closed_span(&record);
            s.tables.spans.push(record);
            s.tables
                .histograms
                .entry(("span", open.name))
                .and_modify(|h| h.observe(duration_ns))
                .or_insert_with(|| HistogramSummary::new(duration_ns));
        });
    }
}

/// Opens a tracing span for the enclosing scope.
///
/// ```
/// let _span = lsd_obs::span!("train.cv_fold");
/// let _labeled = lsd_obs::span!("learner.train", "naive_bayes");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, "")
    };
    ($name:expr, $label:expr) => {
        $crate::SpanGuard::enter($name, $label)
    };
}

/// Merges this thread's shard into the global aggregate immediately.
///
/// Worker threads merge automatically on exit; the thread driving a
/// collection calls this (via [`collect`]) before snapshotting.
pub fn flush() {
    with_shard(merge_into_global_entry);
}

fn merge_into_global_entry(shard: &mut Shard) {
    merge_into_global(shard);
}

/// Everything one [`collect`] run recorded, with keys flattened to
/// `name` / `name/label` strings (deterministically ordered).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges, max-merged across threads.
    pub gauges: BTreeMap<String, u64>,
    /// Sample summaries (durations in nanoseconds unless noted).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Rolling 60-second window summaries (see [`window`]) for the series
    /// fed through [`window_record`]. Only filled by [`snapshot`] — the
    /// windows are wall-clock-based and meaningless for a batch
    /// [`collect`] run.
    pub windows: BTreeMap<String, HistogramSummary>,
    /// Closed spans in merge order. Ids and timings vary run to run.
    pub spans: Vec<SpanRecord>,
}

pub(crate) fn flat_key(key: &Key) -> String {
    if key.1.is_empty() {
        key.0.to_string()
    } else {
        format!("{}/{}", key.0, key.1)
    }
}

impl MetricsSnapshot {
    /// Counter value for a flattened key (`"astar.nodes_expanded"` or
    /// `"learner.predict_calls/naive_bayes"`); 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value for a flattened key, if recorded.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Histogram summary for a flattened key, if recorded. Span durations
    /// appear under `"span/<name>"`.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms.get(key)
    }

    /// `(suffix, value)` pairs of all counters whose key starts with
    /// `prefix + "/"` — e.g. `counters_labelled("learner.predict_ns")`
    /// yields one entry per learner.
    pub fn counters_labelled(&self, prefix: &str) -> Vec<(&str, u64)> {
        let want = format!("{prefix}/");
        self.counters
            .iter()
            .filter_map(|(k, &v)| k.strip_prefix(&want).map(|s| (s, v)))
            .collect()
    }

    /// `(suffix, summary)` pairs of all histograms whose key starts with
    /// `prefix + "/"` — e.g. `histograms_labelled("learner.train_ns")`
    /// yields one summary per learner.
    pub fn histograms_labelled(&self, prefix: &str) -> Vec<(&str, &HistogramSummary)> {
        let want = format!("{prefix}/");
        self.histograms
            .iter()
            .filter_map(|(k, h)| k.strip_prefix(&want).map(|s| (s, h)))
            .collect()
    }

    /// The deterministic subset (counters and gauges only — histograms and
    /// spans carry wall-clock measurements that vary run to run). Two runs
    /// of the same deterministic pipeline must produce equal values here
    /// regardless of thread count.
    pub fn deterministic_view(&self) -> (&BTreeMap<String, u64>, &BTreeMap<String, u64>) {
        (&self.counters, &self.gauges)
    }

    fn from_tables(tables: &Tables) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: tables
                .counters
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            gauges: tables
                .gauges
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            histograms: tables
                .histograms
                .iter()
                .map(|(k, &v)| (flat_key(k), v))
                .collect(),
            windows: BTreeMap::new(),
            spans: tables.spans.clone(),
        }
    }
}

thread_local! {
    /// True while this thread is inside the closure of an active
    /// [`collect`] / [`try_collect`] call. Used to reject same-thread
    /// nesting before touching the collection lock (which is not
    /// reentrant — a nested lock attempt would deadlock).
    static IN_COLLECT: Cell<bool> = const { Cell::new(false) };
}

/// Error returned by [`try_collect`] when the caller is already inside an
/// active collection on the same thread. The nested closure is not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedCollectError;

impl std::fmt::Display for NestedCollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "lsd_obs::collect called inside an active collection on the same thread; \
             nested collections would reset the outer run's data (record into the \
             outer collection instead, or collect from a separate thread)",
        )
    }
}

impl std::error::Error for NestedCollectError {}

/// Restores the enabled flag and the in-collect marker even if the wrapped
/// closure panics, so a failed collection cannot poison later ones.
struct CollectRestore {
    was_enabled: bool,
}

impl Drop for CollectRestore {
    fn drop(&mut self) {
        ENABLED.store(self.was_enabled, Ordering::SeqCst);
        IN_COLLECT.with(|c| c.set(false));
    }
}

/// Records everything `f` (and the threads it spawns and joins) does, and
/// returns `f`'s result with the snapshot.
///
/// Collections are serialized process-wide: concurrent `collect` calls from
/// *different* threads run one after another so their data cannot
/// interleave. A nested call on the *same* thread (from inside `f`) is a
/// programming error — it would reset the outer run's tables mid-flight —
/// and panics; use [`try_collect`] to detect that case without panicking.
/// Worker threads created inside `f` with `std::thread::scope` merge their
/// shards when they exit, i.e. before `f` returns; threads that outlive `f`
/// contribute whatever they flushed in time.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    match try_collect(f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`collect`], except same-thread nesting returns
/// `Err(`[`NestedCollectError`]`)` (without running `f`) instead of
/// panicking.
pub fn try_collect<R>(f: impl FnOnce() -> R) -> Result<(R, MetricsSnapshot), NestedCollectError> {
    if IN_COLLECT.with(Cell::get) {
        return Err(NestedCollectError);
    }
    static COLLECT_LOCK: Mutex<()> = Mutex::new(());
    let _guard = COLLECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    EPOCH.fetch_add(1, Ordering::SeqCst);
    {
        let mut agg = global().lock().unwrap_or_else(|e| e.into_inner());
        *agg = Tables::default();
    }
    IN_COLLECT.with(|c| c.set(true));
    let restore = CollectRestore {
        was_enabled: ENABLED.swap(true, Ordering::SeqCst),
    };
    let result = f();
    flush();
    drop(restore);
    let snapshot = {
        let agg = global().lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot::from_tables(&agg)
    };
    Ok((result, snapshot))
}

/// Snapshots the global aggregate **without** resetting it — the companion
/// to [`set_enabled`] for long-lived recording (a server scraping its own
/// metrics periodically). The calling thread's shard is flushed first;
/// counters, gauges and histograms stay in place and keep accumulating
/// (cumulative, Prometheus-style), while spans are **drained** into the
/// returned snapshot so an always-on process does not grow its span log
/// without bound.
///
/// Inside a [`collect`] run prefer the snapshot `collect` returns; calling
/// this mid-collection observes the partial aggregate (merged shards only).
pub fn snapshot() -> MetricsSnapshot {
    flush();
    let mut snap = {
        let mut agg = global().lock().unwrap_or_else(|e| e.into_inner());
        let spans = std::mem::take(&mut agg.spans);
        let mut snap = MetricsSnapshot::from_tables(&agg);
        snap.spans = spans;
        snap
    };
    snap.windows = window::window_snapshot();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let (_, snap) = collect(|| ());
        assert!(snap.counters.is_empty());
        counter_add("ghost", "", 7);
        let (_, snap) = collect(|| ());
        assert_eq!(snap.counter("ghost"), 0, "pre-collect data must not leak");
    }

    /// Spawns workers in a scope and joins each handle explicitly —
    /// `JoinHandle::join` waits for the worker's TLS destructors (where the
    /// shard merge happens), while the scope's implicit wait does not.
    fn scoped_join(workers: impl IntoIterator<Item = Box<dyn Fn() + Send + Sync>>) {
        let workers: Vec<_> = workers.into_iter().collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers.iter().map(|w| scope.spawn(w)).collect();
            for h in handles {
                h.join().expect("worker");
            }
        });
    }

    #[test]
    fn counters_sum_across_scoped_threads() {
        let (_, snap) = collect(|| {
            scoped_join((0..4).map(|_| {
                Box::new(|| counter_add("work.items", "", 10)) as Box<dyn Fn() + Send + Sync>
            }));
            counter_add("work.items", "", 2);
        });
        assert_eq!(snap.counter("work.items"), 42);
    }

    #[test]
    fn gauges_take_the_maximum() {
        let (_, snap) = collect(|| {
            gauge_max("cache.size", "", 5);
            gauge_max("cache.size", "", 3);
            scoped_join([
                Box::new(|| gauge_max("cache.size", "", 9)) as Box<dyn Fn() + Send + Sync>
            ]);
        });
        assert_eq!(snap.gauge("cache.size"), Some(9));
    }

    #[test]
    fn histograms_summarize_samples() {
        let (_, snap) = collect(|| {
            for v in [4, 2, 9] {
                record_value("queue.depth", "", v);
            }
        });
        let h = snap.histogram("queue.depth").expect("recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 15, 2, 9));
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_exact_at_the_extremes_and_sane_in_between() {
        let (_, snap) = collect(|| {
            for v in 1..=100u64 {
                record_value("lat", "", v);
            }
        });
        let h = snap.histogram("lat").expect("recorded");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
        // Log2 buckets bound the estimate within a factor of two.
        let p50 = h.p50();
        assert!((25..=100).contains(&p50), "p50 estimate {p50}");
        let p99 = h.p99();
        assert!((64..=100).contains(&p99), "p99 estimate {p99}");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantiles_handle_zero_and_singleton_histograms() {
        let (_, snap) = collect(|| {
            record_value("zeros", "", 0);
            record_value("zeros", "", 0);
            record_value("one", "", 42);
        });
        let zeros = snap.histogram("zeros").expect("recorded");
        assert_eq!((zeros.p50(), zeros.p99()), (0, 0));
        let one = snap.histogram("one").expect("recorded");
        assert_eq!((one.p50(), one.p95(), one.p99()), (42, 42, 42));
    }

    #[test]
    fn unjoined_scope_workers_can_miss_the_snapshot() {
        // Documents the limitation the explicit-join pattern exists for:
        // the scope's implicit wait does not cover TLS destructors, so an
        // unjoined worker's shard may (not must) merge too late. All we can
        // assert deterministically is that the supported pattern below works.
        let (_, snap) = collect(|| {
            std::thread::scope(|scope| {
                let h = scope.spawn(|| counter_add("joined.items", "", 10));
                h.join().expect("worker");
            });
        });
        assert_eq!(snap.counter("joined.items"), 10);
    }

    #[test]
    fn quantile_buckets_survive_cross_thread_merges() {
        let (_, snap) = collect(|| {
            scoped_join([[1u64, 2, 3], [1000, 2000, 3000]].map(|chunk| {
                Box::new(move || {
                    for v in chunk {
                        record_value("mixed", "", v);
                    }
                }) as Box<dyn Fn() + Send + Sync>
            }));
        });
        let h = snap.histogram("mixed").expect("recorded");
        assert_eq!(h.count, 6, "histogram: {h:?}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 3000);
        assert!(
            h.p99() >= 1000,
            "p99 {} must land in the slow cluster",
            h.p99()
        );
    }

    #[test]
    fn histogram_serializes_with_quantile_fields() {
        let (_, snap) = collect(|| record_value("h", "", 7));
        let json = serde_json::to_string(snap.histogram("h").unwrap()).expect("serializable");
        for field in ["\"count\"", "\"p50\"", "\"p95\"", "\"p99\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn nested_try_collect_errors_without_running_the_closure() {
        let ((), _snap) = collect(|| {
            let mut ran = false;
            let nested = try_collect(|| ran = true);
            assert_eq!(nested.unwrap_err(), NestedCollectError);
            assert!(!ran, "nested closure must not run");
            assert!(enabled(), "outer collection must stay live");
        });
        // The outer collection finished normally; a fresh one still works.
        let (value, snap) = try_collect(|| {
            counter_add("after", "", 1);
            7
        })
        .expect("top-level collect works after a rejected nested call");
        assert_eq!(value, 7);
        assert_eq!(snap.counter("after"), 1);
    }

    #[test]
    fn nested_collect_panics_with_a_clear_message() {
        let ((), _snap) = collect(|| {
            let err = std::panic::catch_unwind(|| collect(|| ())).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("nested"), "panic message was: {msg}");
        });
    }

    #[test]
    fn collect_recovers_after_a_panicking_closure() {
        let caught = std::panic::catch_unwind(|| collect(|| panic!("boom")));
        assert!(caught.is_err());
        let (_, snap) = collect(|| counter_add("recovered", "", 3));
        assert_eq!(snap.counter("recovered"), 3);
    }

    #[test]
    fn spans_nest_and_feed_duration_histograms() {
        let (_, snap) = collect(|| {
            let _outer = span!("outer");
            {
                let _inner = span!("inner", "lbl");
            }
        });
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.label, "lbl");
        assert_eq!(inner.thread, outer.thread);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(snap.histogram("span/outer").is_some());
        assert!(snap.histogram("span/inner").is_some());
    }

    #[test]
    fn labelled_counters_flatten_with_slash() {
        let (_, snap) = collect(|| {
            counter_add("learner.predict_calls", "naive_bayes", 3);
            counter_add("learner.predict_calls", "whirl_name", 1);
        });
        assert_eq!(snap.counter("learner.predict_calls/naive_bayes"), 3);
        let mut labelled = snap.counters_labelled("learner.predict_calls");
        labelled.sort();
        assert_eq!(labelled, vec![("naive_bayes", 3), ("whirl_name", 1)]);
    }

    #[test]
    fn collect_restores_prior_enabled_state() {
        assert!(!enabled());
        let ((), _snap) = collect(|| assert!(enabled()));
        assert!(!enabled());
    }

    #[test]
    fn snapshot_accumulates_counters_and_drains_spans() {
        // Run inside `collect` so the global tables are owned by this test
        // (collections are serialized process-wide); `snapshot` observes the
        // partial aggregate without resetting it.
        let ((), _outer) = collect(|| {
            counter_add("live.requests", "", 2);
            {
                let _s = span!("live.span");
            }
            let first = snapshot();
            assert_eq!(first.counter("live.requests"), 2);
            assert_eq!(first.spans.len(), 1, "span drained into the snapshot");
            assert!(first.histogram("span/live.span").is_some());

            counter_add("live.requests", "", 3);
            let second = snapshot();
            assert_eq!(second.counter("live.requests"), 5, "counters accumulate");
            assert!(second.spans.is_empty(), "first snapshot drained the spans");
            assert!(
                second.histogram("span/live.span").is_some(),
                "duration histograms persist across snapshots"
            );
        });
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let (_, snap) = collect(|| {
            counter_add("a", "", 1);
            record_value("h", "", 2);
            let _s = span!("root");
        });
        let json = serde_json::to_string(&snap).expect("serializable");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"spans\""));
    }
}
