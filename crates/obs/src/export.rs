//! Exporters that turn a collected [`MetricsSnapshot`] into files other
//! tools can read.
//!
//! Two formats:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (the `traceEvents` array
//!   form) with one complete `"X"` event per closed span and one
//!   `thread_name` metadata event per thread ordinal, so Perfetto and
//!   `chrome://tracing` render each worker thread as its own track.
//! * [`EventSink`] — a bounded ring buffer of flat [`ExportEvent`]s
//!   (counters, gauges and spans) that serializes to JSON Lines, one event
//!   per line, and parses back with [`parse_jsonl`]. When full, the sink
//!   drops the *oldest* events and counts them in [`EventSink::dropped`],
//!   so long runs keep the tail of the story at a fixed memory cost.

use crate::{MetricsSnapshot, SpanRecord};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Microseconds (fractional) from a nanosecond count, the unit Chrome trace
/// events use for `ts`/`dur`.
fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders the snapshot's spans as Chrome trace-event JSON.
///
/// The output is the object form `{"traceEvents": [...]}`: first one
/// `"M"` (metadata) `thread_name` event per thread ordinal seen, then one
/// `"X"` (complete) event per span, sorted by `(thread, start_ns, id)` so
/// the output is stable for a given set of spans. Spans' `label`, `id` and
/// `parent` ride along in `args`. All events use `pid` 1; `tid` is the
/// span's dense thread ordinal.
pub fn chrome_trace(snapshot: &MetricsSnapshot) -> String {
    let mut threads: Vec<u64> = snapshot.spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut events: Vec<Value> = Vec::with_capacity(threads.len() + snapshot.spans.len());
    for &t in &threads {
        events.push(obj(vec![
            ("ph", Value::Str("M".to_string())),
            ("name", Value::Str("thread_name".to_string())),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(t as i64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("lsd-thread-{t}")))]),
            ),
        ]));
    }

    let mut spans: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.thread, s.start_ns, s.id));
    for s in spans {
        let parent = match s.parent {
            Some(p) => Value::Int(p as i64),
            None => Value::Null,
        };
        events.push(obj(vec![
            ("ph", Value::Str("X".to_string())),
            ("name", Value::Str(s.name.to_string())),
            ("cat", Value::Str("lsd".to_string())),
            ("ts", Value::Float(micros(s.start_ns))),
            ("dur", Value::Float(micros(s.duration_ns))),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(s.thread as i64)),
            (
                "args",
                obj(vec![
                    ("label", Value::Str(s.label.to_string())),
                    ("id", Value::Int(s.id as i64)),
                    ("parent", parent),
                ]),
            ),
        ]));
    }

    let root = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

/// One flat telemetry event in the JSONL stream. Counters and gauges carry
/// their flattened `name` / `name/label` key in `name` with `label`,
/// `thread` and `start_ns` zeroed; spans carry their duration in `value`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportEvent {
    /// `"counter"`, `"gauge"` or `"span"`.
    pub kind: String,
    /// Metric key (flattened) or span name.
    pub name: String,
    /// Span label; empty for counters/gauges and unlabelled spans.
    pub label: String,
    /// Counter/gauge value, or span duration in nanoseconds.
    pub value: u64,
    /// Recording thread ordinal (spans only).
    pub thread: u64,
    /// Span start offset in nanoseconds from the process epoch (spans only).
    pub start_ns: u64,
}

/// Bounded ring buffer of [`ExportEvent`]s. See the module docs.
#[derive(Debug, Clone)]
pub struct EventSink {
    capacity: usize,
    events: VecDeque<ExportEvent>,
    dropped: u64,
}

impl EventSink {
    /// A sink holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> EventSink {
        EventSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if the sink is full.
    pub fn push(&mut self, event: ExportEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Feeds every counter, gauge and span of a snapshot into the sink:
    /// counters first, then gauges (both in their deterministic key order),
    /// then spans in merge order.
    pub fn record_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        for (kind, table) in [("counter", &snapshot.counters), ("gauge", &snapshot.gauges)] {
            for (key, &value) in table {
                self.push(ExportEvent {
                    kind: kind.to_string(),
                    name: key.clone(),
                    label: String::new(),
                    value,
                    thread: 0,
                    start_ns: 0,
                });
            }
        }
        for s in &snapshot.spans {
            self.push(ExportEvent {
                kind: "span".to_string(),
                name: s.name.to_string(),
                label: s.label.to_string(),
                value: s.duration_ns,
                thread: s.thread,
                start_ns: s.start_ns,
            });
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ExportEvent> {
        self.events.iter()
    }

    /// Serializes the buffered events as JSON Lines (one compact JSON
    /// object per line, trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Mangles a metric key into a Prometheus-legal metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_` (so `serve.request_ns`
/// exports as `serve_request_ns`).
fn prometheus_name(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Splits a flattened snapshot key into `(metric name, optional label)` —
/// `"learner.predict_ns/naive_bayes"` becomes
/// `("learner_predict_ns", Some("naive_bayes"))`.
fn split_key(key: &str) -> (String, Option<&str>) {
    match key.split_once('/') {
        Some((name, label)) => (prometheus_name(name), Some(label)),
        None => (prometheus_name(key), None),
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline must be backslash-escaped inside `label="..."`.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_pair(label: Option<&str>, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some(l) = label {
        pairs.push(format!("label=\"{}\"", escape_label(l)));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the snapshot's counters, gauges, histograms and rolling windows
/// in the Prometheus text exposition format (version 0.0.4), the payload
/// `lsd-serve` returns from `GET /metrics`.
///
/// * Every family is announced once with `# HELP` and `# TYPE` metadata.
/// * Counters and gauges become single samples; the `label` half of a
///   `name/label` key is exported as an escaped `label="..."` pair.
/// * Histograms export as real `histogram` families: cumulative
///   `_bucket{le="..."}` samples taken from the log2 buckets (one per
///   non-empty bucket, with the exposition-mandated `le="+Inf"` terminal
///   equal to `_count`), plus `_sum` and `_count`.
/// * Rolling windows ([`MetricsSnapshot::windows`]) export as gauge
///   families `<name>_window_p50|p95|p99` next to the cumulative series,
///   so "p99 right now" and "p99 since boot" sit side by side.
/// * Spans are skipped — each span family is already aggregated into the
///   `span/<name>` duration histograms.
///
/// Keys are mangled to legal metric names (`.`, `-`, `/` → `_`). Output
/// order follows the snapshot's deterministic key order, so series of one
/// family stay contiguous after their metadata lines.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut announced: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut header = |out: &mut String, name: &str, kind: &str, help: &str| {
        if announced.insert(name.to_string()) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        }
    };

    for (key, &v) in &snapshot.counters {
        let (name, label) = split_key(key);
        header(&mut out, &name, "counter", "Monotonic event count.");
        out.push_str(&format!("{name}{} {v}\n", label_pair(label, None)));
    }
    for (key, &v) in &snapshot.gauges {
        let (name, label) = split_key(key);
        header(
            &mut out,
            &name,
            "gauge",
            "High-watermark gauge (max across threads).",
        );
        out.push_str(&format!("{name}{} {v}\n", label_pair(label, None)));
    }
    for (key, h) in &snapshot.histograms {
        let (name, label) = split_key(key);
        header(
            &mut out,
            &name,
            "histogram",
            "Log2-bucket sample histogram (nanoseconds for durations).",
        );
        let mut cumulative = 0u64;
        let mut saw_inf = false;
        for (i, &n) in h.bucket_counts().iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            let bound = crate::HistogramSummary::bucket_bound(i);
            let le = if bound == u64::MAX {
                saw_inf = true;
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                label_pair(label, Some(("le", &le)))
            ));
        }
        if !saw_inf {
            out.push_str(&format!(
                "{name}_bucket{} {}\n",
                label_pair(label, Some(("le", "+Inf"))),
                h.count
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            label_pair(label, None),
            h.sum
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            label_pair(label, None),
            h.count
        ));
    }
    // One pass per quantile so each `<name>_window_pXX` family stays one
    // contiguous group even when several labels share the family.
    for (suffix, q) in [
        ("window_p50", 0.50),
        ("window_p95", 0.95),
        ("window_p99", 0.99),
    ] {
        for (key, h) in &snapshot.windows {
            let (name, label) = split_key(key);
            let family = format!("{name}_{suffix}");
            header(
                &mut out,
                &family,
                "gauge",
                "Rolling 60s-window quantile (nanoseconds for durations).",
            );
            out.push_str(&format!(
                "{family}{} {}\n",
                label_pair(label, None),
                h.quantile(q)
            ));
        }
    }
    out
}

/// Parses a JSONL stream produced by [`EventSink::to_jsonl`] (blank lines
/// are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<ExportEvent>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, counter_add, span};

    fn sample_snapshot() -> MetricsSnapshot {
        let (_, snap) = collect(|| {
            counter_add("work.items", "", 3);
            let _outer = span!("outer");
            let _inner = span!("inner", "lbl");
        });
        snap
    }

    #[test]
    fn chrome_trace_is_well_formed_and_complete() {
        let snap = sample_snapshot();
        let trace = chrome_trace(&snap);
        let root: Value = serde_json::from_str(&trace).expect("valid JSON");
        let Value::Map(entries) = &root else {
            panic!("trace root must be an object");
        };
        let events = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array");
        };
        let phase = |e: &Value| match e {
            Value::Map(fields) => {
                fields
                    .iter()
                    .find(|(k, _)| k == "ph")
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
            }
            _ => None,
        };
        let xs = events.iter().filter(|e| phase(e).as_deref() == Some("X"));
        assert_eq!(xs.count(), snap.spans.len(), "one X event per span");
        assert!(
            events.iter().any(|e| phase(e).as_deref() == Some("M")),
            "thread_name metadata present"
        );
    }

    #[test]
    fn sink_round_trips_through_jsonl() {
        let snap = sample_snapshot();
        let mut sink = EventSink::with_capacity(128);
        sink.record_snapshot(&snap);
        assert!(!sink.is_empty());
        let parsed = parse_jsonl(&sink.to_jsonl()).expect("round trip");
        let original: Vec<ExportEvent> = sink.events().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn prometheus_text_renders_all_families() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap);
        assert!(
            text.contains("# TYPE work_items counter"),
            "counter family typed in:\n{text}"
        );
        assert!(
            text.contains("# HELP work_items "),
            "counter family has HELP metadata in:\n{text}"
        );
        assert!(text.contains("work_items 3"), "counter sample in:\n{text}");
        assert!(
            text.contains("# TYPE span histogram"),
            "span histograms exported as histograms in:\n{text}"
        );
        assert!(
            text.contains("span_bucket{label=\"outer\",le=\"+Inf\"} 1"),
            "terminal +Inf bucket in:\n{text}"
        );
        assert!(
            text.contains("span_count{label=\"outer\"} 1"),
            "histogram count in:\n{text}"
        );
        // Exactly one HELP/TYPE pair per family even with several labels.
        assert_eq!(
            text.matches("# TYPE span histogram").count(),
            1,
            "in:\n{text}"
        );
        assert_eq!(text.matches("# HELP span ").count(), 1, "in:\n{text}");
        // No raw span events: every line is a comment or a sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_count() {
        let (_, snap) = collect(|| {
            // Buckets: 3 → le 3; 300 → le 511; 300_000 → le 524287.
            for v in [3u64, 3, 300, 300_000] {
                crate::record_value("lat.ns", "", v);
            }
        });
        let text = prometheus_text(&snap);
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 2"), "in:\n{text}");
        assert!(text.contains("lat_ns_bucket{le=\"511\"} 3"), "in:\n{text}");
        assert!(
            text.contains("lat_ns_bucket{le=\"524287\"} 4"),
            "in:\n{text}"
        );
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"), "in:\n{text}");
        assert!(text.contains("lat_ns_sum 300306"), "in:\n{text}");
        assert!(text.contains("lat_ns_count 4"), "in:\n{text}");
        // Cumulative bucket values never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let v: u64 = line
                .split_whitespace()
                .nth(1)
                .and_then(|v| v.parse().ok())
                .expect("sample value");
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn prometheus_escapes_label_values() {
        assert_eq!(
            label_pair(Some("a\"b\\c\nd"), None),
            "{label=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn prometheus_exports_window_quantiles_as_gauges() {
        let mut snap = sample_snapshot();
        snap.windows.insert(
            "serve.request_ns/match".to_string(),
            crate::HistogramSummary::from_samples([100u64, 200, 400]),
        );
        let text = prometheus_text(&snap);
        for family in [
            "serve_request_ns_window_p50",
            "serve_request_ns_window_p95",
            "serve_request_ns_window_p99",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} gauge")),
                "{family} typed in:\n{text}"
            );
            assert!(
                text.contains(&format!("{family}{{label=\"match\"}}")),
                "{family} sample in:\n{text}"
            );
        }
    }

    #[test]
    fn sink_drops_oldest_when_full() {
        let mut sink = EventSink::with_capacity(2);
        for i in 0..5u64 {
            sink.push(ExportEvent {
                kind: "counter".to_string(),
                name: format!("c{i}"),
                label: String::new(),
                value: i,
                thread: 0,
                start_ns: 0,
            });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let names: Vec<&str> = sink.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["c3", "c4"], "oldest events evicted first");
    }
}
