//! Exporters that turn a collected [`MetricsSnapshot`] into files other
//! tools can read.
//!
//! Two formats:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (the `traceEvents` array
//!   form) with one complete `"X"` event per closed span and one
//!   `thread_name` metadata event per thread ordinal, so Perfetto and
//!   `chrome://tracing` render each worker thread as its own track.
//! * [`EventSink`] — a bounded ring buffer of flat [`ExportEvent`]s
//!   (counters, gauges and spans) that serializes to JSON Lines, one event
//!   per line, and parses back with [`parse_jsonl`]. When full, the sink
//!   drops the *oldest* events and counts them in [`EventSink::dropped`],
//!   so long runs keep the tail of the story at a fixed memory cost.

use crate::{MetricsSnapshot, SpanRecord};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Microseconds (fractional) from a nanosecond count, the unit Chrome trace
/// events use for `ts`/`dur`.
fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders the snapshot's spans as Chrome trace-event JSON.
///
/// The output is the object form `{"traceEvents": [...]}`: first one
/// `"M"` (metadata) `thread_name` event per thread ordinal seen, then one
/// `"X"` (complete) event per span, sorted by `(thread, start_ns, id)` so
/// the output is stable for a given set of spans. Spans' `label`, `id` and
/// `parent` ride along in `args`. All events use `pid` 1; `tid` is the
/// span's dense thread ordinal.
pub fn chrome_trace(snapshot: &MetricsSnapshot) -> String {
    let mut threads: Vec<u64> = snapshot.spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut events: Vec<Value> = Vec::with_capacity(threads.len() + snapshot.spans.len());
    for &t in &threads {
        events.push(obj(vec![
            ("ph", Value::Str("M".to_string())),
            ("name", Value::Str("thread_name".to_string())),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(t as i64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("lsd-thread-{t}")))]),
            ),
        ]));
    }

    let mut spans: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.thread, s.start_ns, s.id));
    for s in spans {
        let parent = match s.parent {
            Some(p) => Value::Int(p as i64),
            None => Value::Null,
        };
        events.push(obj(vec![
            ("ph", Value::Str("X".to_string())),
            ("name", Value::Str(s.name.to_string())),
            ("cat", Value::Str("lsd".to_string())),
            ("ts", Value::Float(micros(s.start_ns))),
            ("dur", Value::Float(micros(s.duration_ns))),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(s.thread as i64)),
            (
                "args",
                obj(vec![
                    ("label", Value::Str(s.label.to_string())),
                    ("id", Value::Int(s.id as i64)),
                    ("parent", parent),
                ]),
            ),
        ]));
    }

    let root = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

/// One flat telemetry event in the JSONL stream. Counters and gauges carry
/// their flattened `name` / `name/label` key in `name` with `label`,
/// `thread` and `start_ns` zeroed; spans carry their duration in `value`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportEvent {
    /// `"counter"`, `"gauge"` or `"span"`.
    pub kind: String,
    /// Metric key (flattened) or span name.
    pub name: String,
    /// Span label; empty for counters/gauges and unlabelled spans.
    pub label: String,
    /// Counter/gauge value, or span duration in nanoseconds.
    pub value: u64,
    /// Recording thread ordinal (spans only).
    pub thread: u64,
    /// Span start offset in nanoseconds from the process epoch (spans only).
    pub start_ns: u64,
}

/// Bounded ring buffer of [`ExportEvent`]s. See the module docs.
#[derive(Debug, Clone)]
pub struct EventSink {
    capacity: usize,
    events: VecDeque<ExportEvent>,
    dropped: u64,
}

impl EventSink {
    /// A sink holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> EventSink {
        EventSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if the sink is full.
    pub fn push(&mut self, event: ExportEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Feeds every counter, gauge and span of a snapshot into the sink:
    /// counters first, then gauges (both in their deterministic key order),
    /// then spans in merge order.
    pub fn record_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        for (kind, table) in [("counter", &snapshot.counters), ("gauge", &snapshot.gauges)] {
            for (key, &value) in table {
                self.push(ExportEvent {
                    kind: kind.to_string(),
                    name: key.clone(),
                    label: String::new(),
                    value,
                    thread: 0,
                    start_ns: 0,
                });
            }
        }
        for s in &snapshot.spans {
            self.push(ExportEvent {
                kind: "span".to_string(),
                name: s.name.to_string(),
                label: s.label.to_string(),
                value: s.duration_ns,
                thread: s.thread,
                start_ns: s.start_ns,
            });
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ExportEvent> {
        self.events.iter()
    }

    /// Serializes the buffered events as JSON Lines (one compact JSON
    /// object per line, trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Parses a JSONL stream produced by [`EventSink::to_jsonl`] (blank lines
/// are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<ExportEvent>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, counter_add, span};

    fn sample_snapshot() -> MetricsSnapshot {
        let (_, snap) = collect(|| {
            counter_add("work.items", "", 3);
            let _outer = span!("outer");
            let _inner = span!("inner", "lbl");
        });
        snap
    }

    #[test]
    fn chrome_trace_is_well_formed_and_complete() {
        let snap = sample_snapshot();
        let trace = chrome_trace(&snap);
        let root: Value = serde_json::from_str(&trace).expect("valid JSON");
        let Value::Map(entries) = &root else {
            panic!("trace root must be an object");
        };
        let events = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array");
        };
        let phase = |e: &Value| match e {
            Value::Map(fields) => {
                fields
                    .iter()
                    .find(|(k, _)| k == "ph")
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
            }
            _ => None,
        };
        let xs = events.iter().filter(|e| phase(e).as_deref() == Some("X"));
        assert_eq!(xs.count(), snap.spans.len(), "one X event per span");
        assert!(
            events.iter().any(|e| phase(e).as_deref() == Some("M")),
            "thread_name metadata present"
        );
    }

    #[test]
    fn sink_round_trips_through_jsonl() {
        let snap = sample_snapshot();
        let mut sink = EventSink::with_capacity(128);
        sink.record_snapshot(&snap);
        assert!(!sink.is_empty());
        let parsed = parse_jsonl(&sink.to_jsonl()).expect("round trip");
        let original: Vec<ExportEvent> = sink.events().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn sink_drops_oldest_when_full() {
        let mut sink = EventSink::with_capacity(2);
        for i in 0..5u64 {
            sink.push(ExportEvent {
                kind: "counter".to_string(),
                name: format!("c{i}"),
                label: String::new(),
                value: i,
                thread: 0,
                start_ns: 0,
            });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let names: Vec<&str> = sink.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["c3", "c4"], "oldest events evicted first");
    }
}
