//! The `BENCH_match.json` perf-trajectory record (schema version 1).
//!
//! Every bench/smoke run exports one JSON document summarizing where the
//! match pipeline spent its time — per-stage span statistics (count, total,
//! mean, p50/p95/p99), the A\* search counters, throughput, and per-learner
//! predict costs — under a *stable schema*, so successive runs can be
//! diffed mechanically and CI can chart the performance trajectory over
//! commits. [`validate_bench_match`] is the schema check CI runs against
//! the artifact it just produced.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "params":     { "listings", "seed", "threads" },
//!   "stages":     { "<span name>": { "count", "total_ns", "mean_ns",
//!                                    "p50_ns", "p95_ns", "p99_ns" }, ... },
//!   "search":     { "runs", "nodes_expanded", "nodes_generated",
//!                   "nodes_pruned", "evaluations" },
//!   "throughput": { "sources", "tags", "instances", "wall_ns",
//!                   "sources_per_sec" },
//!   "learners":   { "<learner>": { "predict_calls", "predict_total_ns",
//!                                  "predict_p95_ns" }, ... }
//! }
//! ```

use crate::runner::ExperimentParams;
use lsd_core::MatchReport;
use serde::Value;

/// Version stamp written into (and demanded from) `BENCH_match.json`.
pub const BENCH_MATCH_SCHEMA_VERSION: i64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Renders one match run as the `BENCH_match.json` document. `wall_ns` is
/// the caller-measured wall-clock time of the whole batch match.
pub fn bench_match_json(report: &MatchReport, params: &ExperimentParams, wall_ns: u64) -> String {
    let m = &report.metrics;

    let stages = Value::Map(
        m.histograms_labelled("span")
            .into_iter()
            .map(|(name, h)| {
                (
                    name.to_string(),
                    obj(vec![
                        ("count", int(h.count)),
                        ("total_ns", int(h.sum)),
                        ("mean_ns", Value::Float(h.mean())),
                        ("p50_ns", int(h.p50())),
                        ("p95_ns", int(h.p95())),
                        ("p99_ns", int(h.p99())),
                    ]),
                )
            })
            .collect(),
    );

    let learners = Value::Map(
        m.counters_labelled("learner.predict_calls")
            .into_iter()
            .map(|(name, calls)| {
                let h = m.histogram(&format!("learner.predict_ns/{name}"));
                (
                    name.to_string(),
                    obj(vec![
                        ("predict_calls", int(calls)),
                        ("predict_total_ns", int(h.map_or(0, |h| h.sum))),
                        ("predict_p95_ns", int(h.map_or(0, |h| h.p95()))),
                    ]),
                )
            })
            .collect(),
    );

    let sources = m.counter("match.sources");
    let root = obj(vec![
        ("schema_version", Value::Int(BENCH_MATCH_SCHEMA_VERSION)),
        (
            "params",
            obj(vec![
                ("listings", int(params.listings as u64)),
                ("seed", int(params.seed)),
                ("threads", int(params.exec.threads as u64)),
            ]),
        ),
        ("stages", stages),
        (
            "search",
            obj(vec![
                ("runs", int(m.counter("search.runs"))),
                ("nodes_expanded", int(m.counter("search.nodes_expanded"))),
                ("nodes_generated", int(m.counter("search.nodes_generated"))),
                ("nodes_pruned", int(m.counter("search.nodes_pruned"))),
                ("evaluations", int(m.counter("search.evaluations"))),
            ]),
        ),
        (
            "throughput",
            obj(vec![
                ("sources", int(sources)),
                ("tags", int(m.counter("match.tags"))),
                ("instances", int(m.counter("match.instances"))),
                ("wall_ns", int(wall_ns)),
                (
                    "sources_per_sec",
                    Value::Float(if wall_ns == 0 {
                        0.0
                    } else {
                        sources as f64 * 1e9 / wall_ns as f64
                    }),
                ),
            ]),
        ),
        ("learners", learners),
    ]);
    serde_json::to_string_pretty(&root).expect("Value serialization cannot fail")
}

fn require<'v>(v: &'v Value, key: &str, path: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{path}: missing `{key}`"))
}

fn require_number(v: &Value, key: &str, path: &str) -> Result<(), String> {
    match require(v, key, path)? {
        Value::Int(_) | Value::Float(_) => Ok(()),
        other => Err(format!(
            "{path}.{key}: expected number, found {}",
            other.kind()
        )),
    }
}

/// Checks a `BENCH_match.json` document against schema version 1. Returns
/// the first problem found, phrased with its JSON path.
pub fn validate_bench_match(text: &str) -> Result<(), String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match require(&root, "schema_version", "$")? {
        Value::Int(v) if *v == BENCH_MATCH_SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "$.schema_version: expected {BENCH_MATCH_SCHEMA_VERSION}, found {other:?}"
            ))
        }
    }

    let params = require(&root, "params", "$")?;
    for key in ["listings", "seed", "threads"] {
        require_number(params, key, "$.params")?;
    }

    let stages = require(&root, "stages", "$")?;
    let Value::Map(stage_entries) = stages else {
        return Err(format!(
            "$.stages: expected object, found {}",
            stages.kind()
        ));
    };
    for (name, stage) in stage_entries {
        for key in ["count", "total_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns"] {
            require_number(stage, key, &format!("$.stages.{name}"))?;
        }
    }

    let search = require(&root, "search", "$")?;
    for key in [
        "runs",
        "nodes_expanded",
        "nodes_generated",
        "nodes_pruned",
        "evaluations",
    ] {
        require_number(search, key, "$.search")?;
    }

    let throughput = require(&root, "throughput", "$")?;
    for key in ["sources", "tags", "instances", "wall_ns", "sources_per_sec"] {
        require_number(throughput, key, "$.throughput")?;
    }

    let learners = require(&root, "learners", "$")?;
    let Value::Map(learner_entries) = learners else {
        return Err(format!(
            "$.learners: expected object, found {}",
            learners.kind()
        ));
    };
    for (name, learner) in learner_entries {
        for key in ["predict_calls", "predict_total_ns", "predict_p95_ns"] {
            require_number(learner, key, &format!("$.learners.{name}"))?;
        }
    }
    Ok(())
}

/// Version stamp written into (and demanded from) `BENCH_serve.json`.
/// Version 2 added the `tracing` section: traceparent-echo checks, the
/// flight-recorder retrieval check, and the rolling-window quantiles
/// scraped from `/metrics`.
pub const BENCH_SERVE_SCHEMA_VERSION: i64 = 2;

/// Everything the serve load driver measured, ready to render as
/// `BENCH_serve.json`.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchRun {
    /// Domain slug the served model was trained on.
    pub domain: String,
    /// Listings per generated source.
    pub listings: usize,
    /// RNG seed for the generated data.
    pub seed: u64,
    /// Concurrent load-driver clients.
    pub clients: usize,
    /// Requests each client issued in the load phase.
    pub requests_per_client: usize,
    /// Per-request wall latencies in nanoseconds (load phase, any status).
    pub latencies_ns: Vec<u64>,
    /// Wall-clock time of the whole load phase.
    pub wall_ns: u64,
    /// `(status, count)` across all load-phase responses.
    pub statuses: Vec<(u16, u64)>,
    /// Batches the server processed (from `/healthz`).
    pub batches: u64,
    /// Jobs the server processed (sum of batch sizes).
    pub batched_requests: u64,
    /// Largest batch the server coalesced.
    pub max_batch: u64,
    /// Every 200 body was byte-identical to a direct `match_source` call.
    pub byte_identical: bool,
    /// Connections that failed at the transport level (must be 0).
    pub dropped_connections: u64,
    /// `503 queue_full` responses observed in the backpressure phase.
    pub backpressure_503: u64,
    /// Every load-phase response carried a well-formed `traceparent` echo.
    pub traceparent_echoed: bool,
    /// A client-supplied trace id was continued verbatim (same trace id,
    /// fresh server span id).
    pub trace_continuity: bool,
    /// The forced-slow request was retrievable from
    /// `GET /debug/traces?trace_id=...` with a non-empty span tree.
    pub sampled_trace_found: bool,
    /// Rolling-window `serve_request_ns_window_p50{label="match"}` scraped
    /// from `/metrics` after the load phase (ns; 0 when absent).
    pub window_p50_ns: f64,
    /// Rolling-window p95 for the same series.
    pub window_p95_ns: f64,
    /// Rolling-window p99 for the same series.
    pub window_p99_ns: f64,
}

/// Exact quantile of a **sorted** latency slice (nearest-rank).
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Renders a load-driver run as the `BENCH_serve.json` document (schema
/// version 2): request latency quantiles (exact, from the full sample set,
/// unlike the log2-bucket estimates inside the server), throughput, status
/// counts, the server's batching counters, the pass/fail checks the
/// acceptance criteria gate on, and the tracing checks plus rolling-window
/// quantiles scraped from the live server.
pub fn bench_serve_json(run: &ServeBenchRun) -> String {
    let mut sorted = run.latencies_ns.clone();
    sorted.sort_unstable();
    let count = sorted.len() as u64;
    let sum: u64 = sorted.iter().sum();
    let mean = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };

    let statuses = Value::Map(
        run.statuses
            .iter()
            .map(|(status, n)| (status.to_string(), int(*n)))
            .collect(),
    );

    let root = obj(vec![
        ("schema_version", Value::Int(BENCH_SERVE_SCHEMA_VERSION)),
        (
            "params",
            obj(vec![
                ("domain", Value::Str(run.domain.clone())),
                ("listings", int(run.listings as u64)),
                ("seed", int(run.seed)),
                ("clients", int(run.clients as u64)),
                ("requests_per_client", int(run.requests_per_client as u64)),
            ]),
        ),
        (
            "latency",
            obj(vec![
                ("count", int(count)),
                ("mean_ns", Value::Float(mean)),
                ("p50_ns", int(sorted_quantile(&sorted, 0.50))),
                ("p95_ns", int(sorted_quantile(&sorted, 0.95))),
                ("p99_ns", int(sorted_quantile(&sorted, 0.99))),
                ("max_ns", int(sorted.last().copied().unwrap_or(0))),
            ]),
        ),
        (
            "throughput",
            obj(vec![
                ("requests", int(count)),
                ("wall_ns", int(run.wall_ns)),
                (
                    "requests_per_sec",
                    Value::Float(if run.wall_ns == 0 {
                        0.0
                    } else {
                        count as f64 * 1e9 / run.wall_ns as f64
                    }),
                ),
            ]),
        ),
        ("statuses", statuses),
        (
            "batching",
            obj(vec![
                ("batches", int(run.batches)),
                ("requests", int(run.batched_requests)),
                ("max_batch", int(run.max_batch)),
                (
                    "mean_batch",
                    Value::Float(if run.batches == 0 {
                        0.0
                    } else {
                        run.batched_requests as f64 / run.batches as f64
                    }),
                ),
            ]),
        ),
        (
            "checks",
            obj(vec![
                ("byte_identical", Value::Bool(run.byte_identical)),
                ("dropped_connections", int(run.dropped_connections)),
                ("backpressure_503", int(run.backpressure_503)),
            ]),
        ),
        (
            "tracing",
            obj(vec![
                ("traceparent_echoed", Value::Bool(run.traceparent_echoed)),
                ("trace_continuity", Value::Bool(run.trace_continuity)),
                ("sampled_trace_found", Value::Bool(run.sampled_trace_found)),
                ("window_p50_ns", Value::Float(run.window_p50_ns)),
                ("window_p95_ns", Value::Float(run.window_p95_ns)),
                ("window_p99_ns", Value::Float(run.window_p99_ns)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&root).expect("Value serialization cannot fail")
}

/// Checks a `BENCH_serve.json` document against schema version 2. Returns
/// the first problem found, phrased with its JSON path.
pub fn validate_bench_serve(text: &str) -> Result<(), String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match require(&root, "schema_version", "$")? {
        Value::Int(v) if *v == BENCH_SERVE_SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "$.schema_version: expected {BENCH_SERVE_SCHEMA_VERSION}, found {other:?}"
            ))
        }
    }

    let params = require(&root, "params", "$")?;
    match require(params, "domain", "$.params")? {
        Value::Str(_) => {}
        other => {
            return Err(format!(
                "$.params.domain: expected string, found {}",
                other.kind()
            ))
        }
    }
    for key in ["listings", "seed", "clients", "requests_per_client"] {
        require_number(params, key, "$.params")?;
    }

    let latency = require(&root, "latency", "$")?;
    for key in ["count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
        require_number(latency, key, "$.latency")?;
    }

    let throughput = require(&root, "throughput", "$")?;
    for key in ["requests", "wall_ns", "requests_per_sec"] {
        require_number(throughput, key, "$.throughput")?;
    }

    let statuses = require(&root, "statuses", "$")?;
    let Value::Map(status_entries) = statuses else {
        return Err(format!(
            "$.statuses: expected object, found {}",
            statuses.kind()
        ));
    };
    for (status, count) in status_entries {
        if !matches!(count, Value::Int(_)) {
            return Err(format!("$.statuses.{status}: expected integer count"));
        }
    }

    let batching = require(&root, "batching", "$")?;
    for key in ["batches", "requests", "max_batch", "mean_batch"] {
        require_number(batching, key, "$.batching")?;
    }

    let checks = require(&root, "checks", "$")?;
    match require(checks, "byte_identical", "$.checks")? {
        Value::Bool(_) => {}
        other => {
            return Err(format!(
                "$.checks.byte_identical: expected bool, found {}",
                other.kind()
            ))
        }
    }
    for key in ["dropped_connections", "backpressure_503"] {
        require_number(checks, key, "$.checks")?;
    }

    let tracing = require(&root, "tracing", "$")?;
    for key in [
        "traceparent_echoed",
        "trace_continuity",
        "sampled_trace_found",
    ] {
        match require(tracing, key, "$.tracing")? {
            Value::Bool(_) => {}
            other => {
                return Err(format!(
                    "$.tracing.{key}: expected bool, found {}",
                    other.kind()
                ))
            }
        }
    }
    for key in ["window_p50_ns", "window_p95_ns", "window_p99_ns"] {
        require_number(tracing, key, "$.tracing")?;
    }
    Ok(())
}

/// Version stamp written into (and demanded from) `BENCH_infer.json`.
pub const BENCH_INFER_SCHEMA_VERSION: i64 = 1;

/// One DTD-less corpus the `lsd-infer` binary learned a schema from,
/// ready to render into `BENCH_infer.json`.
#[derive(Debug, Clone, Default)]
pub struct InferBenchCorpus {
    /// Corpus identifier, e.g. `real-estate-1/source-0`.
    pub corpus: String,
    /// Training instances (listings) in the corpus.
    pub listings: usize,
    /// Total element nodes across all instances (sum of per-element
    /// support).
    pub instances: usize,
    /// Wall-clock time of the inference call.
    pub wall_ns: u64,
    /// Elements the learned DTD declares.
    pub elements: usize,
    /// Single-occurrence-automaton edges summed over all elements — the
    /// structural size inference had to rewrite.
    pub edges: usize,
    /// Elements whose model generalizes beyond the literal corpus
    /// (`?`/`*`/`+` factoring, k-ORE escalation).
    pub generalizations: usize,
    /// Elements that fell back to CHARE or the catch-all expression.
    pub fallbacks: usize,
}

impl InferBenchCorpus {
    /// Share of elements that needed a fallback model (0 when the corpus
    /// declared no elements).
    pub fn fallback_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.elements as f64
        }
    }
}

/// Renders an `lsd-infer` run as the `BENCH_infer.json` document (schema
/// version 1): per-corpus inference wall time, element/edge counts, and
/// the generalization/fallback rates CI tracks across commits.
pub fn bench_infer_json(listings: usize, seed: u64, corpora: &[InferBenchCorpus]) -> String {
    let corpora_value = Value::Map(
        corpora
            .iter()
            .map(|c| {
                (
                    c.corpus.clone(),
                    obj(vec![
                        ("listings", int(c.listings as u64)),
                        ("instances", int(c.instances as u64)),
                        ("wall_ns", int(c.wall_ns)),
                        ("wall_ms", Value::Float(c.wall_ns as f64 / 1e6)),
                        ("elements", int(c.elements as u64)),
                        ("edges", int(c.edges as u64)),
                        ("generalizations", int(c.generalizations as u64)),
                        ("fallbacks", int(c.fallbacks as u64)),
                        ("fallback_rate", Value::Float(c.fallback_rate())),
                    ]),
                )
            })
            .collect(),
    );
    let root = obj(vec![
        ("schema_version", Value::Int(BENCH_INFER_SCHEMA_VERSION)),
        (
            "params",
            obj(vec![
                ("listings", int(listings as u64)),
                ("seed", int(seed)),
            ]),
        ),
        ("corpora", corpora_value),
    ]);
    serde_json::to_string_pretty(&root).expect("Value serialization cannot fail")
}

/// Checks a `BENCH_infer.json` document against schema version 1. Returns
/// the first problem found, phrased with its JSON path.
pub fn validate_bench_infer(text: &str) -> Result<(), String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match require(&root, "schema_version", "$")? {
        Value::Int(v) if *v == BENCH_INFER_SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "$.schema_version: expected {BENCH_INFER_SCHEMA_VERSION}, found {other:?}"
            ))
        }
    }
    let params = require(&root, "params", "$")?;
    for key in ["listings", "seed"] {
        require_number(params, key, "$.params")?;
    }
    let corpora = require(&root, "corpora", "$")?;
    let Value::Map(corpus_entries) = corpora else {
        return Err(format!(
            "$.corpora: expected object, found {}",
            corpora.kind()
        ));
    };
    if corpus_entries.is_empty() {
        return Err("$.corpora: expected at least one corpus".to_string());
    }
    for (name, corpus) in corpus_entries {
        for key in [
            "listings",
            "instances",
            "wall_ns",
            "wall_ms",
            "elements",
            "edges",
            "generalizations",
            "fallbacks",
            "fallback_rate",
        ] {
            require_number(corpus, key, &format!("$.corpora.{name}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_schema_valid() {
        let report = MatchReport::default();
        let params = ExperimentParams::default();
        let json = bench_match_json(&report, &params, 0);
        validate_bench_match(&json).expect("schema-valid");
    }

    #[test]
    fn validator_rejects_missing_sections() {
        assert!(validate_bench_match("{}").is_err());
        assert!(validate_bench_match("not json").is_err());
        let wrong_version = r#"{"schema_version": 2}"#;
        let err = validate_bench_match(wrong_version).expect_err("version mismatch");
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn serve_report_round_trips_through_its_validator() {
        let run = ServeBenchRun {
            domain: "real-estate-1".to_string(),
            listings: 30,
            seed: 7,
            clients: 64,
            requests_per_client: 4,
            latencies_ns: (1..=256).map(|i| i * 1_000).collect(),
            wall_ns: 2_000_000,
            statuses: vec![(200, 255), (503, 1)],
            batches: 40,
            batched_requests: 255,
            max_batch: 8,
            byte_identical: true,
            dropped_connections: 0,
            backpressure_503: 1,
            traceparent_echoed: true,
            trace_continuity: true,
            sampled_trace_found: true,
            window_p50_ns: 120_000.0,
            window_p95_ns: 480_000.0,
            window_p99_ns: 900_000.0,
        };
        let json = bench_serve_json(&run);
        validate_bench_serve(&json).expect("schema-valid");
        // Exact quantiles from the full sample set, not bucket estimates.
        assert!(json.contains("\"max_ns\": 256000"), "{json}");
        assert!(json.contains("\"statuses\""), "{json}");
        assert!(json.contains("\"tracing\""), "{json}");
        assert!(json.contains("\"traceparent_echoed\": true"), "{json}");
        assert!(json.contains("\"window_p99_ns\""), "{json}");
    }

    #[test]
    fn serve_validator_rejects_defects() {
        let good = bench_serve_json(&ServeBenchRun::default());
        validate_bench_serve(&good).expect("empty run is still schema-valid");
        assert!(validate_bench_serve("{}").is_err());
        assert!(validate_bench_serve("not json").is_err());
        let err = validate_bench_serve(r#"{"schema_version": 99}"#).expect_err("version");
        assert!(err.contains("schema_version"), "{err}");
        let missing_checks = good.replace("\"checks\"", "\"cheques\"");
        let err = validate_bench_serve(&missing_checks).expect_err("missing checks");
        assert!(err.contains("checks"), "{err}");
        let missing_tracing = good.replace("\"tracing\"", "\"trancing\"");
        let err = validate_bench_serve(&missing_tracing).expect_err("missing tracing");
        assert!(err.contains("tracing"), "{err}");
    }

    #[test]
    fn infer_report_round_trips_through_its_validator() {
        let corpora = [
            InferBenchCorpus {
                corpus: "real-estate-1/source-0".to_string(),
                listings: 12,
                instances: 180,
                wall_ns: 2_500_000,
                elements: 15,
                edges: 48,
                generalizations: 4,
                fallbacks: 1,
            },
            InferBenchCorpus {
                corpus: "faculty/source-2".to_string(),
                listings: 12,
                instances: 96,
                wall_ns: 900_000,
                elements: 9,
                edges: 20,
                generalizations: 2,
                fallbacks: 0,
            },
        ];
        let json = bench_infer_json(12, 42, &corpora);
        validate_bench_infer(&json).expect("schema-valid");
        assert!(json.contains("\"real-estate-1/source-0\""), "{json}");
        assert!(json.contains("\"fallback_rate\""), "{json}");
        assert!(json.contains("\"wall_ms\""), "{json}");
    }

    #[test]
    fn infer_validator_rejects_defects() {
        assert!(validate_bench_infer("{}").is_err());
        assert!(validate_bench_infer("not json").is_err());
        let err = validate_bench_infer(r#"{"schema_version": 9}"#).expect_err("version");
        assert!(err.contains("schema_version"), "{err}");
        let empty = bench_infer_json(12, 42, &[]);
        let err = validate_bench_infer(&empty).expect_err("no corpora");
        assert!(err.contains("at least one corpus"), "{err}");
        let good = bench_infer_json(
            12,
            42,
            &[InferBenchCorpus {
                corpus: "c".to_string(),
                ..InferBenchCorpus::default()
            }],
        );
        let missing = good.replace("\"edges\"", "\"hedges\"");
        let err = validate_bench_infer(&missing).expect_err("missing edges");
        assert!(err.contains("edges"), "{err}");
    }

    #[test]
    fn fallback_rate_guards_division_by_zero() {
        assert_eq!(InferBenchCorpus::default().fallback_rate(), 0.0);
        let c = InferBenchCorpus {
            elements: 4,
            fallbacks: 1,
            ..InferBenchCorpus::default()
        };
        assert!((c.fallback_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sorted_quantile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(sorted_quantile(&v, 0.0), 1);
        assert_eq!(sorted_quantile(&v, 0.5), 51);
        assert_eq!(sorted_quantile(&v, 1.0), 100);
        assert_eq!(sorted_quantile(&[], 0.5), 0);
    }
}
