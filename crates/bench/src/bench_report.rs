//! The `BENCH_match.json` perf-trajectory record (schema version 1).
//!
//! Every bench/smoke run exports one JSON document summarizing where the
//! match pipeline spent its time — per-stage span statistics (count, total,
//! mean, p50/p95/p99), the A\* search counters, throughput, and per-learner
//! predict costs — under a *stable schema*, so successive runs can be
//! diffed mechanically and CI can chart the performance trajectory over
//! commits. [`validate_bench_match`] is the schema check CI runs against
//! the artifact it just produced.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "params":     { "listings", "seed", "threads" },
//!   "stages":     { "<span name>": { "count", "total_ns", "mean_ns",
//!                                    "p50_ns", "p95_ns", "p99_ns" }, ... },
//!   "search":     { "runs", "nodes_expanded", "nodes_generated",
//!                   "nodes_pruned", "evaluations" },
//!   "throughput": { "sources", "tags", "instances", "wall_ns",
//!                   "sources_per_sec" },
//!   "learners":   { "<learner>": { "predict_calls", "predict_total_ns",
//!                                  "predict_p95_ns" }, ... }
//! }
//! ```

use crate::runner::ExperimentParams;
use lsd_core::MatchReport;
use serde::Value;

/// Version stamp written into (and demanded from) `BENCH_match.json`.
pub const BENCH_MATCH_SCHEMA_VERSION: i64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Renders one match run as the `BENCH_match.json` document. `wall_ns` is
/// the caller-measured wall-clock time of the whole batch match.
pub fn bench_match_json(report: &MatchReport, params: &ExperimentParams, wall_ns: u64) -> String {
    let m = &report.metrics;

    let stages = Value::Map(
        m.histograms_labelled("span")
            .into_iter()
            .map(|(name, h)| {
                (
                    name.to_string(),
                    obj(vec![
                        ("count", int(h.count)),
                        ("total_ns", int(h.sum)),
                        ("mean_ns", Value::Float(h.mean())),
                        ("p50_ns", int(h.p50())),
                        ("p95_ns", int(h.p95())),
                        ("p99_ns", int(h.p99())),
                    ]),
                )
            })
            .collect(),
    );

    let learners = Value::Map(
        m.counters_labelled("learner.predict_calls")
            .into_iter()
            .map(|(name, calls)| {
                let h = m.histogram(&format!("learner.predict_ns/{name}"));
                (
                    name.to_string(),
                    obj(vec![
                        ("predict_calls", int(calls)),
                        ("predict_total_ns", int(h.map_or(0, |h| h.sum))),
                        ("predict_p95_ns", int(h.map_or(0, |h| h.p95()))),
                    ]),
                )
            })
            .collect(),
    );

    let sources = m.counter("match.sources");
    let root = obj(vec![
        ("schema_version", Value::Int(BENCH_MATCH_SCHEMA_VERSION)),
        (
            "params",
            obj(vec![
                ("listings", int(params.listings as u64)),
                ("seed", int(params.seed)),
                ("threads", int(params.exec.threads as u64)),
            ]),
        ),
        ("stages", stages),
        (
            "search",
            obj(vec![
                ("runs", int(m.counter("search.runs"))),
                ("nodes_expanded", int(m.counter("search.nodes_expanded"))),
                ("nodes_generated", int(m.counter("search.nodes_generated"))),
                ("nodes_pruned", int(m.counter("search.nodes_pruned"))),
                ("evaluations", int(m.counter("search.evaluations"))),
            ]),
        ),
        (
            "throughput",
            obj(vec![
                ("sources", int(sources)),
                ("tags", int(m.counter("match.tags"))),
                ("instances", int(m.counter("match.instances"))),
                ("wall_ns", int(wall_ns)),
                (
                    "sources_per_sec",
                    Value::Float(if wall_ns == 0 {
                        0.0
                    } else {
                        sources as f64 * 1e9 / wall_ns as f64
                    }),
                ),
            ]),
        ),
        ("learners", learners),
    ]);
    serde_json::to_string_pretty(&root).expect("Value serialization cannot fail")
}

fn require<'v>(v: &'v Value, key: &str, path: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{path}: missing `{key}`"))
}

fn require_number(v: &Value, key: &str, path: &str) -> Result<(), String> {
    match require(v, key, path)? {
        Value::Int(_) | Value::Float(_) => Ok(()),
        other => Err(format!(
            "{path}.{key}: expected number, found {}",
            other.kind()
        )),
    }
}

/// Checks a `BENCH_match.json` document against schema version 1. Returns
/// the first problem found, phrased with its JSON path.
pub fn validate_bench_match(text: &str) -> Result<(), String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match require(&root, "schema_version", "$")? {
        Value::Int(v) if *v == BENCH_MATCH_SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "$.schema_version: expected {BENCH_MATCH_SCHEMA_VERSION}, found {other:?}"
            ))
        }
    }

    let params = require(&root, "params", "$")?;
    for key in ["listings", "seed", "threads"] {
        require_number(params, key, "$.params")?;
    }

    let stages = require(&root, "stages", "$")?;
    let Value::Map(stage_entries) = stages else {
        return Err(format!(
            "$.stages: expected object, found {}",
            stages.kind()
        ));
    };
    for (name, stage) in stage_entries {
        for key in ["count", "total_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns"] {
            require_number(stage, key, &format!("$.stages.{name}"))?;
        }
    }

    let search = require(&root, "search", "$")?;
    for key in [
        "runs",
        "nodes_expanded",
        "nodes_generated",
        "nodes_pruned",
        "evaluations",
    ] {
        require_number(search, key, "$.search")?;
    }

    let throughput = require(&root, "throughput", "$")?;
    for key in ["sources", "tags", "instances", "wall_ns", "sources_per_sec"] {
        require_number(throughput, key, "$.throughput")?;
    }

    let learners = require(&root, "learners", "$")?;
    let Value::Map(learner_entries) = learners else {
        return Err(format!(
            "$.learners: expected object, found {}",
            learners.kind()
        ));
    };
    for (name, learner) in learner_entries {
        for key in ["predict_calls", "predict_total_ns", "predict_p95_ns"] {
            require_number(learner, key, &format!("$.learners.{name}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_schema_valid() {
        let report = MatchReport::default();
        let params = ExperimentParams::default();
        let json = bench_match_json(&report, &params, 0);
        validate_bench_match(&json).expect("schema-valid");
    }

    #[test]
    fn validator_rejects_missing_sections() {
        assert!(validate_bench_match("{}").is_err());
        assert!(validate_bench_match("not json").is_err());
        let wrong_version = r#"{"schema_version": 2}"#;
        let err = validate_bench_match(wrong_version).expect_err("version mismatch");
        assert!(err.contains("schema_version"), "{err}");
    }
}
