//! # lsd-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 6), plus Criterion micro-benchmarks.
//!
//! Binaries (run with `cargo run --release -p lsd-bench --bin <name>`):
//!
//! | binary      | paper artefact                                     |
//! |-------------|-----------------------------------------------------|
//! | `table3`    | Table 3 — domain and source characteristics         |
//! | `fig8a`     | Figure 8a — average matching accuracy, 4 configs    |
//! | `fig8bc`    | Figures 8b/8c — accuracy vs. listings per source    |
//! | `fig9a`     | Figure 9a — lesion studies                          |
//! | `fig9b`     | Figure 9b — schema info vs. data instances vs. both |
//! | `feedback`  | Section 6.3 — corrections needed for perfect match  |
//! | `experiments` | everything above, writing `experiment_results.json` |
//! | `ablations` | design-choice ablations (meta weights, search, WHIRL, NB smoothing, XML tokens) |
//! | `lsd-serve` | boots the `lsd-serve` matching server on a datagen-trained snapshot |
//! | `serve-load` | load driver for the server; writes `BENCH_serve.json` (p50/p95/p99, throughput) |
//! | `lsd-infer` | learns DTDs from DTD-less corpora; writes `BENCH_infer.json` (wall time, element/edge counts, fallback rate) |
//!
//! The methodology follows Section 6: per domain, all C(5,3) = 10
//! train/test splits (train on 3 sources, test on the other 2), repeated
//! over several trials with freshly sampled data; accuracy is the
//! percentage of matchable source tags matched correctly, averaged.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bench_report;
pub mod runner;

pub use bench_report::{
    bench_infer_json, bench_match_json, bench_serve_json, validate_bench_infer,
    validate_bench_match, validate_bench_serve, InferBenchCorpus, ServeBenchRun,
    BENCH_INFER_SCHEMA_VERSION, BENCH_MATCH_SCHEMA_VERSION, BENCH_SERVE_SCHEMA_VERSION,
};
pub use runner::{
    accuracy_of, accuracy_of_outcome, all_splits, build_lsd, collect_split_metrics,
    constraints_for, domain_slug, resolve_domain, run_matrix, to_sources, train_full_model, Config,
    ConstraintMode, DomainAccuracy, ExperimentParams, LearnerSet, Setup, SplitMetrics,
};
