//! `lsd-lint` — run the static-analysis pass from the command line.
//!
//! ```text
//! lsd-lint file.dtd ...   lint DTD files (schema lints, rustc-style output)
//! lsd-lint                lint the four built-in datagen domains: each
//!                         mediated schema, source schema and domain
//!                         constraint set
//! lsd-lint --json ...     machine-readable output: one JSON document with
//!                         every diagnostic (code, severity, message, span,
//!                         origin, notes, help) plus error/warning totals
//! ```
//!
//! Exit codes distinguish "lint found problems" from "lint failed to run":
//!
//! * `0` — clean (warnings alone do not fail the run);
//! * `1` — diagnostics errors: an error-severity diagnostic was produced,
//!   or an input file is not parseable as a DTD;
//! * `2` — I/O or usage errors: an input file could not be read, or an
//!   unknown flag was passed.
//!
//! CI gates on `lsd-lint examples/dtds/*.dtd` (with or without `--json`)
//! and can treat `2` as an infrastructure failure rather than a lint
//! finding.

use lsd_analysis::{analyze_constraints, analyze_dtd, render_all, with_origin, Diagnostic};
use lsd_core::LabelSet;
use lsd_datagen::DomainId;
use serde::Value;
use std::process::ExitCode;

/// Running totals plus the rendering sink. With `collected` present
/// (`--json`), diagnostics accumulate for one machine-readable document
/// instead of printing as they are found.
#[derive(Default)]
struct Tally {
    errors: usize,
    warnings: usize,
    collected: Option<Vec<Diagnostic>>,
}

impl Tally {
    fn report(&mut self, diagnostics: Vec<Diagnostic>, origin: &str, source: Option<&str>) {
        self.errors += diagnostics.iter().filter(|d| d.is_error()).count();
        self.warnings += diagnostics.iter().filter(|d| !d.is_error()).count();
        let diagnostics = with_origin(diagnostics, origin);
        match &mut self.collected {
            Some(sink) => sink.extend(diagnostics),
            None => print!("{}", render_all(&diagnostics, source)),
        }
    }

    /// Lints a DTD that was built in memory (its declarations carry
    /// synthetic spans): render it to `<!ELEMENT ...>` text, reparse to
    /// get spans into that text, and lint the reparsed DTD so diagnostics
    /// point into the rendered schema.
    fn report_in_memory(&mut self, dtd: &lsd_xml::Dtd, origin: &str) {
        let text = dtd.to_dtd_syntax();
        match lsd_xml::parse_dtd(&text) {
            Ok(reparsed) => self.report(analyze_dtd(&reparsed), origin, Some(&text)),
            Err(_) => self.report(analyze_dtd(dtd), origin, None),
        }
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One diagnostic as a stable JSON object: the `code` is the lint name
/// (`"LSD001"`), not the enum variant, and `severity` matches the
/// rustc-style text output (`"error"` / `"warning"`).
fn diagnostic_json(d: &Diagnostic) -> Value {
    obj(vec![
        ("code", Value::Str(d.code.as_str().to_string())),
        ("severity", Value::Str(d.severity.to_string())),
        ("message", Value::Str(d.message.clone())),
        (
            "origin",
            d.origin
                .as_ref()
                .map_or(Value::Null, |o| Value::Str(o.clone())),
        ),
        (
            "span",
            d.span.map_or(Value::Null, |s| {
                obj(vec![
                    ("start", Value::Int(s.start as i64)),
                    ("end", Value::Int(s.end as i64)),
                ])
            }),
        ),
        (
            "notes",
            Value::Seq(d.notes.iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        (
            "help",
            d.help
                .as_ref()
                .map_or(Value::Null, |h| Value::Str(h.clone())),
        ),
    ])
}

/// Exit code for I/O and usage failures — the lint did not run to
/// completion, as opposed to running and finding problems (`1`).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag `{arg}`");
            eprintln!("usage: lsd-lint [--json] [FILE.dtd ...]");
            return ExitCode::from(EXIT_USAGE);
        } else {
            files.push(arg);
        }
    }
    let mut tally = Tally {
        collected: json.then(Vec::new),
        ..Tally::default()
    };

    if files.is_empty() {
        for id in DomainId::ALL {
            let spec = id.spec();
            let mediated = spec.mediated_dtd();
            tally.report_in_memory(&mediated, &format!("{}: mediated schema", spec.name));
            let labels = LabelSet::new(mediated.element_names().map(str::to_string));
            tally.report(
                analyze_constraints(&labels, &spec.constraints),
                &format!("{}: constraints", spec.name),
                None,
            );
            for s in 0..spec.sources.len() {
                tally.report_in_memory(&spec.source_dtd(s), &format!("{}: source {s}", spec.name));
            }
        }
    } else {
        for path in &files {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    // The input could not even be read: an infrastructure
                    // failure, not a lint finding.
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let dtd = match lsd_xml::parse_dtd(&text) {
                Ok(dtd) => dtd,
                Err(e) => {
                    // An unparseable DTD is a problem *with the linted
                    // input* — count it like an error diagnostic (exit 1).
                    eprintln!("error: {path} is not a valid DTD: {e}");
                    tally.errors += 1;
                    continue;
                }
            };
            tally.report(analyze_dtd(&dtd), path, Some(&text));
        }
    }

    if let Some(diagnostics) = &tally.collected {
        let doc = obj(vec![
            (
                "diagnostics",
                Value::Seq(diagnostics.iter().map(diagnostic_json).collect()),
            ),
            ("errors", Value::Int(tally.errors as i64)),
            ("warnings", Value::Int(tally.warnings as i64)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("Value serialization cannot fail")
        );
    } else {
        let what = if files.is_empty() {
            "built-in datagen domains".to_string()
        } else {
            format!(
                "{} file{}",
                files.len(),
                if files.len() == 1 { "" } else { "s" }
            )
        };
        println!(
            "lsd-lint: checked {what}: {} error(s), {} warning(s)",
            tally.errors, tally.warnings
        );
    }
    if tally.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
