//! `lsd-lint` — run the static-analysis pass from the command line.
//!
//! ```text
//! lsd-lint file.dtd ...   lint DTD files (schema lints, rustc-style output)
//! lsd-lint                lint the four built-in datagen domains: each
//!                         mediated schema, source schema and domain
//!                         constraint set
//! ```
//!
//! Exits 1 if any error-severity diagnostic was produced, 0 otherwise
//! (warnings alone do not fail the run) — so CI can gate on
//! `lsd-lint examples/dtds/*.dtd`.

use lsd_analysis::{analyze_constraints, analyze_dtd, render_all, with_origin, Diagnostic};
use lsd_core::LabelSet;
use lsd_datagen::DomainId;
use std::process::ExitCode;

/// Running totals plus the rendering sink.
#[derive(Default)]
struct Tally {
    errors: usize,
    warnings: usize,
}

impl Tally {
    fn report(&mut self, diagnostics: Vec<Diagnostic>, origin: &str, source: Option<&str>) {
        self.errors += diagnostics.iter().filter(|d| d.is_error()).count();
        self.warnings += diagnostics.iter().filter(|d| !d.is_error()).count();
        print!("{}", render_all(&with_origin(diagnostics, origin), source));
    }

    /// Lints a DTD that was built in memory (its declarations carry
    /// synthetic spans): render it to `<!ELEMENT ...>` text, reparse to
    /// get spans into that text, and lint the reparsed DTD so diagnostics
    /// point into the rendered schema.
    fn report_in_memory(&mut self, dtd: &lsd_xml::Dtd, origin: &str) {
        let text = dtd.to_dtd_syntax();
        match lsd_xml::parse_dtd(&text) {
            Ok(reparsed) => self.report(analyze_dtd(&reparsed), origin, Some(&text)),
            Err(_) => self.report(analyze_dtd(dtd), origin, None),
        }
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    let mut tally = Tally::default();

    if files.is_empty() {
        for id in DomainId::ALL {
            let spec = id.spec();
            let mediated = spec.mediated_dtd();
            tally.report_in_memory(&mediated, &format!("{}: mediated schema", spec.name));
            let labels = LabelSet::new(mediated.element_names().map(str::to_string));
            tally.report(
                analyze_constraints(&labels, &spec.constraints),
                &format!("{}: constraints", spec.name),
                None,
            );
            for s in 0..spec.sources.len() {
                tally.report_in_memory(&spec.source_dtd(s), &format!("{}: source {s}", spec.name));
            }
        }
    } else {
        for path in &files {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let dtd = match lsd_xml::parse_dtd(&text) {
                Ok(dtd) => dtd,
                Err(e) => {
                    eprintln!("error: {path} is not a valid DTD: {e}");
                    return ExitCode::FAILURE;
                }
            };
            tally.report(analyze_dtd(&dtd), path, Some(&text));
        }
    }

    let what = if files.is_empty() {
        "built-in datagen domains".to_string()
    } else {
        format!(
            "{} file{}",
            files.len(),
            if files.len() == 1 { "" } else { "s" }
        )
    };
    println!(
        "lsd-lint: checked {what}: {} error(s), {} warning(s)",
        tally.errors, tally.warnings
    );
    if tally.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
