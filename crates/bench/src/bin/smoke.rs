//! CI smoke pass: one tiny instrumented train + `match_batch` over a single
//! generated domain, writing `metrics.json` to the current directory.
//!
//! This is the minimal end-to-end proof that the observability layer works
//! in a release build: the written file must contain A\* counters and
//! per-stage span timings, which CI uploads as an artifact. Scale with
//! `LSD_LISTINGS` / `LSD_SEED` / `LSD_THREADS` like the other binaries.

use lsd_bench::{accuracy_of_outcome, build_lsd, to_sources, ExperimentParams, Setup};
use lsd_core::TrainedSource;
use lsd_datagen::DomainId;

fn main() {
    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30; // tiny by default: this is a smoke test
    }
    let domain = DomainId::RealEstate1.generate(params.listings, params.seed);

    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: to_sources(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
    let train_report = lsd
        .train_with_report(&training)
        .expect("generated sources have listings");

    let batch = vec![
        to_sources(&domain.sources[3]),
        to_sources(&domain.sources[4]),
    ];
    let (outcomes, match_report) = lsd
        .match_batch_with_report(&batch, &params.exec)
        .expect("generated sources are well-formed");

    for (outcome, gs) in outcomes.iter().zip(&domain.sources[3..]) {
        println!(
            "{:<24} accuracy={:>5.1}%",
            gs.name,
            100.0 * accuracy_of_outcome(outcome, gs)
        );
    }
    println!(
        "train: examples={} cv_folds={}",
        train_report.examples(),
        train_report.cv_folds()
    );
    println!(
        "match: sources={} astar-expanded={} pruned={} constraint-evals={}",
        match_report.sources_matched(),
        match_report.nodes_expanded(),
        match_report.nodes_pruned(),
        match_report.constraint_evaluations()
    );

    assert!(
        match_report.nodes_expanded() >= 1,
        "instrumented search must expand at least one node"
    );

    let json = serde_json::json!({
        "train_report": train_report,
        "match_report": match_report,
    });
    std::fs::write(
        "metrics.json",
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write metrics.json");
    println!("Wrote metrics.json");
}
