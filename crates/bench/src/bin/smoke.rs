//! CI smoke pass: one tiny instrumented train + `match_batch` over a single
//! generated domain, writing the full telemetry artifact set to the current
//! directory:
//!
//! - `metrics.json` — the raw train/match metric snapshots;
//! - `trace.json` — the match run's spans as Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`);
//! - `events.jsonl` — the match run's metrics as JSON-Lines;
//! - `BENCH_match.json` — the schema-versioned perf-trajectory record.
//!
//! Each artifact is read back and validated in-process before the binary
//! exits, so a malformed export fails CI here rather than downstream. Scale
//! with `LSD_LISTINGS` / `LSD_SEED` / `LSD_THREADS` like the other binaries.

use lsd_bench::{
    accuracy_of_outcome, bench_match_json, build_lsd, to_sources, validate_bench_match,
    ExperimentParams, Setup,
};
use lsd_core::TrainedSource;
use lsd_datagen::DomainId;
use std::time::Instant;

fn main() {
    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30; // tiny by default: this is a smoke test
    }
    let domain = DomainId::RealEstate1.generate(params.listings, params.seed);

    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: to_sources(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
    let train_report = lsd
        .train_with_report(&training)
        .expect("generated sources have listings");

    let batch = vec![
        to_sources(&domain.sources[3]),
        to_sources(&domain.sources[4]),
    ];
    let t0 = Instant::now();
    let (outcomes, match_report) = lsd
        .match_batch_with_report(&batch, &params.exec)
        .expect("generated sources are well-formed");
    let wall_ns = t0.elapsed().as_nanos() as u64;

    for (outcome, gs) in outcomes.iter().zip(&domain.sources[3..]) {
        println!(
            "{:<24} accuracy={:>5.1}%",
            gs.name,
            100.0 * accuracy_of_outcome(outcome, gs)
        );
    }
    println!(
        "train: examples={} cv_folds={}",
        train_report.examples(),
        train_report.cv_folds()
    );
    println!(
        "match: sources={} astar-expanded={} pruned={} constraint-evals={}",
        match_report.sources_matched(),
        match_report.nodes_expanded(),
        match_report.nodes_pruned(),
        match_report.constraint_evaluations()
    );

    assert!(
        match_report.nodes_expanded() >= 1,
        "instrumented search must expand at least one node"
    );

    let json = serde_json::json!({
        "train_report": train_report,
        "match_report": match_report,
    });
    write(
        "metrics.json",
        &serde_json::to_string_pretty(&json).expect("serializable"),
    );

    // Chrome trace: must be well-formed JSON with one complete event per
    // recorded span (Perfetto silently drops malformed files — validate
    // here instead).
    let trace = match_report.chrome_trace();
    let parsed: serde_json::Value =
        serde_json::from_str(&trace).expect("trace.json must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .expect("trace.json must carry traceEvents");
    let serde_json::Value::Seq(events) = events else {
        panic!("traceEvents must be an array");
    };
    let complete = events
        .iter()
        .filter(|e| {
            e.get("ph")
                .map(|p| p == &serde_json::Value::Str("X".into()))
                == Some(true)
        })
        .count();
    assert_eq!(
        complete,
        match_report.metrics.spans.len(),
        "one complete event per span"
    );
    write("trace.json", &trace);

    // JSONL events: every line must parse back.
    let jsonl = match_report.events_jsonl(4096);
    let parsed_events = lsd_obs::export::parse_jsonl(&jsonl).expect("events.jsonl must round-trip");
    assert!(
        !parsed_events.is_empty(),
        "an instrumented run must export events"
    );
    write("events.jsonl", &jsonl);

    // Perf trajectory: schema-validate before shipping.
    let bench = bench_match_json(&match_report, &params, wall_ns);
    validate_bench_match(&bench).expect("BENCH_match.json must be schema-valid");
    write("BENCH_match.json", &bench);
}

fn write(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("Wrote {path}");
}
