//! Runs the complete Section 6 evaluation — every table and figure — and
//! writes both a human-readable report to stdout and machine-readable
//! results to `experiment_results.json` in the current directory.
//!
//! This is the binary behind EXPERIMENTS.md. A full run with the paper's
//! parameters (3 trials, 300 listings) takes tens of minutes; scale down
//! with `LSD_TRIALS=1 LSD_LISTINGS=80` for a smoke pass.

use lsd_bench::{run_matrix, Config, DomainAccuracy, ExperimentParams};
use lsd_core::feedback::simulate_feedback_session;
use lsd_core::TrainedSource;
use lsd_datagen::DomainId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

fn main() {
    let params = ExperimentParams::from_env();
    let started = Instant::now();
    let mut report = serde_json::Map::new();
    report.insert(
        "params".into(),
        json!({
            "trials": params.trials,
            "listings": params.listings,
            "seed": params.seed,
        }),
    );

    println!("== LSD full experiment suite ==");
    println!(
        "trials={} listings={} seed={}\n",
        params.trials, params.listings, params.seed
    );

    // ---- Figure 8a ----
    println!("-- Figure 8a: average matching accuracy --");
    let fig8a_configs = vec![
        Config::Single("name-matcher"),
        Config::Single("content-matcher"),
        Config::Single("naive-bayes"),
        Config::Meta,
        Config::MetaConstraints,
        Config::Full,
    ];
    let mut fig8a = serde_json::Map::new();
    for id in DomainId::ALL {
        let r = run_matrix(id, &fig8a_configs, &params);
        let best_base = r[..3].iter().map(|d| d.mean).fold(f64::MIN, f64::max);
        println!(
            "{:<16} best-base={:>5.1} meta={:>5.1} constraints={:>5.1} full={:>5.1}",
            id.name(),
            best_base,
            r[3].mean,
            r[4].mean,
            r[5].mean
        );
        fig8a.insert(
            id.name().into(),
            json!({
                "best_base": best_base,
                "singles": fig8a_configs[..3]
                    .iter()
                    .zip(&r[..3])
                    .map(|(c, d)| json!({"config": c.label(), "mean": d.mean, "std": d.std_dev}))
                    .collect::<Vec<_>>(),
                "meta": acc_json(&r[3]),
                "meta_constraints": acc_json(&r[4]),
                "full": acc_json(&r[5]),
            }),
        );
    }
    report.insert("fig8a".into(), fig8a.into());

    // ---- Figures 8b/8c ----
    println!("\n-- Figures 8b/8c: accuracy vs listings per source --");
    let sweep_configs = vec![
        Config::Single("naive-bayes"),
        Config::Meta,
        Config::MetaConstraints,
        Config::Full,
    ];
    let mut sweeps = serde_json::Map::new();
    for (figure, id) in [
        ("fig8b", DomainId::RealEstate1),
        ("fig8c", DomainId::TimeSchedule),
    ] {
        let mut series = Vec::new();
        for listings in [5usize, 10, 20, 50, 100, 200, 300, 500] {
            let mut p = params;
            p.listings = listings;
            let r = run_matrix(id, &sweep_configs, &p);
            println!(
                "{} {:>4} listings: base={:>5.1} meta={:>5.1} constraints={:>5.1} full={:>5.1}",
                figure, listings, r[0].mean, r[1].mean, r[2].mean, r[3].mean
            );
            series.push(json!({
                "listings": listings,
                "base": r[0].mean,
                "meta": r[1].mean,
                "constraints": r[2].mean,
                "full": r[3].mean,
            }));
        }
        sweeps.insert(figure.into(), series.into());
    }
    report.insert("fig8bc".into(), sweeps.into());

    // ---- Figure 9a ----
    println!("\n-- Figure 9a: lesion studies --");
    let lesion_configs = vec![
        Config::Lesion("name-matcher"),
        Config::Lesion("naive-bayes"),
        Config::Lesion("content-matcher"),
        Config::NoHandler,
        Config::Full,
    ];
    let mut fig9a = serde_json::Map::new();
    for id in DomainId::ALL {
        let r = run_matrix(id, &lesion_configs, &params);
        println!(
            "{:<16} -name={:>5.1} -nb={:>5.1} -content={:>5.1} -handler={:>5.1} full={:>5.1}",
            id.name(),
            r[0].mean,
            r[1].mean,
            r[2].mean,
            r[3].mean,
            r[4].mean
        );
        fig9a.insert(
            id.name().into(),
            json!({
                "without_name_matcher": acc_json(&r[0]),
                "without_naive_bayes": acc_json(&r[1]),
                "without_content_matcher": acc_json(&r[2]),
                "without_constraint_handler": acc_json(&r[3]),
                "complete": acc_json(&r[4]),
            }),
        );
    }
    report.insert("fig9a".into(), fig9a.into());

    // ---- Figure 9b ----
    println!("\n-- Figure 9b: schema vs data information --");
    let split_configs = vec![Config::SchemaOnly, Config::DataOnly, Config::Full];
    let mut fig9b = serde_json::Map::new();
    for id in DomainId::ALL {
        let r = run_matrix(id, &split_configs, &params);
        println!(
            "{:<16} schema-only={:>5.1} data-only={:>5.1} both={:>5.1}",
            id.name(),
            r[0].mean,
            r[1].mean,
            r[2].mean
        );
        fig9b.insert(
            id.name().into(),
            json!({
                "schema_only": acc_json(&r[0]),
                "data_only": acc_json(&r[1]),
                "both": acc_json(&r[2]),
            }),
        );
    }
    report.insert("fig9b".into(), fig9b.into());

    // ---- Section 6.3 feedback ----
    println!("\n-- Section 6.3: user feedback --");
    let mut feedback = serde_json::Map::new();
    for id in [DomainId::TimeSchedule, DomainId::RealEstate2] {
        let mut corrections = Vec::new();
        let mut tags = Vec::new();
        for run in 0..3u64 {
            let seed = params.seed.wrapping_add(run).wrapping_mul(0x9E37_79B9);
            let domain = id.generate(params.listings, seed);
            let mut order: Vec<usize> = (0..5).collect();
            order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
            let (test, train) = (order[0], &order[1..4]);
            let mut lsd = lsd_bench::build_lsd(&domain, lsd_bench::Setup::FULL, params.lsd);
            let training: Vec<TrainedSource> = train
                .iter()
                .map(|&i| TrainedSource {
                    source: lsd_bench::to_sources(&domain.sources[i]),
                    mapping: domain.sources[i].mapping.clone(),
                })
                .collect();
            lsd.train(&training)
                .expect("training sources have listings");
            let gs = &domain.sources[test];
            let outcome = simulate_feedback_session(&lsd, &lsd_bench::to_sources(gs), &gs.mapping)
                .expect("bench sources are well-formed");
            corrections.push(outcome.corrections.len() as f64);
            tags.push(gs.dtd.len() as f64);
        }
        let avg_c = corrections.iter().sum::<f64>() / 3.0;
        let avg_t = tags.iter().sum::<f64>() / 3.0;
        println!(
            "{:<16} avg corrections={:.1} over avg {:.1} tags",
            id.name(),
            avg_c,
            avg_t
        );
        feedback.insert(
            id.name().into(),
            json!({"avg_corrections": avg_c, "avg_tags": avg_t, "runs": corrections}),
        );
    }
    report.insert("feedback".into(), feedback.into());

    // ---- Observability export ----
    // One instrumented FULL-configuration pass per domain: every C(5,3)
    // split trains and batch-matches inside an lsd_obs collection, and the
    // per-stage timings / A* counters land in metrics.json next to
    // experiment_results.json.
    println!("\n-- observability: per-split pipeline metrics --");
    let mut all_metrics = Vec::new();
    for id in DomainId::ALL {
        let records = lsd_bench::collect_split_metrics(id, &params);
        let expanded: u64 = records
            .iter()
            .map(|r| r.match_report.nodes_expanded())
            .sum();
        let evals: u64 = records
            .iter()
            .map(|r| r.match_report.constraint_evaluations())
            .sum();
        println!(
            "{:<16} splits={} astar-expanded={} constraint-evals={}",
            id.name(),
            records.len(),
            expanded,
            evals
        );
        all_metrics.extend(records);
    }
    let metrics_path = "metrics.json";
    std::fs::write(
        metrics_path,
        serde_json::to_string_pretty(&all_metrics).expect("serializable"),
    )
    .expect("write metrics file");
    println!("Wrote {metrics_path} ({} split records)", all_metrics.len());

    // Exportable telemetry for the first split record: a Perfetto-loadable
    // Chrome trace, the JSONL event stream, and the schema-versioned perf
    // record. (One representative split keeps the artifacts small; the
    // full per-split snapshots are all in metrics.json above.)
    if let Some(record) = all_metrics.first() {
        std::fs::write("trace.json", record.match_report.chrome_trace()).expect("write trace.json");
        println!("Wrote trace.json");
        std::fs::write("events.jsonl", record.match_report.events_jsonl(4096))
            .expect("write events.jsonl");
        println!("Wrote events.jsonl");
        // No single wall-clock measurement spans exactly this batch match,
        // so use the cumulative per-source match wall time (an upper bound
        // on the batch wall: workers overlap).
        let wall_ns = record
            .match_report
            .metrics
            .histogram("span/match.source")
            .map_or(0, |h| h.sum);
        let bench = lsd_bench::bench_match_json(&record.match_report, &params, wall_ns);
        lsd_bench::validate_bench_match(&bench).expect("BENCH_match.json must be schema-valid");
        std::fs::write("BENCH_match.json", bench).expect("write BENCH_match.json");
        println!("Wrote BENCH_match.json");
    }

    report.insert(
        "elapsed_seconds".into(),
        json!(started.elapsed().as_secs_f64()),
    );
    let path = "experiment_results.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write results file");
    println!(
        "\nWrote {path} ({:.0}s total)",
        started.elapsed().as_secs_f64()
    );
}

fn acc_json(d: &DomainAccuracy) -> serde_json::Value {
    json!({"mean": d.mean, "std": d.std_dev, "samples": d.samples})
}
