//! Regenerates **Table 3**: domains and data sources for the experiments.
//!
//! Prints, for each domain, the mediated-schema statistics (tags, non-leaf
//! tags, depth) and per-source ranges (sources, listings, tags, non-leaf
//! tags, depth, matchable %), in the layout of the paper's Table 3.
//!
//! Note on the depth convention: we report the number of *levels* of the
//! DTD tree (root = 1). Flat sources therefore show depth 2 where the
//! paper shows 1; the mediated-schema depths match the paper exactly.

use lsd_datagen::DomainId;
use lsd_xml::SchemaTree;

fn main() {
    let listings = std::env::var("LSD_LISTINGS")
        .ok()
        .and_then(|v| v.parse().ok());
    println!(
        "{:<16} | {:>4} {:>8} {:>5} | {:>7} {:>11} {:>7} {:>8} {:>5} {:>10}",
        "Domain",
        "Tags",
        "Non-leaf",
        "Depth",
        "Sources",
        "Listings",
        "Tags",
        "Non-leaf",
        "Depth",
        "Matchable"
    );
    println!("{}", "-".repeat(106));
    for id in DomainId::ALL {
        let n = listings.unwrap_or_else(|| id.default_listings());
        let domain = id.generate(n, 0);
        let mediated = SchemaTree::from_dtd(&domain.mediated).expect("valid mediated DTD");

        let mut tag_range = (usize::MAX, 0);
        let mut nl_range = (usize::MAX, 0);
        let mut depth_range = (usize::MAX, 0);
        let mut listings_range = (usize::MAX, 0);
        let mut match_range = (f64::MAX, 0.0f64);
        for src in &domain.sources {
            let tree = SchemaTree::from_dtd(&src.dtd).expect("valid source DTD");
            let grow = |r: &mut (usize, usize), v: usize| {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            };
            grow(&mut tag_range, tree.len());
            grow(&mut nl_range, tree.non_leaf_tags().count());
            grow(&mut depth_range, tree.max_depth());
            grow(&mut listings_range, src.listings.len());
            let pct = src.matchable_percent();
            match_range.0 = match_range.0.min(pct);
            match_range.1 = match_range.1.max(pct);
        }
        let range = |r: (usize, usize)| {
            if r.0 == r.1 {
                format!("{}", r.0)
            } else {
                format!("{}-{}", r.0, r.1)
            }
        };
        println!(
            "{:<16} | {:>4} {:>8} {:>5} | {:>7} {:>11} {:>7} {:>8} {:>5} {:>9.0}%",
            id.name(),
            mediated.len(),
            mediated.non_leaf_tags().count(),
            mediated.max_depth(),
            domain.sources.len(),
            range(listings_range),
            range(tag_range),
            range(nl_range),
            range(depth_range),
            if (match_range.1 - match_range.0).abs() < 1e-9 {
                match_range.1
            } else {
                // Show the low end; the range prints below.
                match_range.0
            },
        );
        if (match_range.1 - match_range.0).abs() >= 1e-9 {
            println!(
                "{:>104}",
                format!("(matchable {:.0}-{:.0}%)", match_range.0, match_range.1)
            );
        }
    }
    println!(
        "\nPaper reference (Table 3): mediated tags 20/23/14/66, non-leaf 4/6/4/13, depth 3/4/3/4."
    );
}
