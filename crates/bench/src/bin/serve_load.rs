//! `serve-load` — load driver for the `lsd-serve` matching server.
//!
//! ```text
//! serve-load                        64 clients against an in-process server
//! serve-load --domain NAME          pick a built-in datagen domain
//! serve-load --clients N            concurrent clients (default 64)
//! serve-load --requests N           match requests per client (default 4)
//! serve-load --out PATH             report path (default BENCH_serve.json)
//! ```
//!
//! Two phases, both against servers this process boots itself:
//!
//! 1. **Load** — trains the FULL configuration, snapshots it, serves it,
//!    and fires `clients × requests` concurrent `POST /v1/match` calls for
//!    the two held-out sources plus one `POST /v1/explain` per client.
//!    Every `200` body must be **byte-identical** to the response rendered
//!    from a direct [`Lsd::match_source`] call on the same reloaded
//!    snapshot, and no connection may fail at the transport level. Once
//!    the load threads drain, a feedback probe posts one correction to
//!    `POST /v1/feedback` and requires the retrain worker to produce a
//!    new model generation (visible in `/v1/models` and `/metrics`).
//! 2. **Backpressure** — a deliberately starved server (zero workers,
//!    queue capacity 1, 300 ms deadline) must answer every request with
//!    `503 queue_full` or `504 deadline_exceeded`, never hang.
//!
//! Phase 1 also runs a **tracing probe**: every response must echo a
//! well-formed `traceparent`; a request carrying a client traceparent must
//! have its trace id continued verbatim; and (the server samples every
//! request, `slow_threshold` zero) the probe's span tree must be
//! retrievable from `GET /debug/traces?trace_id=...`. The rolling-window
//! p50/p95/p99 are scraped from `/metrics` into the report.
//!
//! The run is written as `BENCH_serve.json` (schema version 2: exact
//! p50/p95/p99 latency, throughput, status counts, batching counters,
//! check outcomes, tracing checks and window quantiles), validated
//! in-process before the driver exits. Any failed check exits nonzero.
//!
//! [`Lsd::match_source`]: lsd_core::Lsd::match_source

use lsd_bench::{
    bench_serve_json, domain_slug, resolve_domain, train_full_model, validate_bench_serve,
    ExperimentParams, ServeBenchRun,
};
use lsd_core::Lsd;
use lsd_datagen::{DomainId, GeneratedSource};
use lsd_serve::{json as serve_json, ModelRegistry, ServeConfig, Server};
use lsd_xml::write_element;
use serde::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed HTTP response.
struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal one-shot HTTP/1.1 client: `Connection: close`, read to EOF.
/// Transport failures come back as `Err` and count as dropped connections.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Result<HttpResponse, String> {
    http_with_headers(addr, method, path, &[], body)
}

/// Like [`http`], with extra request headers (e.g. a client `traceparent`).
fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: lsd\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream.write_all(body).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header/body separator".to_string())?;
    let head = std::str::from_utf8(&raw[..text_end]).map_err(|e| e.to_string())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparseable status line: {head:?}"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[text_end + 4..].to_vec(),
    })
}

/// True when `header` is a well-formed `00-{32 hex}-{16 hex}-{2 hex}`
/// traceparent with a nonzero trace id.
fn well_formed_traceparent(header: &str) -> bool {
    let parts: Vec<&str> = header.split('-').collect();
    parts.len() == 4
        && parts[0] == "00"
        && parts[1].len() == 32
        && parts[2].len() == 16
        && parts[3].len() == 2
        && parts[1].chars().all(|c| c.is_ascii_hexdigit())
        && parts[2].chars().all(|c| c.is_ascii_hexdigit())
        && parts[1].chars().any(|c| c != '0')
}

/// Reads the value of one Prometheus gauge sample line (exact series match,
/// labels included), e.g. `serve_request_ns_window_p50{label="match"}`.
fn scrape_gauge(metrics: &str, series: &str) -> f64 {
    metrics
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix(series)?;
            rest.trim().parse::<f64>().ok()
        })
        .unwrap_or(0.0)
}

/// The `"source"` object shared by `/v1/match` and `/v1/feedback` bodies —
/// DTD and listings back to text, exactly what a remote client would send.
fn source_value(source: &GeneratedSource) -> Value {
    let listings: Vec<Value> = source
        .listings
        .iter()
        .map(|e| Value::Str(write_element(e)))
        .collect();
    Value::Map(vec![
        ("name".to_string(), Value::Str(source.name.clone())),
        ("dtd".to_string(), Value::Str(source.dtd.to_dtd_syntax())),
        ("listings".to_string(), Value::Seq(listings)),
    ])
}

/// Renders a generated source as the `/v1/match` request body.
fn request_body(source: &GeneratedSource) -> Vec<u8> {
    let doc = Value::Map(vec![("source".to_string(), source_value(source))]);
    serde_json::to_string(&doc)
        .expect("Value serialization cannot fail")
        .into_bytes()
}

/// Renders a `/v1/feedback` request pinning `tag` to `label` on `source`.
fn feedback_body(source: &GeneratedSource, tag: &str, label: &str) -> Vec<u8> {
    let correction = Value::Map(vec![
        ("tag".to_string(), Value::Str(tag.to_string())),
        (
            "kind".to_string(),
            Value::Map(vec![(
                "TagIs".to_string(),
                Value::Map(vec![("label".to_string(), Value::Str(label.to_string()))]),
            )]),
        ),
    ]);
    let doc = Value::Map(vec![
        ("source".to_string(), source_value(source)),
        ("corrections".to_string(), Value::Seq(vec![correction])),
    ]);
    serde_json::to_string(&doc)
        .expect("Value serialization cannot fail")
        .into_bytes()
}

/// Polls `GET path` until the body contains `needle`, or times out.
fn poll_for(addr: SocketAddr, path: &str, needle: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(response) = http(addr, "GET", path, b"") {
            if response.status == 200 && String::from_utf8_lossy(&response.body).contains(needle) {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// What one client thread observed.
#[derive(Default)]
struct ClientReport {
    latencies_ns: Vec<u64>,
    statuses: Vec<u16>,
    mismatches: u64,
    dropped: u64,
    /// Responses whose `traceparent` echo was missing or malformed.
    bad_traceparent: u64,
}

impl ClientReport {
    fn check_traceparent(&mut self, response: &HttpResponse) {
        let ok = response
            .header("traceparent")
            .is_some_and(well_formed_traceparent);
        if !ok {
            self.bad_traceparent += 1;
        }
    }
}

fn main() -> ExitCode {
    let mut domain_name = "real-estate-1".to_string();
    let mut clients: usize = 64;
    let mut requests: usize = 4;
    let mut out = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value =
            |v: Option<String>, flag: &str| v.ok_or_else(|| format!("error: {flag} needs a value"));
        let result = match arg.as_str() {
            "--domain" => value(args.next(), "--domain").map(|v| domain_name = v),
            "--out" => value(args.next(), "--out").map(|v| out = v),
            "--clients" => value(args.next(), "--clients").and_then(|v| {
                v.parse()
                    .map(|n| clients = n)
                    .map_err(|e| format!("error: --clients: {e}"))
            }),
            "--requests" => value(args.next(), "--requests").and_then(|v| {
                v.parse()
                    .map(|n| requests = n)
                    .map_err(|e| format!("error: --requests: {e}"))
            }),
            other => Err(format!(
                "error: unknown argument `{other}`\n\
                 usage: serve-load [--domain NAME] [--clients N] [--requests N] [--out PATH]"
            )),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    if clients == 0 || requests == 0 {
        eprintln!("error: --clients and --requests must be positive");
        return ExitCode::FAILURE;
    }

    let Some(id) = resolve_domain(&domain_name) else {
        let names: Vec<String> = DomainId::ALL
            .iter()
            .map(|d| domain_slug(d.name()))
            .collect();
        eprintln!(
            "error: unknown domain `{domain_name}` (available: {})",
            names.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let slug = domain_slug(id.name());

    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30;
    }
    eprintln!(
        "training {} (listings {}, seed {})...",
        id.name(),
        params.listings,
        params.seed
    );
    let (domain, lsd) = train_full_model(id, &params);

    // Snapshot to a scratch directory; the server loads from disk like it
    // would in production.
    let models_dir = std::env::temp_dir().join(format!("serve-load-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("error: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    let snapshot = models_dir.join(format!("{slug}.json"));
    if let Err(e) = lsd.save_json(&snapshot) {
        eprintln!("error: cannot write snapshot: {e}");
        return ExitCode::FAILURE;
    }

    // Expected responses come from a *reloaded* snapshot driven through the
    // same render → parse path as the server, so "byte-identical" compares
    // the served pipeline against a direct in-process match of the same
    // model — the acceptance check.
    let loaded = match Lsd::load_json(&snapshot) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: snapshot does not reload: {e}");
            return ExitCode::FAILURE;
        }
    };
    let held_out = [&domain.sources[3], &domain.sources[4]];
    let bodies: Vec<Vec<u8>> = held_out.iter().map(|s| request_body(s)).collect();
    let mut expected_match = Vec::new();
    let mut expected_explain = Vec::new();
    for body in &bodies {
        let parsed = match serve_json::parse_match_request(body) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: generated request body does not parse: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match loaded.match_source(&parsed.source) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: direct match failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        expected_match.push(serve_json::match_body(&slug, &outcome));
        expected_explain.push(serve_json::explain_body(&slug, &outcome));
    }

    // ---- Phase 1: load ----
    let registry = match ModelRegistry::open(&models_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 1024,
        feedback_dir: Some(models_dir.clone()),
        // Sample every completed request into the flight recorder, so the
        // tracing probe below can retrieve its span tree deterministically.
        slow_threshold: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = match Server::bind(config, registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let (handle, join) = server.spawn();
    eprintln!("phase 1: {clients} clients x {requests} requests against {addr}");

    let bodies = Arc::new(bodies);
    let expected_match = Arc::new(expected_match);
    let expected_explain = Arc::new(expected_explain);
    let load_start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let bodies = Arc::clone(&bodies);
            let expected_match = Arc::clone(&expected_match);
            let expected_explain = Arc::clone(&expected_explain);
            std::thread::spawn(move || {
                let mut report = ClientReport::default();
                for request in 0..requests {
                    let which = (client + request) % bodies.len();
                    let started = Instant::now();
                    match http(addr, "POST", "/v1/match", &bodies[which]) {
                        Ok(response) => {
                            report
                                .latencies_ns
                                .push(started.elapsed().as_nanos() as u64);
                            report.statuses.push(response.status);
                            report.check_traceparent(&response);
                            if response.status == 200
                                && response.body != expected_match[which].as_bytes()
                            {
                                report.mismatches += 1;
                            }
                        }
                        Err(_) => report.dropped += 1,
                    }
                }
                let which = client % bodies.len();
                let started = Instant::now();
                match http(addr, "POST", "/v1/explain", &bodies[which]) {
                    Ok(response) => {
                        report
                            .latencies_ns
                            .push(started.elapsed().as_nanos() as u64);
                        report.statuses.push(response.status);
                        report.check_traceparent(&response);
                        if response.status == 200
                            && response.body != expected_explain[which].as_bytes()
                        {
                            report.mismatches += 1;
                        }
                    }
                    Err(_) => report.dropped += 1,
                }
                report
            })
        })
        .collect();

    let mut latencies_ns = Vec::new();
    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut mismatches = 0u64;
    let mut dropped = 0u64;
    let mut bad_traceparent = 0u64;
    for thread in threads {
        match thread.join() {
            Ok(report) => {
                latencies_ns.extend(report.latencies_ns);
                for status in report.statuses {
                    *status_counts.entry(status).or_insert(0) += 1;
                }
                mismatches += report.mismatches;
                dropped += report.dropped;
                bad_traceparent += report.bad_traceparent;
            }
            Err(_) => dropped += 1,
        }
    }
    let wall_ns = load_start.elapsed().as_nanos() as u64;

    // Tracing probe: a request carrying a client traceparent must have its
    // trace id continued verbatim (with a fresh server span id), and —
    // because `slow_threshold` is zero — be retrievable afterwards from
    // the flight recorder with its span tree intact.
    eprintln!("tracing probe: continuity + flight-recorder retrieval");
    let probe_trace = "deadbeefcafef00d0123456789abcdef";
    let probe_parent = format!("00-{probe_trace}-0011223344556677-01");
    let mut trace_continuity = false;
    let mut sampled_trace_found = false;
    match http_with_headers(
        addr,
        "POST",
        "/v1/match",
        &[("traceparent", probe_parent.as_str())],
        &bodies[0],
    ) {
        Ok(response) => {
            trace_continuity = response.header("traceparent").is_some_and(|echo| {
                well_formed_traceparent(echo)
                    && echo.split('-').nth(1) == Some(probe_trace)
                    && echo.split('-').nth(2) != Some("0011223344556677")
            });
            let lookup = http(
                addr,
                "GET",
                &format!("/debug/traces?trace_id={probe_trace}"),
                b"",
            );
            sampled_trace_found = lookup.is_ok_and(|r| {
                r.status == 200 && {
                    let text = String::from_utf8_lossy(&r.body).to_string();
                    text.contains(probe_trace) && text.contains("serve.request")
                }
            });
        }
        Err(e) => eprintln!("tracing probe request failed: {e}"),
    }

    // Probe the operational endpoints while the server is still up.
    let health = http(addr, "GET", "/healthz", b"");
    let metrics = http(addr, "GET", "/metrics", b"");

    // Feedback probe: post one durable correction and require the whole
    // serve → WAL → retrain → hot-swap loop to complete — the generation
    // visible in `/v1/models` bumps and `/metrics` exports it. Runs after
    // the load threads joined so the byte-identical check never races a
    // model swap.
    let mut probe_failures: Vec<String> = Vec::new();
    eprintln!("feedback probe: correcting one tag and waiting for the retrain worker");
    match held_out[0]
        .mapping
        .iter()
        .filter(|(_, label)| label.as_str() != "OTHER")
        .min()
    {
        Some((tag, label)) => match http(
            addr,
            "POST",
            "/v1/feedback",
            &feedback_body(held_out[0], tag, label),
        ) {
            Ok(response) if response.status == 200 => {
                let ack = String::from_utf8_lossy(&response.body).to_string();
                if !ack.contains("\"accepted\":1") {
                    probe_failures.push(format!("feedback ack looks wrong: {ack}"));
                } else if !poll_for(
                    addr,
                    "/v1/models",
                    "\"generation\":2",
                    Duration::from_secs(120),
                ) {
                    probe_failures
                        .push("retrain worker never bumped the model generation".to_string());
                } else if !poll_for(
                    addr,
                    "/metrics",
                    "serve_model_generation",
                    Duration::from_secs(10),
                ) {
                    probe_failures.push("/metrics is missing serve_model_generation".to_string());
                }
            }
            Ok(response) => probe_failures.push(format!(
                "/v1/feedback returned {}: {}",
                response.status,
                String::from_utf8_lossy(&response.body)
            )),
            Err(e) => probe_failures.push(format!("/v1/feedback failed: {e}")),
        },
        None => probe_failures.push("held-out source has no non-OTHER mapping".to_string()),
    }
    handle.shutdown();
    join.join().ok();

    let mut batches = 0u64;
    let mut batched_requests = 0u64;
    let mut max_batch = 0u64;
    match health {
        Ok(response) if response.status == 200 => {
            let text = String::from_utf8_lossy(&response.body).to_string();
            let stat = |key: &str| -> u64 {
                serde_json::from_str::<Value>(&text)
                    .ok()
                    .and_then(|v| match v.get(key) {
                        Some(Value::Int(n)) => Some(*n as u64),
                        _ => None,
                    })
                    .unwrap_or(0)
            };
            batches = stat("batches");
            batched_requests = stat("requests_processed");
            max_batch = stat("max_batch");
        }
        Ok(response) => probe_failures.push(format!("/healthz returned {}", response.status)),
        Err(e) => probe_failures.push(format!("/healthz failed: {e}")),
    }
    let mut window_p50_ns = 0.0;
    let mut window_p95_ns = 0.0;
    let mut window_p99_ns = 0.0;
    match metrics {
        Ok(response) if response.status == 200 => {
            let text = String::from_utf8_lossy(&response.body).to_string();
            if !text.contains("serve_http_requests") {
                probe_failures.push("/metrics is missing serve_http_requests".to_string());
            }
            window_p50_ns = scrape_gauge(&text, "serve_request_ns_window_p50{label=\"match\"}");
            window_p95_ns = scrape_gauge(&text, "serve_request_ns_window_p95{label=\"match\"}");
            window_p99_ns = scrape_gauge(&text, "serve_request_ns_window_p99{label=\"match\"}");
            if window_p50_ns <= 0.0 {
                probe_failures.push(
                    "/metrics is missing rolling-window quantiles for serve_request_ns".to_string(),
                );
            }
        }
        Ok(response) => probe_failures.push(format!("/metrics returned {}", response.status)),
        Err(e) => probe_failures.push(format!("/metrics failed: {e}")),
    }

    // ---- Phase 2: backpressure ----
    // Zero workers and a one-slot queue: the first request parks in the
    // queue until its 300 ms deadline (504); everyone else bounces off the
    // full queue (503). Nothing may hang past the client timeout.
    eprintln!("phase 2: backpressure against a starved server");
    let starved_registry = match ModelRegistry::open(&models_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot reopen registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let starved_config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        queue_capacity: 1,
        default_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let starved = match Server::bind(starved_config, starved_registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind starved server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let starved_addr = starved.local_addr();
    let (starved_handle, starved_join) = starved.spawn();

    let mut backpressure_503 = 0u64;
    let mut backpressure_failures: Vec<String> = Vec::new();
    let probes: Vec<_> = (0..8)
        .map(|i| {
            let body = bodies[i % bodies.len()].clone();
            std::thread::spawn(move || http(starved_addr, "POST", "/v1/match", &body))
        })
        .collect();
    for probe in probes {
        match probe.join() {
            Ok(Ok(response)) => match response.status {
                503 => backpressure_503 += 1,
                504 => {}
                other => backpressure_failures.push(format!(
                    "starved server answered {other}, expected 503 or 504"
                )),
            },
            Ok(Err(e)) => backpressure_failures.push(format!("starved request failed: {e}")),
            Err(_) => backpressure_failures.push("starved client panicked".to_string()),
        }
    }
    starved_handle.shutdown();
    starved_join.join().ok();
    if backpressure_503 == 0 {
        backpressure_failures.push("no 503 observed from the full queue".to_string());
    }

    std::fs::remove_dir_all(&models_dir).ok();

    // ---- Report ----
    let dropped_connections = dropped;
    let byte_identical = mismatches == 0;
    let traceparent_echoed = bad_traceparent == 0;
    let run = ServeBenchRun {
        domain: slug.clone(),
        listings: params.listings,
        seed: params.seed,
        clients,
        requests_per_client: requests,
        latencies_ns,
        wall_ns,
        statuses: status_counts.into_iter().collect(),
        batches,
        batched_requests,
        max_batch,
        byte_identical,
        dropped_connections,
        backpressure_503,
        traceparent_echoed,
        trace_continuity,
        sampled_trace_found,
        window_p50_ns,
        window_p95_ns,
        window_p99_ns,
    };
    let report = bench_serve_json(&run);
    if let Err(e) = validate_bench_serve(&report) {
        eprintln!("error: generated report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }

    let total = run.latencies_ns.len();
    eprintln!(
        "{total} responses, {dropped_connections} dropped, {mismatches} mismatches, \
         {batches} batches (max {max_batch}), {backpressure_503} backpressure 503s"
    );
    eprintln!("report written to {out}");

    let mut failed = false;
    if dropped_connections > 0 {
        eprintln!("FAIL: {dropped_connections} connections dropped");
        failed = true;
    }
    if !byte_identical {
        eprintln!("FAIL: {mismatches} responses differ from direct match_source output");
        failed = true;
    }
    if !traceparent_echoed {
        eprintln!("FAIL: {bad_traceparent} responses had a missing or malformed traceparent echo");
        failed = true;
    }
    if !trace_continuity {
        eprintln!("FAIL: client-supplied trace id was not continued in the echo");
        failed = true;
    }
    if !sampled_trace_found {
        eprintln!("FAIL: probe trace was not retrievable from /debug/traces");
        failed = true;
    }
    for problem in probe_failures.iter().chain(&backpressure_failures) {
        eprintln!("FAIL: {problem}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("all checks passed");
        ExitCode::SUCCESS
    }
}
