//! Regenerates **Figure 8a**: average matching accuracy per domain for the
//! four cumulative system configurations — best single base learner, +
//! meta-learner, + constraint handler, + XML learner (the complete system).
//!
//! Paper reference: best base learner 42–72%; complete LSD 71–92%; the
//! meta-learner adds 5–22 points, the constraint handler 7–13, the XML
//! learner 0.8–6 (largest in Real Estate II).
//!
//! Env overrides: `LSD_TRIALS` (default 3), `LSD_LISTINGS` (default 300),
//! `LSD_SEED`.

use lsd_bench::{run_matrix, Config, ExperimentParams};
use lsd_datagen::DomainId;

fn main() {
    let params = ExperimentParams::from_env();
    println!(
        "Figure 8a — average matching accuracy (%), {} trials x 10 splits, {} listings/source\n",
        params.trials, params.listings
    );
    let singles = [
        Config::Single("name-matcher"),
        Config::Single("content-matcher"),
        Config::Single("naive-bayes"),
    ];
    println!(
        "{:<16} | {:>10} {:>11} {:>13} {:>13} {:>13}",
        "Domain", "best-base", "(which)", "+meta", "+constraints", "+XML (full)"
    );
    println!("{}", "-".repeat(88));
    for id in DomainId::ALL {
        let mut configs: Vec<Config> = singles.to_vec();
        configs.extend([Config::Meta, Config::MetaConstraints, Config::Full]);
        let results = run_matrix(id, &configs, &params);
        let (best_idx, best) = results[..3]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.mean.partial_cmp(&b.1.mean).expect("finite"))
            .expect("three single-learner configs");
        println!(
            "{:<16} | {:>9.1} {:>12} {:>12.1} {:>13.1} {:>13.1}",
            id.name(),
            best.mean,
            match singles[best_idx] {
                Config::Single(l) => l,
                _ => unreachable!(),
            },
            results[3].mean,
            results[4].mean,
            results[5].mean,
        );
    }
    println!("\nPaper shape check: each column should improve on the previous one;");
    println!("the XML learner's gain should be largest in Real Estate II.");
}
