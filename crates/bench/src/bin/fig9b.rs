//! Regenerates **Figure 9b**: the contribution of learning from schema
//! information versus data instances.
//!
//! Schema-only = Name matcher + constraint handler with schema-related
//! constraints. Data-only = Naive Bayes + content matcher + XML learner +
//! recognizers + constraint handler with data-related constraints. Both =
//! the complete system.
//!
//! Paper reference: "both schemas and data instances make important
//! contributions to the overall performance" — each half alone clearly
//! below the complete system.
//!
//! Env overrides: `LSD_TRIALS`, `LSD_LISTINGS`, `LSD_SEED`.

use lsd_bench::{run_matrix, Config, ExperimentParams};
use lsd_datagen::DomainId;

fn main() {
    let params = ExperimentParams::from_env();
    println!(
        "Figure 9b — schema vs data information, average matching accuracy (%), {} trials x 10 splits, {} listings\n",
        params.trials, params.listings
    );
    let configs = [Config::SchemaOnly, Config::DataOnly, Config::Full];
    println!(
        "{:<16} | {:>12} {:>11} {:>11}",
        "Domain", "schema-only", "data-only", "both"
    );
    println!("{}", "-".repeat(56));
    for id in DomainId::ALL {
        let r = run_matrix(id, &configs, &params);
        println!(
            "{:<16} | {:>12.1} {:>11.1} {:>11.1}",
            id.name(),
            r[0].mean,
            r[1].mean,
            r[2].mean
        );
    }
    println!("\nPaper shape check: 'both' beats each half on every domain.");
}
