//! Regenerates **Figures 8b and 8c**: average domain accuracy as a
//! function of the number of data listings available per source, for Real
//! Estate I (8b) and Time Schedule (8c), with the same four configurations
//! as Figure 8a.
//!
//! Paper reference: accuracy "climbs steeply in the range 5–20, minimally
//! from 20 to 200, and levels off after 200".
//!
//! Env overrides: `LSD_TRIALS` (default 3), `LSD_SEED`. The sweep sizes are
//! fixed to the paper's x-axis.

use lsd_bench::{run_matrix, Config, ExperimentParams};
use lsd_datagen::DomainId;

const SIZES: [usize; 8] = [5, 10, 20, 50, 100, 200, 300, 500];

fn main() {
    let mut params = ExperimentParams::from_env();
    let configs = [
        Config::Single("naive-bayes"),
        Config::Meta,
        Config::MetaConstraints,
        Config::Full,
    ];
    for (figure, id) in [
        ("8b", DomainId::RealEstate1),
        ("8c", DomainId::TimeSchedule),
    ] {
        println!(
            "Figure {figure} — {} accuracy (%) vs listings per source ({} trials x 10 splits)\n",
            id.name(),
            params.trials
        );
        println!(
            "{:>9} | {:>12} {:>9} {:>13} {:>12}",
            "listings", "base(NB)", "+meta", "+constraints", "+XML(full)"
        );
        println!("{}", "-".repeat(62));
        for listings in SIZES {
            params.listings = listings;
            let results = run_matrix(id, &configs, &params);
            println!(
                "{:>9} | {:>12.1} {:>9.1} {:>13.1} {:>12.1}",
                listings, results[0].mean, results[1].mean, results[2].mean, results[3].mean
            );
        }
        println!();
    }
    println!("Paper shape check: steep climb to ~20 listings, plateau beyond ~200.");
}
