//! `lsd-explain` — decision provenance from the command line.
//!
//! ```text
//! lsd-explain                     explain the real-estate-1 held-out source
//! lsd-explain --domain NAME       pick a built-in datagen domain
//!                                 (real-estate-1, time-schedule,
//!                                 faculty-listings, real-estate-2; the
//!                                 paper's display names work too)
//! lsd-explain --json              machine-readable output (one JSON array
//!                                 of per-tag explanation records)
//! ```
//!
//! Trains the FULL configuration on the domain's first three sources, then
//! matches the held-out fourth source and prints, per source tag, the
//! complete "why": every candidate label with each base learner's score,
//! the meta-learner's stacking weight, the combined converter score, the
//! constraint verdict that rejected any higher-ranked candidate, and the
//! A\* search counters attributed to the (tag, label) pair. The candidate
//! order matches `MatchOutcome::candidates` exactly, and the output is
//! byte-identical across `LSD_THREADS` settings.
//!
//! Scale with `LSD_LISTINGS` / `LSD_SEED` like the other binaries.

use lsd_bench::{domain_slug, resolve_domain, to_sources, train_full_model, ExperimentParams};
use lsd_datagen::DomainId;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut domain_name = "real-estate-1".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--domain" => match args.next() {
                Some(name) => domain_name = name,
                None => {
                    eprintln!("error: --domain needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: lsd-explain [--json] [--domain NAME]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(id) = resolve_domain(&domain_name) else {
        let names: Vec<String> = DomainId::ALL
            .iter()
            .map(|d| domain_slug(d.name()))
            .collect();
        eprintln!(
            "error: unknown domain `{domain_name}` (available: {})",
            names.join(", ")
        );
        return ExitCode::FAILURE;
    };

    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30; // explanation needs evidence, not statistics
    }
    let (domain, lsd) = train_full_model(id, &params);

    let held_out = &domain.sources[3];
    let outcome = lsd
        .match_source(&to_sources(held_out))
        .expect("generated sources are well-formed");

    let explanations = outcome.explain_all();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&explanations).expect("explanations serialize")
        );
    } else {
        println!(
            "# {} — source `{}` ({} listings, seed {})\n",
            id.name(),
            held_out.name,
            params.listings,
            params.seed
        );
        for explanation in &explanations {
            print!("{}", explanation.render());
        }
    }
    ExitCode::SUCCESS
}
