//! `lsd-explain` — decision provenance from the command line.
//!
//! ```text
//! lsd-explain                     explain the real-estate-1 held-out source
//! lsd-explain --domain NAME       pick a built-in datagen domain
//!                                 (real-estate-1, time-schedule,
//!                                 faculty-listings, real-estate-2; the
//!                                 paper's display names work too)
//! lsd-explain --json              machine-readable output (one JSON array
//!                                 of per-tag explanation records)
//! ```
//!
//! Trains the FULL configuration on the domain's first three sources, then
//! matches the held-out fourth source and prints, per source tag, the
//! complete "why": every candidate label with each base learner's score,
//! the meta-learner's stacking weight, the combined converter score, the
//! constraint verdict that rejected any higher-ranked candidate, and the
//! A\* search counters attributed to the (tag, label) pair. The candidate
//! order matches `MatchOutcome::candidates` exactly, and the output is
//! byte-identical across `LSD_THREADS` settings.
//!
//! Scale with `LSD_LISTINGS` / `LSD_SEED` like the other binaries.

use lsd_bench::{build_lsd, to_sources, ExperimentParams, Setup};
use lsd_core::TrainedSource;
use lsd_datagen::DomainId;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut domain_name = "real-estate-1".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--domain" => match args.next() {
                Some(name) => domain_name = name,
                None => {
                    eprintln!("error: --domain needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: lsd-explain [--json] [--domain NAME]");
                return ExitCode::FAILURE;
            }
        }
    }
    // Domains resolve by slug ("real-estate-1") or the paper's display
    // name ("Real Estate I"), case-insensitively.
    let Some(id) = DomainId::ALL
        .into_iter()
        .find(|d| slug(d.name()) == slug(&domain_name))
    else {
        let names: Vec<String> = DomainId::ALL.iter().map(|d| slug(d.name())).collect();
        eprintln!(
            "error: unknown domain `{domain_name}` (available: {})",
            names.join(", ")
        );
        return ExitCode::FAILURE;
    };

    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30; // explanation needs evidence, not statistics
    }
    let domain = id.generate(params.listings, params.seed);

    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: to_sources(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
    lsd.train(&training)
        .expect("generated sources have listings");

    let held_out = &domain.sources[3];
    let outcome = lsd
        .match_source(&to_sources(held_out))
        .expect("generated sources are well-formed");

    let explanations = outcome.explain_all();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&explanations).expect("explanations serialize")
        );
    } else {
        println!(
            "# {} — source `{}` ({} listings, seed {})\n",
            id.name(),
            held_out.name,
            params.listings,
            params.seed
        );
        for explanation in &explanations {
            print!("{}", explanation.render());
        }
    }
    ExitCode::SUCCESS
}

/// `"Real Estate I"` → `"real-estate-1"`: lowercase, dash-separated, with
/// the paper's trailing roman numeral turned into a digit.
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if let Some(base) = trimmed.strip_suffix("-ii") {
        return format!("{base}-2");
    }
    if let Some(base) = trimmed.strip_suffix("-i") {
        return format!("{base}-1");
    }
    trimmed.to_string()
}
