//! `datagen-roundtrip` — emit every generated source in every foreign
//! serialization, read each back through its `lsd-core` reader, and check
//! the data survived. This is the CI gate for the emitter/reader pairing:
//!
//! * **XML** — DTD (canonical `<!ELEMENT ...>` syntax) and listing trees
//!   must round-trip exactly;
//! * **JSON** — listing trees must round-trip exactly;
//! * **CSV / SQL** — the per-tag leaf instance columns (what the learners
//!   consume) must round-trip exactly, and the listing count must match.
//!
//! Environment: `LSD_LISTINGS` (default 12) sets listings per source.
//! Exit code 0 when every check passes, 1 with one line per failure.

use lsd_core::{CsvReader, JsonReader, SourceReader, SqlReader, XmlReader};
use lsd_datagen::{emit, DomainId, GeneratedSource};
use lsd_xml::Element;
use std::process::ExitCode;

fn listings_per_source() -> usize {
    std::env::var("LSD_LISTINGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// One emit → read → compare cycle; returns the failures it found.
fn check_source(domain: DomainId, source: &GeneratedSource) -> Vec<String> {
    let mut failures = Vec::new();
    let origin = format!("{} / {}", domain.name(), source.name);
    let root = &source.listings[0].name;
    let fail = |failures: &mut Vec<String>, format: &str, detail: String| {
        failures.push(format!("{origin} [{format}]: {detail}"));
    };

    // XML: exact.
    let (dtd_text, listing_texts) = emit::emit_xml(source);
    match XmlReader::new(dtd_text, listing_texts).read() {
        Ok(contents) => {
            if contents.dtd.to_dtd_syntax() != source.dtd.to_dtd_syntax() {
                fail(&mut failures, "xml", "DTD changed across round-trip".into());
            }
            if contents.listings != source.listings {
                fail(&mut failures, "xml", "listings changed".into());
            }
        }
        Err(e) => fail(&mut failures, "xml", e.to_string()),
    }

    // JSON: exact listing trees.
    match JsonReader::new(emit::emit_json(source))
        .with_record_tag(root)
        .read()
    {
        Ok(contents) => {
            if contents.listings != source.listings {
                fail(&mut failures, "json", "listings changed".into());
            }
        }
        Err(e) => fail(&mut failures, "json", e.to_string()),
    }

    // CSV: leaf columns.
    match emit::emit_csv(source).map(|text| CsvReader::new(text).with_record_tag(root).read()) {
        Ok(Ok(contents)) => check_leaves(&mut failures, "csv", &origin, source, &contents.listings),
        Ok(Err(e)) => fail(&mut failures, "csv", e.to_string()),
        Err(e) => fail(&mut failures, "csv", e),
    }

    // SQL: leaf columns.
    match emit::emit_sql(source).map(|text| SqlReader::new(text).read()) {
        Ok(Ok(contents)) => check_leaves(&mut failures, "sql", &origin, source, &contents.listings),
        Ok(Err(e)) => fail(&mut failures, "sql", e.to_string()),
        Err(e) => fail(&mut failures, "sql", e),
    }

    failures
}

fn check_leaves(
    failures: &mut Vec<String>,
    format: &str,
    origin: &str,
    source: &GeneratedSource,
    round_tripped: &[Element],
) {
    if round_tripped.len() != source.listings.len() {
        failures.push(format!(
            "{origin} [{format}]: {} listings came back as {}",
            source.listings.len(),
            round_tripped.len()
        ));
    }
    let before = emit::leaf_columns(&source.listings);
    let after = emit::leaf_columns(round_tripped);
    if before == after {
        return;
    }
    for (tag, column) in &before {
        match after.get(tag) {
            None => failures.push(format!("{origin} [{format}]: leaf tag \"{tag}\" lost")),
            Some(got) if got != column => failures.push(format!(
                "{origin} [{format}]: column \"{tag}\" changed ({} values -> {})",
                column.len(),
                got.len()
            )),
            Some(_) => {}
        }
    }
    for tag in after.keys() {
        if !before.contains_key(tag) {
            failures.push(format!(
                "{origin} [{format}]: spurious leaf tag \"{tag}\" appeared"
            ));
        }
    }
}

fn main() -> ExitCode {
    let listings = listings_per_source();
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for domain in DomainId::ALL {
        let generated = domain.generate(listings, 42);
        for source in &generated.sources {
            failures.extend(check_source(domain, source));
            checked += 1;
        }
    }
    if failures.is_empty() {
        println!(
            "datagen-roundtrip: {checked} sources x 4 formats round-tripped \
             ({listings} listings per source)"
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAIL {failure}");
        }
        eprintln!("datagen-roundtrip: {} failures", failures.len());
        ExitCode::FAILURE
    }
}
