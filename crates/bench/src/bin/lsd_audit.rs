//! `lsd-audit` — static analysis for serving artifacts on disk.
//!
//! ```text
//! lsd-audit DIR ...          audit registry directories: every *.json
//!                            snapshot, every *.wal feedback log (cross-
//!                            checked against its companion snapshot), plus
//!                            the directory-level checks (duplicate slugs,
//!                            version skew, mediated-DTD drift, orphan WALs)
//! lsd-audit model.json ...   audit individual snapshots (caret rendering
//!                            into the JSON text)
//! lsd-audit model.wal ...    audit individual WALs; a .json beside the
//!                            .wal supplies the label-set / fold-point
//!                            cross-check context
//! lsd-audit --json ...       machine-readable output, same document shape
//!                            as `lsd-lint --json`
//! ```
//!
//! Exit codes match `lsd-lint`:
//!
//! * `0` — clean (warnings alone do not fail the run);
//! * `1` — an error-severity `LSD2xx` diagnostic was produced;
//! * `2` — I/O or usage errors: a path could not be read, no paths were
//!   given, or an unknown flag was passed.
//!
//! This is the deploy-time twin of `lsd-serve --strict-audit`: the server
//! refuses at load what this tool reports at `1`.

use lsd_analysis::{
    audit_registry, audit_snapshot, audit_snapshot_with_summary, audit_wal, render_all,
    with_origin, Diagnostic, WalAuditContext,
};
use serde::Value;
use std::path::Path;
use std::process::ExitCode;

/// Running totals plus the rendering sink. With `collected` present
/// (`--json`), diagnostics accumulate for one machine-readable document
/// instead of printing as they are found.
#[derive(Default)]
struct Tally {
    errors: usize,
    warnings: usize,
    collected: Option<Vec<Diagnostic>>,
}

impl Tally {
    fn report(&mut self, diagnostics: Vec<Diagnostic>, origin: &str, source: Option<&str>) {
        self.errors += diagnostics.iter().filter(|d| d.is_error()).count();
        self.warnings += diagnostics.iter().filter(|d| !d.is_error()).count();
        let diagnostics = with_origin(diagnostics, origin);
        match &mut self.collected {
            Some(sink) => sink.extend(diagnostics),
            None => print!("{}", render_all(&diagnostics, source)),
        }
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One diagnostic as a stable JSON object — the same shape `lsd-lint
/// --json` emits, so tooling can consume both.
fn diagnostic_json(d: &Diagnostic) -> Value {
    obj(vec![
        ("code", Value::Str(d.code.as_str().to_string())),
        ("severity", Value::Str(d.severity.to_string())),
        ("message", Value::Str(d.message.clone())),
        (
            "origin",
            d.origin
                .as_ref()
                .map_or(Value::Null, |o| Value::Str(o.clone())),
        ),
        (
            "span",
            d.span.map_or(Value::Null, |s| {
                obj(vec![
                    ("start", Value::Int(s.start as i64)),
                    ("end", Value::Int(s.end as i64)),
                ])
            }),
        ),
        (
            "notes",
            Value::Seq(d.notes.iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        (
            "help",
            d.help
                .as_ref()
                .map_or(Value::Null, |h| Value::Str(h.clone())),
        ),
    ])
}

/// Exit code for I/O and usage failures — the audit did not run to
/// completion, as opposed to running and finding problems (`1`).
const EXIT_USAGE: u8 = 2;

/// Audits one `.wal` file; a `.json` snapshot beside it supplies the
/// cross-check context (labels, fold point).
fn audit_wal_file(path: &Path, tally: &mut Tally) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let snapshot_path = path.with_extension("json");
    let ctx = match std::fs::read_to_string(&snapshot_path) {
        Ok(text) => {
            // Only the summary is wanted here; the snapshot's own
            // diagnostics are reported when IT is audited.
            let (_, summary) = audit_snapshot_with_summary(&text);
            Some(WalAuditContext {
                labels: summary.labels,
                feedback_applied: summary.feedback_applied,
            })
        }
        Err(_) => None,
    };
    tally.report(
        audit_wal(&bytes, ctx.as_ref()),
        &path.display().to_string(),
        None,
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag `{arg}`");
            eprintln!("usage: lsd-audit [--json] PATH ...  (registry dirs, *.json, *.wal)");
            return ExitCode::from(EXIT_USAGE);
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: lsd-audit [--json] PATH ...  (registry dirs, *.json, *.wal)");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut tally = Tally {
        collected: json.then(Vec::new),
        ..Tally::default()
    };

    for arg in &paths {
        let path = Path::new(arg);
        let outcome = if path.is_dir() {
            audit_registry(path)
                .map(|diags| tally.report(diags, arg, None))
                .map_err(|e| format!("cannot audit registry {arg}: {e}"))
        } else if path.extension().is_some_and(|e| e == "wal") {
            audit_wal_file(path, &mut tally)
        } else {
            std::fs::read_to_string(path)
                .map(|text| tally.report(audit_snapshot(&text), arg, Some(&text)))
                .map_err(|e| format!("cannot read {arg}: {e}"))
        };
        if let Err(message) = outcome {
            // The input could not even be read: an infrastructure failure,
            // not an audit finding.
            eprintln!("error: {message}");
            return ExitCode::from(EXIT_USAGE);
        }
    }

    if let Some(diagnostics) = &tally.collected {
        let doc = obj(vec![
            (
                "diagnostics",
                Value::Seq(diagnostics.iter().map(diagnostic_json).collect()),
            ),
            ("errors", Value::Int(tally.errors as i64)),
            ("warnings", Value::Int(tally.warnings as i64)),
        ]);
        match serde_json::to_string_pretty(&doc) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("error: cannot render JSON output: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else {
        println!(
            "lsd-audit: checked {} path{}: {} error(s), {} warning(s)",
            paths.len(),
            if paths.len() == 1 { "" } else { "s" },
            tally.errors,
            tally.warnings
        );
    }
    if tally.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
