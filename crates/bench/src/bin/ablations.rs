//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. meta-learner regression vs uniform weights;
//! 2. A\* vs beam search vs greedy in the constraint handler (accuracy and
//!    wall-clock);
//! 3. WHIRL neighbour combination (noisy-or vs max vs mean);
//! 4. Naive Bayes smoothing strength;
//! 5. XML-learner structure tokens (text-only vs +node vs +node+edge).
//!
//! Run with `cargo run --release -p lsd-bench --bin ablations`.
//! Env overrides: `LSD_TRIALS` (default 1 here), `LSD_LISTINGS` (default
//! 120), `LSD_SEED`.

use lsd_bench::{accuracy_of, all_splits, to_sources, ExperimentParams};
use lsd_core::learners::{
    BaseLearner, ContentMatcher, NaiveBayesLearner, NameMatcher, XmlLearner, XmlTokenKinds,
};
use lsd_core::{Lsd, LsdBuilder, LsdConfig, SearchAlgorithm, SearchConfig, TrainedSource};
use lsd_datagen::{DomainId, GeneratedDomain};
use lsd_learn::NaiveBayesConfig;
use lsd_text::{NeighborCombination, WhirlConfig};
use std::time::Instant;

/// Builds the paper's learner suite with per-component overrides.
struct Variant {
    label: &'static str,
    train_meta: bool,
    whirl: Option<NeighborCombination>,
    nb_smoothing: Option<f64>,
    xml_tokens: Option<XmlTokenKinds>,
    search: Option<SearchConfig>,
}

impl Variant {
    fn baseline(label: &'static str) -> Self {
        Variant {
            label,
            train_meta: true,
            whirl: None,
            nb_smoothing: None,
            xml_tokens: None,
            search: None,
        }
    }

    fn build(&self, domain: &GeneratedDomain, base: LsdConfig) -> Lsd {
        let mut config = base;
        config.train_meta = self.train_meta;
        if let Some(s) = self.search {
            config.search = s;
        }
        let builder = LsdBuilder::new(&domain.mediated).with_config(config);
        let n = builder.labels().len();
        let pairs: Vec<(&str, &str)> = domain
            .synonyms
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let content: Box<dyn BaseLearner> = match self.whirl {
            Some(combination) => Box::new(ContentMatcher::with_config(
                n,
                WhirlConfig {
                    combination,
                    ..WhirlConfig::default()
                },
            )),
            None => Box::new(ContentMatcher::new(n)),
        };
        let nb: Box<dyn BaseLearner> = match self.nb_smoothing {
            Some(smoothing) => Box::new(NaiveBayesLearner::with_config(
                n,
                NaiveBayesConfig { smoothing },
            )),
            None => Box::new(NaiveBayesLearner::new(n)),
        };
        let xml = XmlLearner::with_token_kinds(n, self.xml_tokens.unwrap_or_default());
        builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
            .add_learner(content)
            .add_learner(nb)
            .with_xml_learner(xml)
            .with_constraints(domain.constraints.clone())
            .build()
            .expect("ablation setups include learners")
    }
}

/// Mean accuracy (%) and mean per-source match time over trials × splits.
fn run(variant: &Variant, ids: &[DomainId], params: &ExperimentParams) -> (f64, f64) {
    let mut accs = Vec::new();
    let mut match_seconds = Vec::new();
    for &id in ids {
        for trial in 0..params.trials {
            let seed = params
                .seed
                .wrapping_add(trial as u64)
                .wrapping_mul(0x100_0000_01B3);
            let domain = id.generate(params.listings, seed);
            for (train, test) in all_splits() {
                let mut lsd = variant.build(&domain, params.lsd);
                let training: Vec<TrainedSource> = train
                    .iter()
                    .map(|&i| TrainedSource {
                        source: to_sources(&domain.sources[i]),
                        mapping: domain.sources[i].mapping.clone(),
                    })
                    .collect();
                lsd.train(&training)
                    .expect("training sources have listings");
                for &t in &test {
                    let started = Instant::now();
                    accs.push(100.0 * accuracy_of(&lsd, &domain.sources[t]));
                    match_seconds.push(started.elapsed().as_secs_f64());
                }
            }
        }
    }
    (
        accs.iter().sum::<f64>() / accs.len() as f64,
        match_seconds.iter().sum::<f64>() / match_seconds.len() as f64,
    )
}

fn main() {
    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_TRIALS").is_err() {
        params.trials = 1;
    }
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 120;
    }
    // One small and one large domain keep the suite representative but fast.
    let ids = [DomainId::RealEstate1, DomainId::RealEstate2];
    println!(
        "Ablation studies ({} trials, {} listings, domains: Real Estate I & II)\n",
        params.trials, params.listings
    );
    println!("{:<44} {:>8} {:>12}", "variant", "acc(%)", "match(s)");
    println!("{}", "-".repeat(68));

    let section = |title: &str, variants: Vec<Variant>| {
        println!("[{title}]");
        for v in variants {
            let (acc, secs) = run(&v, &ids, &params);
            println!("{:<44} {:>8.1} {:>12.3}", v.label, acc, secs);
        }
    };

    section(
        "meta-learner",
        vec![
            Variant::baseline("stacking regression (paper)"),
            Variant {
                train_meta: false,
                ..Variant::baseline("uniform weights")
            },
        ],
    );
    section(
        "constraint-handler search",
        vec![
            Variant {
                search: Some(SearchConfig {
                    algorithm: SearchAlgorithm::AStar {
                        max_expansions: 20_000,
                    },
                    heuristic_weight: 1.0,
                }),
                ..Variant::baseline("A* admissible (e=1.0)")
            },
            Variant::baseline("A* weighted (e=1.2, default)"),
            Variant {
                search: Some(SearchConfig {
                    algorithm: SearchAlgorithm::Beam { width: 10 },
                    heuristic_weight: 1.0,
                }),
                ..Variant::baseline("beam width 10")
            },
            Variant {
                search: Some(SearchConfig {
                    algorithm: SearchAlgorithm::Greedy,
                    heuristic_weight: 1.0,
                }),
                ..Variant::baseline("greedy")
            },
        ],
    );
    section(
        "WHIRL neighbour combination",
        vec![
            Variant {
                whirl: Some(NeighborCombination::NoisyOr),
                ..Variant::baseline("noisy-or (paper)")
            },
            Variant {
                whirl: Some(NeighborCombination::Max),
                ..Variant::baseline("max")
            },
            Variant {
                whirl: Some(NeighborCombination::Mean),
                ..Variant::baseline("mean")
            },
        ],
    );
    section(
        "Naive Bayes smoothing",
        vec![
            Variant {
                nb_smoothing: Some(0.1),
                ..Variant::baseline("laplace 0.1")
            },
            Variant {
                nb_smoothing: Some(1.0),
                ..Variant::baseline("laplace 1.0 (default)")
            },
            Variant {
                nb_smoothing: Some(10.0),
                ..Variant::baseline("laplace 10")
            },
        ],
    );
    section(
        "XML-learner structure tokens",
        vec![
            Variant {
                xml_tokens: Some(XmlTokenKinds {
                    text: true,
                    nodes: false,
                    edges: false,
                }),
                ..Variant::baseline("text only (flat NB)")
            },
            Variant {
                xml_tokens: Some(XmlTokenKinds {
                    text: true,
                    nodes: true,
                    edges: false,
                }),
                ..Variant::baseline("text + node tokens")
            },
            Variant {
                xml_tokens: Some(XmlTokenKinds {
                    text: true,
                    nodes: true,
                    edges: true,
                }),
                ..Variant::baseline("text + node + edge (paper)")
            },
        ],
    );
}
