//! `lsd-serve` — boot the matching server on a datagen-trained snapshot.
//!
//! ```text
//! lsd-serve                         serve real-estate-1 on 127.0.0.1:8080
//! lsd-serve --domain NAME           pick a built-in datagen domain
//! lsd-serve --addr HOST:PORT        bind address (port 0 picks a free port)
//! lsd-serve --models-dir DIR        snapshot directory (default serve-models)
//! lsd-serve --feedback-dir DIR      feedback WAL directory (default: models dir)
//! lsd-serve --no-feedback           disable POST /v1/feedback + retraining
//! lsd-serve --strict-audit          reject snapshots whose artifact audit
//!                                   finds LSD2xx errors (the default)
//! lsd-serve --no-strict-audit       load despite audit errors; findings
//!                                   are still counted in /metrics
//! lsd-serve --access-log PATH       append one JSONL line per request
//! lsd-serve --slow-ms N             flight-recorder sampling threshold in
//!                                   milliseconds (0 samples everything;
//!                                   default 500, env LSD_SLOW_MS)
//! ```
//!
//! Trains the FULL configuration on the domain's first three sources,
//! writes the snapshot to `<models-dir>/<domain>.json`, opens a
//! [`lsd_serve::ModelRegistry`] over the directory (so previously saved
//! snapshots are served too, hot-swappable via `PUT /v1/models/{name}`),
//! and runs the server until the process is killed. Scale the training data
//! with `LSD_LISTINGS` / `LSD_SEED` like the other binaries.
//!
//! Try it:
//!
//! ```text
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/v1/models
//! curl -s localhost:8080/metrics
//! curl -si localhost:8080/healthz | grep traceparent
//! curl -s localhost:8080/debug/traces
//! ```

use lsd_bench::{domain_slug, resolve_domain, train_full_model, ExperimentParams};
use lsd_datagen::DomainId;
use lsd_serve::{AuditMode, ModelRegistry, ServeConfig, Server};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut domain_name = "real-estate-1".to_string();
    let mut addr = "127.0.0.1:8080".to_string();
    let mut models_dir = "serve-models".to_string();
    let mut feedback_dir: Option<String> = None;
    let mut feedback = true;
    // The server defaults to strict: a snapshot with error-severity audit
    // findings is refused at load. `--no-strict-audit` opts out.
    let mut audit = AuditMode::Strict;
    let mut access_log: Option<String> = None;
    // CLI beats env beats the ServeConfig default (500 ms).
    let mut slow_ms: Option<u64> = match std::env::var("LSD_SLOW_MS") {
        Ok(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("error: LSD_SLOW_MS={v:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| match args.next() {
            Some(v) => Ok(v),
            None => {
                eprintln!("error: {flag} needs a value");
                Err(())
            }
        };
        match arg.as_str() {
            "--domain" => match take("--domain") {
                Ok(v) => domain_name = v,
                Err(()) => return ExitCode::FAILURE,
            },
            "--addr" => match take("--addr") {
                Ok(v) => addr = v,
                Err(()) => return ExitCode::FAILURE,
            },
            "--models-dir" => match take("--models-dir") {
                Ok(v) => models_dir = v,
                Err(()) => return ExitCode::FAILURE,
            },
            "--feedback-dir" => match take("--feedback-dir") {
                Ok(v) => feedback_dir = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--no-feedback" => feedback = false,
            "--strict-audit" => audit = AuditMode::Strict,
            "--no-strict-audit" => audit = AuditMode::Warn,
            "--access-log" => match take("--access-log") {
                Ok(v) => access_log = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--slow-ms" => match take("--slow-ms").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => slow_ms = Some(n),
                Ok(Err(e)) => {
                    eprintln!("error: --slow-ms: {e}");
                    return ExitCode::FAILURE;
                }
                Err(()) => return ExitCode::FAILURE,
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: lsd-serve [--domain NAME] [--addr HOST:PORT] [--models-dir DIR] \
                     [--feedback-dir DIR] [--no-feedback] [--strict-audit | --no-strict-audit] \
                     [--access-log PATH] [--slow-ms N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(id) = resolve_domain(&domain_name) else {
        let names: Vec<String> = DomainId::ALL
            .iter()
            .map(|d| domain_slug(d.name()))
            .collect();
        eprintln!(
            "error: unknown domain `{domain_name}` (available: {})",
            names.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let slug = domain_slug(id.name());

    let mut params = ExperimentParams::from_env();
    if std::env::var("LSD_LISTINGS").is_err() {
        params.listings = 30;
    }
    eprintln!(
        "training {} (listings {}, seed {})...",
        id.name(),
        params.listings,
        params.seed
    );
    let (_domain, lsd) = train_full_model(id, &params);

    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("error: cannot create {models_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let snapshot = std::path::Path::new(&models_dir).join(format!("{slug}.json"));
    if let Err(e) = lsd.save_json(&snapshot) {
        eprintln!("error: cannot write {}: {e}", snapshot.display());
        return ExitCode::FAILURE;
    }
    eprintln!("snapshot written to {}", snapshot.display());

    // Server::run() enables metrics for the serving lifetime, but the
    // registry open below already runs the artifact audit — switch
    // recording on first so boot-time findings reach /metrics too.
    lsd_obs::set_enabled(true);
    let registry = match ModelRegistry::open_with(&models_dir, audit) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open model registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServeConfig {
        addr,
        feedback_dir: feedback
            .then(|| feedback_dir.unwrap_or_else(|| models_dir.clone()))
            .map(std::path::PathBuf::from),
        access_log: access_log.map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    if let Some(ms) = slow_ms {
        config.slow_threshold = std::time::Duration::from_millis(ms);
    }
    let server = match Server::bind(config, registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The load driver (and humans with curl) key off this line.
    println!("listening on {}", server.local_addr());
    server.run();
    ExitCode::SUCCESS
}
