//! Regenerates **Figure 9a**: lesion studies — the complete system versus
//! versions with one component removed (name matcher, Naive Bayes, content
//! matcher, constraint handler).
//!
//! Paper reference: "each component contributes to the overall performance,
//! and there appears to be no clearly dominant component."
//!
//! Env overrides: `LSD_TRIALS`, `LSD_LISTINGS`, `LSD_SEED`.

use lsd_bench::{run_matrix, Config, ExperimentParams};
use lsd_datagen::DomainId;

fn main() {
    let params = ExperimentParams::from_env();
    println!(
        "Figure 9a — lesion studies, average matching accuracy (%), {} trials x 10 splits, {} listings\n",
        params.trials, params.listings
    );
    let configs = [
        Config::Lesion("name-matcher"),
        Config::Lesion("naive-bayes"),
        Config::Lesion("content-matcher"),
        Config::NoHandler,
        Config::Full,
    ];
    println!(
        "{:<16} | {:>9} {:>9} {:>12} {:>12} {:>10}",
        "Domain", "-name", "-NB", "-content", "-handler", "complete"
    );
    println!("{}", "-".repeat(78));
    for id in DomainId::ALL {
        let r = run_matrix(id, &configs, &params);
        println!(
            "{:<16} | {:>9.1} {:>9.1} {:>12.1} {:>12.1} {:>10.1}",
            id.name(),
            r[0].mean,
            r[1].mean,
            r[2].mean,
            r[3].mean,
            r[4].mean
        );
    }
    println!("\nPaper shape check: every lesion bar at or below the complete system,");
    println!("with no single dominant component.");
}
