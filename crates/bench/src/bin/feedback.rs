//! Regenerates the **Section 6.3** user-feedback experiment: how many
//! correct labels must the user provide before LSD reaches a perfect
//! matching on a test source?
//!
//! Methodology: for Time Schedule and Real Estate II, three runs; in each,
//! randomly choose three sources for training and one for testing; then run
//! the interactive loop (tags ordered by decreasing structure score, the
//! first wrong label corrected each round) with a simulated oracle.
//!
//! Paper reference: 3 corrections on Time Schedule (avg 17 tags) and 6.3 on
//! Real Estate II (avg 38.6 tags).
//!
//! Env overrides: `LSD_LISTINGS`, `LSD_SEED`.

use lsd_bench::{build_lsd, to_sources, ExperimentParams, Setup};
use lsd_core::feedback::simulate_feedback_session;
use lsd_core::TrainedSource;
use lsd_datagen::DomainId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = ExperimentParams::from_env();
    println!(
        "Section 6.3 — user feedback to perfect matching ({} listings/source)\n",
        params.listings
    );
    println!(
        "{:<16} | {:>5} {:>10} {:>12} {:>10}",
        "Domain", "run", "tags", "corrections", "converged"
    );
    println!("{}", "-".repeat(62));
    for id in [DomainId::TimeSchedule, DomainId::RealEstate2] {
        let mut corrections = Vec::new();
        let mut tag_counts = Vec::new();
        for run in 0..3u64 {
            let seed = params.seed.wrapping_add(run).wrapping_mul(0x9E37_79B9);
            let domain = id.generate(params.listings, seed);
            let mut order: Vec<usize> = (0..5).collect();
            order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
            let (test, train) = (order[0], &order[1..4]);

            let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
            let training: Vec<TrainedSource> = train
                .iter()
                .map(|&i| TrainedSource {
                    source: to_sources(&domain.sources[i]),
                    mapping: domain.sources[i].mapping.clone(),
                })
                .collect();
            lsd.train(&training)
                .expect("training sources have listings");

            let gs = &domain.sources[test];
            let outcome = simulate_feedback_session(&lsd, &to_sources(gs), &gs.mapping)
                .expect("bench sources are well-formed");
            println!(
                "{:<16} | {:>5} {:>10} {:>12} {:>10}",
                id.name(),
                run + 1,
                gs.dtd.len(),
                outcome.corrections.len(),
                outcome.converged
            );
            corrections.push(outcome.corrections.len() as f64);
            tag_counts.push(gs.dtd.len() as f64);
        }
        let avg_corr = corrections.iter().sum::<f64>() / corrections.len() as f64;
        let avg_tags = tag_counts.iter().sum::<f64>() / tag_counts.len() as f64;
        println!(
            "{:<16} | {:>5} {:>10.1} {:>12.1}   (average)",
            id.name(),
            "avg",
            avg_tags,
            avg_corr
        );
        println!("{}", "-".repeat(62));
    }
    println!("\nPaper reference: 3.0 corrections over ~17 tags (Time Schedule),");
    println!("6.3 corrections over ~38.6 tags (Real Estate II).");
}
