//! `lsd-infer` — learn a deterministic DTD from raw DTD-less XML
//! instances and print it.
//!
//! ```text
//! lsd-infer DIR             infer one DTD from every *.xml file in DIR
//!                           (each file is one instance) and print it
//! lsd-infer                 datagen mode: for each built-in domain and
//!                           source, discard the generated DTD and infer a
//!                           schema from the bare listings
//! lsd-infer --bench-out P   also write the BENCH_infer.json perf record
//!                           (schema version 1) to path P
//! ```
//!
//! Every learned DTD is verified the way CI gates it: the Glushkov lint
//! must report zero errors and the model must accept 100% of the training
//! instances. Exit codes:
//!
//! * `0` — every corpus inferred, linted clean, and accepted its
//!   instances;
//! * `1` — a learned DTD produced a lint error or rejected a training
//!   instance (an inference defect, not an input problem);
//! * `2` — I/O or usage errors: unreadable input, unparseable instance,
//!   unknown flag.
//!
//! Environment: `LSD_LISTINGS` (default 12) sets listings per generated
//! source in datagen mode.

use lsd_bench::{bench_infer_json, validate_bench_infer, InferBenchCorpus};
use lsd_datagen::DomainId;
use lsd_infer::Inference;
use lsd_xml::Element;
use std::process::ExitCode;
use std::time::Instant;

/// Exit code for I/O and usage failures — inference did not run, as
/// opposed to running and producing a defective model (`1`).
const EXIT_USAGE: u8 = 2;

fn listings_per_source() -> usize {
    std::env::var("LSD_LISTINGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// Infers a schema for one corpus, prints it, and verifies it the way CI
/// gates inferred schemas. Returns the perf record, plus any defects.
fn run_corpus(
    name: &str,
    instances: &[Element],
    report: &mut Vec<InferBenchCorpus>,
) -> Vec<String> {
    let t0 = Instant::now();
    let Inference { dtd, stats } = match lsd_infer::infer_dtd(instances) {
        Ok(inference) => inference,
        Err(e) => return vec![format!("{name}: inference failed: {e}")],
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;

    println!("=== {name} ({} instances) ===", instances.len());
    println!("{}", dtd.to_dtd_syntax());

    let mut defects = Vec::new();
    // Lint gate: render, reparse (so diagnostics carry spans), analyze.
    let text = dtd.to_dtd_syntax();
    let diagnostics = match lsd_xml::parse_dtd(&text) {
        Ok(reparsed) => lsd_analysis::analyze_dtd(&reparsed),
        Err(e) => {
            defects.push(format!("{name}: learned DTD does not reparse: {e}"));
            lsd_analysis::analyze_dtd(&dtd)
        }
    };
    for d in diagnostics.iter().filter(|d| d.is_error()) {
        defects.push(format!("{name}: lint {}: {}", d.code.as_str(), d.message));
    }
    // Acceptance gate: the model must accept every training instance.
    for (i, instance) in instances.iter().enumerate() {
        if let Err(e) = dtd.validate(instance) {
            defects.push(format!("{name}: instance {i} rejected: {e}"));
        }
    }

    report.push(InferBenchCorpus {
        corpus: name.to_string(),
        listings: instances.len(),
        instances: stats.element_support.values().sum(),
        wall_ns,
        elements: stats.elements,
        edges: stats.edges,
        generalizations: stats.generalizations,
        fallbacks: stats.fallbacks,
    });
    defects
}

/// Directory mode: every `*.xml` file is one instance, in filename order.
fn load_directory(dir: &str) -> Result<Vec<Element>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read directory {dir}: {e}"))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.xml files in {dir}"));
    }
    let mut instances = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let instance = lsd_xml::parse_fragment(&text)
            .map_err(|e| format!("{} is not well-formed XML: {e}", path.display()))?;
        instances.push(instance);
    }
    Ok(instances)
}

fn main() -> ExitCode {
    let mut bench_out: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--bench-out" {
            match args.next() {
                Some(path) => bench_out = Some(path),
                None => {
                    eprintln!("error: --bench-out needs a path");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag `{arg}`");
            eprintln!("usage: lsd-infer [--bench-out PATH] [DIR]");
            return ExitCode::from(EXIT_USAGE);
        } else if dir.is_some() {
            eprintln!("error: more than one directory given");
            return ExitCode::from(EXIT_USAGE);
        } else {
            dir = Some(arg);
        }
    }

    let listings = listings_per_source();
    let seed = 42u64;
    let mut report = Vec::new();
    let mut defects = Vec::new();

    if let Some(dir) = &dir {
        let instances = match load_directory(dir) {
            Ok(instances) => instances,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        defects.extend(run_corpus(dir, &instances, &mut report));
    } else {
        // Datagen mode: the generated DTD is *discarded* — inference sees
        // only the bare listing trees, exactly like a DTD-less upload.
        for domain in DomainId::ALL {
            let generated = domain.generate(listings, seed);
            let slug = lsd_bench::domain_slug(generated.name);
            for (s, source) in generated.sources.iter().enumerate() {
                let name = format!("{slug}/source-{s}");
                defects.extend(run_corpus(&name, &source.listings, &mut report));
            }
        }
    }

    if let Some(path) = &bench_out {
        let json = bench_infer_json(listings, seed, &report);
        if let Err(e) = validate_bench_infer(&json) {
            eprintln!("error: generated BENCH_infer.json is not schema-valid: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
        println!("wrote {path}");
    }

    let corpora = report.len();
    if defects.is_empty() {
        println!(
            "lsd-infer: {corpora} corpora inferred, all lint-clean, \
             all instances accepted"
        );
        ExitCode::SUCCESS
    } else {
        for defect in &defects {
            eprintln!("FAIL {defect}");
        }
        eprintln!(
            "lsd-infer: {} defects across {corpora} corpora",
            defects.len()
        );
        ExitCode::FAILURE
    }
}
