//! Shared experiment machinery: system construction, splits, accuracy.

use lsd_core::learners::{
    county_name_recognizer, ContentMatcher, FormatLearner, NaiveBayesLearner, NameMatcher,
};
use lsd_core::{Lsd, LsdBuilder, LsdConfig, MatchOutcome, Source, TrainedSource};
use lsd_datagen::{DomainId, GeneratedDomain, GeneratedSource};
use lsd_learn::{metrics, ExecPolicy};

/// Which base learners a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LearnerSet {
    /// The WHIRL name matcher.
    pub name_matcher: bool,
    /// The WHIRL content matcher.
    pub content_matcher: bool,
    /// The Naive Bayes learner.
    pub naive_bayes: bool,
    /// The county-name recognizer (only effective in domains with a
    /// COUNTY label).
    pub county_recognizer: bool,
    /// The Section-7 format learner (extension; off in paper configs).
    pub format_learner: bool,
}

impl LearnerSet {
    /// The paper's base-learner suite (Section 3.3).
    pub const PAPER: LearnerSet = LearnerSet {
        name_matcher: true,
        content_matcher: true,
        naive_bayes: true,
        county_recognizer: true,
        format_learner: false,
    };

    /// Exactly one learner enabled.
    pub fn only(name: &str) -> LearnerSet {
        let mut set = LearnerSet {
            name_matcher: false,
            content_matcher: false,
            naive_bayes: false,
            county_recognizer: false,
            format_learner: false,
        };
        match name {
            "name-matcher" => set.name_matcher = true,
            "content-matcher" => set.content_matcher = true,
            "naive-bayes" => set.naive_bayes = true,
            "county-recognizer" => set.county_recognizer = true,
            "format-learner" => set.format_learner = true,
            other => panic!("unknown learner {other}"),
        }
        set
    }

    /// The paper suite minus one learner (Figure 9a lesions).
    pub fn without(name: &str) -> LearnerSet {
        let mut set = LearnerSet::PAPER;
        match name {
            "name-matcher" => set.name_matcher = false,
            "content-matcher" => set.content_matcher = false,
            "naive-bayes" => set.naive_bayes = false,
            "county-recognizer" => set.county_recognizer = false,
            other => panic!("unknown learner {other}"),
        }
        set
    }
}

/// Which domain constraints the constraint handler gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintMode {
    /// No constraints — the handler degenerates to per-tag argmax.
    None,
    /// Only constraints verifiable from the schema (Figure 9b
    /// "schema information only").
    SchemaOnly,
    /// Only constraints that need source data (Figure 9b "data instances
    /// only").
    DataOnly,
    /// Everything.
    All,
}

/// A full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct Setup {
    /// Base learners.
    pub learners: LearnerSet,
    /// Include the XML learner (Section 5)?
    pub xml_learner: bool,
    /// Constraint subset.
    pub constraints: ConstraintMode,
    /// Train the stacking meta-learner? (false = uniform weights, used
    /// for single-learner baselines).
    pub train_meta: bool,
}

impl Setup {
    /// The complete LSD system (Figure 8a, rightmost bar).
    pub const FULL: Setup = Setup {
        learners: LearnerSet::PAPER,
        xml_learner: true,
        constraints: ConstraintMode::All,
        train_meta: true,
    };

    /// Base learners + meta-learner, no constraint handler, no XML learner.
    pub const META: Setup = Setup {
        learners: LearnerSet::PAPER,
        xml_learner: false,
        constraints: ConstraintMode::None,
        train_meta: true,
    };

    /// Base learners + meta-learner + constraint handler.
    pub const META_CONSTRAINTS: Setup = Setup {
        learners: LearnerSet::PAPER,
        xml_learner: false,
        constraints: ConstraintMode::All,
        train_meta: true,
    };

    /// A single base learner on its own.
    pub fn single(name: &str) -> Setup {
        Setup {
            learners: LearnerSet::only(name),
            xml_learner: false,
            constraints: ConstraintMode::None,
            train_meta: false,
        }
    }
}

/// Experiment-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Listings sampled per source (paper headline: 300).
    pub listings: usize,
    /// Independent trials, each with freshly generated data (paper: 3).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pipeline tunables.
    pub lsd: LsdConfig,
    /// How test sources are fanned out by the batch-matching engine.
    pub exec: ExecPolicy,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            listings: 300,
            trials: 3,
            seed: 0,
            lsd: LsdConfig::default(),
            exec: ExecPolicy::default(),
        }
    }
}

impl ExperimentParams {
    /// Reads overrides from the environment: `LSD_TRIALS`, `LSD_LISTINGS`,
    /// `LSD_SEED`, `LSD_THREADS` (0 = one worker per CPU) — so the harness
    /// binaries can be scaled down for smoke runs without code changes.
    pub fn from_env() -> Self {
        let mut p = ExperimentParams::default();
        if let Ok(v) = std::env::var("LSD_TRIALS") {
            p.trials = v.parse().expect("LSD_TRIALS must be an integer");
        }
        if let Ok(v) = std::env::var("LSD_LISTINGS") {
            p.listings = v.parse().expect("LSD_LISTINGS must be an integer");
        }
        if let Ok(v) = std::env::var("LSD_SEED") {
            p.seed = v.parse().expect("LSD_SEED must be an integer");
        }
        if let Ok(v) = std::env::var("LSD_THREADS") {
            p.exec.threads = v.parse().expect("LSD_THREADS must be an integer");
        }
        p
    }
}

/// Converts a generated source into the core crate's source type.
pub fn to_sources(gs: &GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

/// Builds an LSD system for a configuration over a generated domain.
pub fn build_lsd(domain: &GeneratedDomain, setup: Setup, lsd_config: LsdConfig) -> Lsd {
    let mut config = lsd_config;
    config.train_meta = setup.train_meta;
    let mut builder = LsdBuilder::new(&domain.mediated).with_config(config);
    let n = builder.labels().len();

    if setup.learners.name_matcher {
        let pairs: Vec<(&str, &str)> = domain
            .synonyms
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        builder = builder.add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)));
    }
    if setup.learners.content_matcher {
        builder = builder.add_learner(Box::new(ContentMatcher::new(n)));
    }
    if setup.learners.naive_bayes {
        builder = builder.add_learner(Box::new(NaiveBayesLearner::new(n)));
    }
    if setup.learners.county_recognizer {
        if let Some(county) = builder.labels().get("COUNTY") {
            builder = builder.add_learner(Box::new(county_name_recognizer(n, county)));
        }
    }
    if setup.learners.format_learner {
        builder = builder.add_learner(Box::new(FormatLearner::new(n)));
    }
    if setup.xml_learner {
        builder = builder.with_xml_learner(None);
    }

    let constraints = match setup.constraints {
        ConstraintMode::None => Vec::new(),
        ConstraintMode::SchemaOnly => domain
            .constraints
            .iter()
            .filter(|c| !c.predicate.uses_data())
            .cloned()
            .collect(),
        ConstraintMode::DataOnly => domain
            .constraints
            .iter()
            .filter(|c| c.predicate.uses_data())
            .cloned()
            .collect(),
        ConstraintMode::All => domain.constraints.clone(),
    };
    builder
        .with_constraints(constraints)
        .build()
        .expect("bench setups include learners")
}

/// Matching accuracy for one source (Section 6): the fraction of
/// *matchable* tags (those with a ground-truth mapping) that LSD labelled
/// correctly.
pub fn accuracy_of(lsd: &Lsd, gs: &GeneratedSource) -> f64 {
    let outcome = lsd
        .match_source(&to_sources(gs))
        .expect("bench sources are well-formed");
    accuracy_of_outcome(&outcome, gs)
}

/// [`accuracy_of`] over an already-computed outcome (e.g. one slot of a
/// [`Lsd::match_batch`] result).
pub fn accuracy_of_outcome(outcome: &MatchOutcome, gs: &GeneratedSource) -> f64 {
    let pairs: Vec<usize> = gs
        .mapping
        .iter()
        .filter_map(|(tag, label)| {
            outcome
                .label_of(tag)
                .map(|p| usize::from(p == label.as_str()))
        })
        .collect();
    let truth_ones = vec![1usize; pairs.len()];
    metrics::matching_accuracy(&pairs, &truth_ones).unwrap_or(0.0)
}

/// One split's observability record for the `metrics.json` exporter.
#[derive(Debug, serde::Serialize)]
pub struct SplitMetrics {
    /// Domain name.
    pub domain: String,
    /// Training source indices.
    pub train: Vec<usize>,
    /// Test source indices.
    pub test: Vec<usize>,
    /// Matching accuracy over the split's test sources (percent).
    pub accuracy: f64,
    /// Everything the training run recorded.
    pub train_report: lsd_core::TrainReport,
    /// Everything the batch match recorded: per-stage span timings, A\*
    /// counters, constraint evaluations, per-learner predict wall time.
    pub match_report: lsd_core::MatchReport,
}

/// Runs the FULL configuration over every C(5,3) = 10 split of `id`'s
/// domain with observability on: one trial, train + batch-match per split,
/// each wrapped in an `lsd_obs` collection. This is the data source for the
/// per-run `metrics.json` written next to `experiment_results.json`.
pub fn collect_split_metrics(id: DomainId, params: &ExperimentParams) -> Vec<SplitMetrics> {
    let domain = id.generate(params.listings, params.seed);
    let mut records = Vec::new();
    for (train, test) in all_splits() {
        let training: Vec<TrainedSource> = train
            .iter()
            .map(|&i| TrainedSource {
                source: to_sources(&domain.sources[i]),
                mapping: domain.sources[i].mapping.clone(),
            })
            .collect();
        let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
        let train_report = lsd
            .train_with_report(&training)
            .expect("bench training sources have listings");
        let batch: Vec<Source> = test
            .iter()
            .map(|&t| to_sources(&domain.sources[t]))
            .collect();
        let (outcomes, match_report) = lsd
            .match_batch_with_report(&batch, &params.exec)
            .expect("bench sources are well-formed");
        let accuracy = 100.0
            * test
                .iter()
                .zip(&outcomes)
                .map(|(&t, o)| accuracy_of_outcome(o, &domain.sources[t]))
                .sum::<f64>()
            / test.len() as f64;
        records.push(SplitMetrics {
            domain: id.name().to_string(),
            train,
            test,
            accuracy,
            train_report,
            match_report,
        });
    }
    records
}

/// All C(5,3) = 10 train/test splits over five sources, as
/// `(train_indices, test_indices)` pairs.
pub fn all_splits() -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut splits = Vec::new();
    for a in 0..5 {
        for b in a + 1..5 {
            for c in b + 1..5 {
                let train = vec![a, b, c];
                let test: Vec<usize> = (0..5).filter(|i| !train.contains(i)).collect();
                splits.push((train, test));
            }
        }
    }
    splits
}

/// Per-domain accuracy summary for one configuration.
#[derive(Debug, Clone)]
pub struct DomainAccuracy {
    /// Mean matching accuracy over all trials × splits × test sources, in
    /// percent.
    pub mean: f64,
    /// Sample standard deviation over the same population, in percent.
    pub std_dev: f64,
    /// Number of (trial, split, test source) measurements.
    pub samples: usize,
}

impl DomainAccuracy {
    fn from_samples(samples: &[f64]) -> Self {
        DomainAccuracy {
            mean: metrics::mean(samples).unwrap_or(0.0),
            std_dev: metrics::std_dev(samples),
            samples: samples.len(),
        }
    }
}

/// A named system configuration for the experiment matrix. Configurations
/// that share a trained system (differing only in what the constraint
/// handler knows) are trained once per split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// One base learner by itself (no meta-learner, no constraints).
    Single(&'static str),
    /// All base learners + meta-learner (no constraints, no XML learner).
    Meta,
    /// Base learners + meta-learner + constraint handler.
    MetaConstraints,
    /// The complete system: + XML learner (Figure 8a rightmost bar).
    Full,
    /// Complete system with the constraint handler's knowledge removed
    /// (Figure 9a "LSD without Constraint Handler").
    NoHandler,
    /// Complete system minus one base learner (Figure 9a lesions).
    Lesion(&'static str),
    /// Name matcher + schema-related constraints only (Figure 9b).
    SchemaOnly,
    /// Content-based learners + XML learner + data-related constraints
    /// only (Figure 9b).
    DataOnly,
}

impl Config {
    /// Human-readable label for tables.
    pub fn label(self) -> String {
        match self {
            Config::Single(l) => format!("single:{l}"),
            Config::Meta => "base+meta".into(),
            Config::MetaConstraints => "base+meta+constraints".into(),
            Config::Full => "complete LSD".into(),
            Config::NoHandler => "without constraint handler".into(),
            Config::Lesion(l) => format!("without {l}"),
            Config::SchemaOnly => "schema info only".into(),
            Config::DataOnly => "data instances only".into(),
        }
    }

    /// The training identity (what must be trained) and the constraint
    /// subset applied at match time.
    fn plan(self) -> (TrainKey, ConstraintMode) {
        match self {
            Config::Single(l) => (
                TrainKey {
                    learners: LearnerSet::only(l),
                    xml: false,
                    meta: false,
                },
                ConstraintMode::None,
            ),
            Config::Meta => (
                TrainKey {
                    learners: LearnerSet::PAPER,
                    xml: false,
                    meta: true,
                },
                ConstraintMode::None,
            ),
            Config::MetaConstraints => (
                TrainKey {
                    learners: LearnerSet::PAPER,
                    xml: false,
                    meta: true,
                },
                ConstraintMode::All,
            ),
            Config::Full => (
                TrainKey {
                    learners: LearnerSet::PAPER,
                    xml: true,
                    meta: true,
                },
                ConstraintMode::All,
            ),
            Config::NoHandler => (
                TrainKey {
                    learners: LearnerSet::PAPER,
                    xml: true,
                    meta: true,
                },
                ConstraintMode::None,
            ),
            Config::Lesion(l) => (
                TrainKey {
                    learners: LearnerSet::without(l),
                    xml: true,
                    meta: true,
                },
                ConstraintMode::All,
            ),
            Config::SchemaOnly => (
                TrainKey {
                    learners: LearnerSet {
                        name_matcher: true,
                        content_matcher: false,
                        naive_bayes: false,
                        county_recognizer: false,
                        format_learner: false,
                    },
                    xml: false,
                    meta: true,
                },
                ConstraintMode::SchemaOnly,
            ),
            Config::DataOnly => (
                TrainKey {
                    learners: LearnerSet {
                        name_matcher: false,
                        content_matcher: true,
                        naive_bayes: true,
                        county_recognizer: true,
                        format_learner: false,
                    },
                    xml: true,
                    meta: true,
                },
                ConstraintMode::DataOnly,
            ),
        }
    }
}

/// What uniquely identifies a trained system within one split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrainKey {
    learners: LearnerSet,
    xml: bool,
    meta: bool,
}

/// Runs a whole configuration matrix for one domain, sharing trained
/// systems between configurations within each (trial, split). Returns one
/// [`DomainAccuracy`] per input configuration, in order.
pub fn run_matrix(
    domain_id: lsd_datagen::DomainId,
    configs: &[Config],
    params: &ExperimentParams,
) -> Vec<DomainAccuracy> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for trial in 0..params.trials {
        let seed = params
            .seed
            .wrapping_add(trial as u64)
            .wrapping_mul(0x0100_0000_01B3);
        let domain = domain_id.generate(params.listings, seed);
        for (train, test) in all_splits() {
            let training: Vec<TrainedSource> = train
                .iter()
                .map(|&i| TrainedSource {
                    source: to_sources(&domain.sources[i]),
                    mapping: domain.sources[i].mapping.clone(),
                })
                .collect();
            let mut cache: std::collections::HashMap<TrainKey, Lsd> =
                std::collections::HashMap::new();
            for (ci, config) in configs.iter().enumerate() {
                let (key, mode) = config.plan();
                cache.entry(key).or_insert_with(|| {
                    let setup = Setup {
                        learners: key.learners,
                        xml_learner: key.xml,
                        constraints: ConstraintMode::None, // set per eval below
                        train_meta: key.meta,
                    };
                    let mut lsd = build_lsd(&domain, setup, params.lsd);
                    lsd.train(&training)
                        .expect("bench training sources have listings");
                    lsd
                });
                let lsd = cache.get_mut(&key).expect("just inserted");
                lsd.set_constraints(constraints_for(&domain, mode))
                    .expect("generated constraints name mediated labels");
                // Fan the split's test sources over the batch engine.
                let batch: Vec<Source> = test
                    .iter()
                    .map(|&t| to_sources(&domain.sources[t]))
                    .collect();
                let outcomes = lsd
                    .match_batch(&batch, &params.exec)
                    .expect("bench sources are well-formed");
                for (&t, outcome) in test.iter().zip(&outcomes) {
                    samples[ci].push(100.0 * accuracy_of_outcome(outcome, &domain.sources[t]));
                }
            }
        }
    }
    samples
        .iter()
        .map(|s| DomainAccuracy::from_samples(s))
        .collect()
}

/// The constraint subset for a mode.
pub fn constraints_for(
    domain: &GeneratedDomain,
    mode: ConstraintMode,
) -> Vec<lsd_core::DomainConstraint> {
    match mode {
        ConstraintMode::None => Vec::new(),
        ConstraintMode::SchemaOnly => domain
            .constraints
            .iter()
            .filter(|c| !c.predicate.uses_data())
            .cloned()
            .collect(),
        ConstraintMode::DataOnly => domain
            .constraints
            .iter()
            .filter(|c| c.predicate.uses_data())
            .cloned()
            .collect(),
        ConstraintMode::All => domain.constraints.clone(),
    }
}

/// `"Real Estate I"` → `"real-estate-1"`: lowercase, dash-separated, with
/// the paper's trailing roman numeral turned into a digit. Shared by every
/// binary that takes `--domain`.
pub fn domain_slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if let Some(base) = trimmed.strip_suffix("-ii") {
        return format!("{base}-2");
    }
    if let Some(base) = trimmed.strip_suffix("-i") {
        return format!("{base}-1");
    }
    trimmed.to_string()
}

/// Resolves a `--domain` argument by slug (`"real-estate-1"`) or the
/// paper's display name (`"Real Estate I"`), case-insensitively.
pub fn resolve_domain(name: &str) -> Option<DomainId> {
    DomainId::ALL
        .into_iter()
        .find(|d| domain_slug(d.name()) == domain_slug(name))
}

/// Generates `id` and trains the FULL configuration on its first three
/// sources — the model the serving binaries snapshot, load, and compare
/// batched results against.
pub fn train_full_model(id: DomainId, params: &ExperimentParams) -> (GeneratedDomain, Lsd) {
    let domain = id.generate(params.listings, params.seed);
    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: to_sources(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    let mut lsd = build_lsd(&domain, Setup::FULL, params.lsd);
    lsd.train(&training)
        .expect("generated sources have listings");
    (domain, lsd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_datagen::DomainId;

    #[test]
    fn splits_enumerate_all_triples() {
        let splits = all_splits();
        assert_eq!(splits.len(), 10);
        for (train, test) in &splits {
            assert_eq!(train.len(), 3);
            assert_eq!(test.len(), 2);
            let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn learner_set_constructors() {
        let only_nb = LearnerSet::only("naive-bayes");
        assert!(only_nb.naive_bayes && !only_nb.name_matcher);
        let lesion = LearnerSet::without("naive-bayes");
        assert!(!lesion.naive_bayes && lesion.name_matcher && lesion.content_matcher);
    }

    #[test]
    fn full_pipeline_beats_chance_on_tiny_run() {
        // A minimal end-to-end smoke: 1 trial, few listings, one split.
        let domain = DomainId::FacultyListings.generate(12, 3);
        let mut lsd = build_lsd(&domain, Setup::FULL, lsd_core::LsdConfig::default());
        let training: Vec<TrainedSource> = (0..3)
            .map(|i| TrainedSource {
                source: to_sources(&domain.sources[i]),
                mapping: domain.sources[i].mapping.clone(),
            })
            .collect();
        lsd.train(&training).unwrap();
        let acc = accuracy_of(&lsd, &domain.sources[3]);
        // 14 labels + OTHER → chance ≈ 7%; the system must do far better.
        assert!(acc > 0.4, "accuracy {acc}");
    }

    #[test]
    fn domain_names_resolve_by_slug_and_display_name() {
        assert_eq!(domain_slug("Real Estate I"), "real-estate-1");
        assert_eq!(domain_slug("Real Estate II"), "real-estate-2");
        assert_eq!(
            resolve_domain("Real Estate I"),
            resolve_domain("real-estate-1")
        );
        assert!(resolve_domain("real-estate-1").is_some());
        assert!(resolve_domain("no-such-domain").is_none());
    }

    #[test]
    fn constraint_modes_partition() {
        let domain = DomainId::RealEstate2.generate(2, 1);
        let schema_only = domain
            .constraints
            .iter()
            .filter(|c| !c.predicate.uses_data())
            .count();
        let data_only = domain
            .constraints
            .iter()
            .filter(|c| c.predicate.uses_data())
            .count();
        assert_eq!(schema_only + data_only, domain.constraints.len());
        assert!(schema_only > 0);
        assert!(data_only > 0);
    }
}
