//! The observability layer's cost on the hottest path, in its own bench
//! target so CI can gate on it alone:
//! `cargo bench -p lsd-bench --bench obs_overhead`.
//!
//! `match_batch` with probes disabled (the default — every probe is one
//! Relaxed atomic load) vs enabled (thread-local shard writes + span
//! timing). The acceptance bar is <= 3% overhead for the disabled mode
//! relative to the pre-observability engine; compare `off` here against the
//! `batch_engine_4x5` numbers from before the layer existed, and `on`
//! against `off` for the cost of recording itself.
//!
//! Two more cases isolate the request-tracing layer added on top:
//! * `on` runs with recording enabled but **no** active trace context —
//!   the tracing-disabled fast path every span takes outside a request
//!   (one thread-local `Cell` read). It must be indistinguishable from
//!   the pre-tracing `on` cost.
//! * `on_traced` enters a begun [`lsd_obs::TraceContext`] around each
//!   batch, so every span also registers with the trace collector — the
//!   worst-case per-request tracing cost.

use criterion::{criterion_group, criterion_main, Criterion};
use lsd_core::learners::{NaiveBayesLearner, NameMatcher};
use lsd_core::{LsdBuilder, LsdConfig, Source, TrainedSource};
use lsd_datagen::DomainId;
use lsd_learn::ExecPolicy;
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let domain = DomainId::RealEstate1.generate(40, 7);
    let sources: Vec<Source> = domain
        .sources
        .iter()
        .map(|gs| Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone()))
        .collect();
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_constraints(domain.constraints.clone())
        .build()
        .expect("bench builder has learners");
    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: sources[i].clone(),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    lsd.train(&training)
        .expect("training sources have listings");
    let policy = ExecPolicy::with_threads(4);

    let mut group = c.benchmark_group("obs_overhead_batch");
    group.sample_size(10);
    group.bench_function("off", |b| {
        b.iter(|| {
            lsd.match_batch(black_box(&sources), &policy)
                .expect("well-formed sources")
        })
    });
    group.bench_function("on", |b| {
        b.iter(|| {
            let (outcomes, _snapshot) =
                lsd_obs::collect(|| lsd.match_batch(black_box(&sources), &policy));
            outcomes.expect("well-formed sources")
        })
    });
    group.bench_function("on_traced", |b| {
        b.iter(|| {
            let (outcomes, _snapshot) = lsd_obs::collect(|| {
                let ctx = lsd_obs::TraceContext::generate();
                lsd_obs::trace::begin(&ctx);
                let result = {
                    let _scope = lsd_obs::TraceScope::enter(ctx);
                    lsd.match_batch(black_box(&sources), &policy)
                };
                lsd_obs::trace::finish(ctx.trace_id);
                result
            });
            outcomes.expect("well-formed sources")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
