//! Criterion micro-benchmarks for LSD's components: base-learner training
//! and prediction, meta-learner training (cross-validation + regression),
//! and the constraint handler's search algorithms.
//!
//! Run with `cargo bench -p lsd-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsd_core::learners::{BaseLearner, ContentMatcher, NaiveBayesLearner, NameMatcher, XmlLearner};
use lsd_core::{
    extract_instances, Instance, LsdBuilder, LsdConfig, MetaLearner, SearchAlgorithm, SearchConfig,
    Source, TrainedSource,
};
use lsd_datagen::{DomainId, GeneratedDomain};
use lsd_learn::cross_validation_predictions;
use std::collections::HashMap;
use std::hint::black_box;

/// Labelled instances extracted from one generated source.
fn labelled_instances(domain: &GeneratedDomain, source: usize) -> Vec<(Instance, usize)> {
    let gs = &domain.sources[source];
    let labels = lsd_learn::LabelSet::new(domain.mediated.element_names().map(str::to_string));
    let tag_labels: HashMap<String, usize> = gs
        .dtd
        .element_names()
        .map(|t| {
            let l = gs
                .mapping
                .get(t)
                .and_then(|m| labels.get(m))
                .unwrap_or_else(|| labels.other());
            (t.to_string(), l)
        })
        .collect();
    let mut out = Vec::new();
    for (tag, instances) in extract_instances(&gs.listings) {
        let label = tag_labels[&tag];
        for i in instances {
            out.push((i.with_sub_labels(tag_labels.clone()), label));
        }
    }
    out
}

fn bench_learners(c: &mut Criterion) {
    let domain = DomainId::RealEstate1.generate(50, 1);
    let examples = labelled_instances(&domain, 0);
    let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
    let n = domain.mediated.len() + 1;
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();

    let mut group = c.benchmark_group("learner_train");
    group.bench_function("name_matcher", |b| {
        b.iter(|| {
            let mut l = NameMatcher::with_synonym_pairs(n, pairs.clone());
            BaseLearner::train(&mut l, black_box(&refs));
            l
        })
    });
    group.bench_function("content_matcher", |b| {
        b.iter(|| {
            let mut l = ContentMatcher::new(n);
            BaseLearner::train(&mut l, black_box(&refs));
            l
        })
    });
    group.bench_function("naive_bayes", |b| {
        b.iter(|| {
            let mut l = NaiveBayesLearner::new(n);
            BaseLearner::train(&mut l, black_box(&refs));
            l
        })
    });
    group.bench_function("xml_learner", |b| {
        b.iter(|| {
            let mut l = XmlLearner::new(n);
            BaseLearner::train(&mut l, black_box(&refs));
            l
        })
    });
    group.finish();

    let mut trained_nb = NaiveBayesLearner::new(n);
    BaseLearner::train(&mut trained_nb, &refs);
    let mut trained_content = ContentMatcher::new(n);
    BaseLearner::train(&mut trained_content, &refs);
    let probe = &examples[examples.len() / 2].0;

    let mut group = c.benchmark_group("learner_predict");
    group.bench_function("naive_bayes", |b| {
        b.iter(|| BaseLearner::predict(&trained_nb, black_box(probe)))
    });
    group.bench_function("content_matcher_whirl", |b| {
        b.iter(|| BaseLearner::predict(&trained_content, black_box(probe)))
    });
    group.finish();
}

fn bench_meta(c: &mut Criterion) {
    let domain = DomainId::RealEstate1.generate(40, 2);
    let examples = labelled_instances(&domain, 0);
    let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
    let n = domain.mediated.len() + 1;
    let truths: Vec<usize> = examples.iter().map(|(_, l)| *l).collect();

    c.bench_function("meta_cv_plus_regression", |b| {
        b.iter(|| {
            let cv = cross_validation_predictions(black_box(&refs), 5, 0, || {
                Box::new(NaiveBayesLearner::new(n)) as Box<dyn BaseLearner>
            });
            MetaLearner::train(&[cv], &truths, n)
        })
    });
}

fn bench_search(c: &mut Criterion) {
    // End-to-end match of the largest domain under the three search
    // algorithms (includes prediction; the search dominates on RE2).
    let domain = DomainId::RealEstate2.generate(60, 3);
    let training: Vec<TrainedSource> = (0..3)
        .map(|i| TrainedSource {
            source: Source::from_xml(
                domain.sources[i].name.clone(),
                domain.sources[i].dtd.clone(),
                domain.sources[i].listings.clone(),
            ),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    let target = Source::from_xml(
        domain.sources[3].name.clone(),
        domain.sources[3].dtd.clone(),
        domain.sources[3].listings.clone(),
    );

    let mut group = c.benchmark_group("match_real_estate2");
    group.sample_size(10);
    for (label, algorithm) in [
        (
            "astar",
            SearchAlgorithm::AStar {
                max_expansions: 20_000,
            },
        ),
        ("beam10", SearchAlgorithm::Beam { width: 10 }),
        ("greedy", SearchAlgorithm::Greedy),
    ] {
        let config = LsdConfig {
            search: SearchConfig {
                algorithm,
                ..SearchConfig::default()
            },
            ..LsdConfig::default()
        };
        let builder = LsdBuilder::new(&domain.mediated).with_config(config);
        let n = builder.labels().len();
        let pairs: Vec<(&str, &str)> = domain
            .synonyms
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .with_constraints(domain.constraints.clone())
            .build()
            .expect("bench builder has learners");
        lsd.train(&training)
            .expect("training sources have listings");
        group.bench_with_input(BenchmarkId::from_parameter(label), &lsd, |b, lsd| {
            b.iter(|| {
                lsd.match_source(black_box(&target))
                    .expect("well-formed source")
            })
        });
    }
    group.finish();
}

fn bench_batch_engine(c: &mut Criterion) {
    // The parallel batch-matching engine vs the serial loop it replaces:
    // one trained system, a 4-domain x 5-source workload, outcomes
    // byte-identical across thread counts (asserted in tests/batch_engine.rs).
    use lsd_learn::ExecPolicy;

    let workload: Vec<(lsd_datagen::GeneratedDomain, Vec<Source>)> = [
        DomainId::RealEstate1,
        DomainId::RealEstate2,
        DomainId::TimeSchedule,
        DomainId::FacultyListings,
    ]
    .iter()
    .map(|&id| {
        let domain = id.generate(40, 7);
        let sources: Vec<Source> = domain
            .sources
            .iter()
            .map(|gs| Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone()))
            .collect();
        (domain, sources)
    })
    .collect();

    let systems: Vec<lsd_core::Lsd> = workload
        .iter()
        .map(|(domain, sources)| {
            let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
            let n = builder.labels().len();
            let pairs: Vec<(&str, &str)> = domain
                .synonyms
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            let mut lsd = builder
                .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
                .add_learner(Box::new(NaiveBayesLearner::new(n)))
                .with_constraints(domain.constraints.clone())
                .build()
                .expect("bench builder has learners");
            let training: Vec<TrainedSource> = (0..3)
                .map(|i| TrainedSource {
                    source: sources[i].clone(),
                    mapping: domain.sources[i].mapping.clone(),
                })
                .collect();
            lsd.train(&training)
                .expect("training sources have listings");
            lsd
        })
        .collect();

    let mut group = c.benchmark_group("batch_engine_4x5");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let policy = ExecPolicy::with_threads(threads);
                b.iter(|| {
                    for (lsd, (_, sources)) in systems.iter().zip(&workload) {
                        lsd.match_batch(black_box(sources), &policy)
                            .expect("well-formed sources");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_evaluators(c: &mut Criterion) {
    // The compiled constraint evaluator vs the reference implementation —
    // the optimization that makes A* affordable (DESIGN.md deviation 5).
    use lsd_constraints::{evaluate_partial, Evaluator, MatchingContext};
    use lsd_learn::{LabelSet, Prediction};
    use lsd_xml::SchemaTree;

    let domain = DomainId::RealEstate2.generate(40, 6);
    let gs = &domain.sources[0];
    let schema = SchemaTree::from_dtd(&gs.dtd).expect("valid schema");
    let labels = LabelSet::new(domain.mediated.element_names().map(str::to_string));
    let tags: Vec<String> = schema.tag_names().map(str::to_string).collect();
    let data = lsd_core::build_source_data(tags.iter().map(String::as_str), &gs.listings);
    let ctx = MatchingContext {
        labels: &labels,
        schema: &schema,
        tags: tags.clone(),
        predictions: vec![Prediction::uniform(labels.len()); tags.len()],
        data: &data,
        alpha: 1.0,
    };
    let assignment: Vec<Option<usize>> = (0..tags.len()).map(|i| Some(i % labels.len())).collect();

    let mut group = c.benchmark_group("constraint_evaluation");
    group.bench_function("reference", |b| {
        b.iter(|| evaluate_partial(black_box(&ctx), &domain.constraints, &assignment))
    });
    let evaluator = Evaluator::new(&ctx, &domain.constraints);
    let mut scratch = evaluator.scratch();
    group.bench_function("compiled", |b| {
        b.iter(|| evaluator.evaluate(black_box(&assignment), &mut scratch))
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    // The substrates the pipeline leans on hardest.
    let domain = DomainId::RealEstate2.generate(100, 4);
    let listing_xml = lsd_xml::write_element(&domain.sources[0].listings[0]);

    c.bench_function("xml_parse_listing", |b| {
        b.iter(|| lsd_xml::parse_fragment(black_box(&listing_xml)).expect("parses"))
    });
    c.bench_function("extract_instances_100_listings", |b| {
        b.iter(|| extract_instances(black_box(&domain.sources[0].listings)))
    });
    let stemmer = lsd_text::PorterStemmer::new();
    c.bench_function("tokenize_and_stem_description", |b| {
        let text = domain.sources[0].listings[0].deep_text();
        b.iter(|| {
            lsd_text::tokenize(black_box(&text))
                .iter()
                .map(|t| stemmer.stem(t))
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("generate_domain_re1_50_listings", |b| {
        b.iter(|| DomainId::RealEstate1.generate(black_box(50), 5))
    });
}

criterion_group!(
    benches,
    bench_learners,
    bench_meta,
    bench_search,
    bench_batch_engine,
    bench_evaluators,
    bench_substrates
);
criterion_main!(benches);
