//! A small path-selector over element trees — the subset of XPath that
//! data-centric listings need: child steps, `*` wildcards, and a leading
//! `//` for descendant-or-self search.
//!
//! ```
//! use lsd_xml::parse_fragment;
//!
//! let e = parse_fragment(
//!     "<listing><contact><phone>1</phone></contact>\
//!      <office><phone>2</phone></office></listing>").unwrap();
//! let direct: Vec<&str> = e.select("contact/phone").iter().map(|p| p.name.as_str()).collect();
//! assert_eq!(direct.len(), 1);
//! assert_eq!(e.select("*/phone").len(), 2);
//! assert_eq!(e.select("//phone").len(), 2);
//! ```

use crate::tree::Element;

impl Element {
    /// Selects descendants by a slash-separated path of tag names relative
    /// to this element (the element itself is not part of the path).
    ///
    /// - `a/b` — children named `b` of children named `a`;
    /// - `*` — any child name at that step;
    /// - a leading `//` — search at any depth, e.g. `//phone` finds every
    ///   `phone` in the subtree, `//contact/phone` every `phone` directly
    ///   under any `contact`.
    ///
    /// Returns matches in document order; an empty path selects nothing.
    pub fn select(&self, path: &str) -> Vec<&Element> {
        let (anchored, rest) = match path.strip_prefix("//") {
            Some(rest) => (false, rest),
            None => (true, path),
        };
        let steps: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
        if steps.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if anchored {
            walk_steps(self, &steps, &mut out);
        } else {
            // Descendant search: an element matches when the tail of its
            // tag path (below `self`) matches the steps. Collecting during
            // one preorder traversal keeps true document order.
            let mut path: Vec<&str> = Vec::new();
            walk_suffix(self, &steps, &mut path, &mut out);
        }
        out
    }

    /// First match of [`Self::select`], if any.
    pub fn select_first(&self, path: &str) -> Option<&Element> {
        // Document order is preserved by select(), so first() is the
        // earliest match.
        self.select(path).into_iter().next()
    }

    /// Concatenated subtree text of every match, in document order.
    pub fn select_text(&self, path: &str) -> Vec<String> {
        self.select(path)
            .into_iter()
            .map(Element::deep_text)
            .collect()
    }
}

/// Preorder traversal collecting every element whose tag path below the
/// selection root ends with `steps` (with `*` wildcards).
fn walk_suffix<'a>(
    root: &'a Element,
    steps: &[&str],
    path: &mut Vec<&'a str>,
    out: &mut Vec<&'a Element>,
) {
    for child in root.child_elements() {
        path.push(child.name.as_str());
        let matches = path.len() >= steps.len()
            && path[path.len() - steps.len()..]
                .iter()
                .zip(steps)
                .all(|(name, step)| *step == "*" || name == step);
        if matches {
            out.push(child);
        }
        walk_suffix(child, steps, path, out);
        path.pop();
    }
}

/// Matches `steps` starting from the children of `root`.
fn walk_steps<'a>(root: &'a Element, steps: &[&str], out: &mut Vec<&'a Element>) {
    let (step, rest) = match steps.split_first() {
        Some(split) => split,
        None => return,
    };
    for child in root.child_elements() {
        if *step == "*" || child.name == *step {
            if rest.is_empty() {
                out.push(child);
            } else {
                walk_steps(child, rest, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_fragment;

    fn tree() -> crate::Element {
        parse_fragment(
            "<listing>\
               <contact><name>Kate</name><phone>111</phone></contact>\
               <office><name>MAX</name><phone>222</phone>\
                 <branch><phone>333</phone></branch>\
               </office>\
               <phone>444</phone>\
             </listing>",
        )
        .expect("well-formed")
    }

    #[test]
    fn child_steps() {
        let e = tree();
        assert_eq!(e.select_text("contact/phone"), vec!["111"]);
        assert_eq!(e.select_text("office/phone"), vec!["222"]);
        assert_eq!(e.select_text("phone"), vec!["444"]);
        assert!(e.select("contact/phone/digit").is_empty());
    }

    #[test]
    fn wildcard_steps() {
        let e = tree();
        assert_eq!(e.select_text("*/phone"), vec!["111", "222"]);
        assert_eq!(e.select("*").len(), 3);
        assert_eq!(e.select_text("*/*/phone"), vec!["333"]);
    }

    #[test]
    fn descendant_search() {
        let e = tree();
        assert_eq!(e.select_text("//phone"), vec!["111", "222", "333", "444"]);
        assert_eq!(e.select_text("//branch/phone"), vec!["333"]);
        assert_eq!(e.select_text("//office/*/phone"), vec!["333"]);
    }

    #[test]
    fn first_and_empty() {
        let e = tree();
        assert_eq!(e.select_first("//phone").expect("match").deep_text(), "111");
        assert!(e.select_first("ghost").is_none());
        assert!(e.select("").is_empty());
        assert!(e.select("//").is_empty());
    }

    #[test]
    fn document_order_preserved() {
        let e = tree();
        let names: Vec<String> = e.select_text("//name");
        assert_eq!(names, vec!["Kate", "MAX"]);
    }
}
