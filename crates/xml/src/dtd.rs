//! DTD (document type descriptor) content-model grammar.
//!
//! A DTD is a BNF-style grammar that defines legal elements and the
//! relationships between them (paper Section 2.1). We support the standard
//! `<!ELEMENT name spec>` declaration syntax with `EMPTY`, `ANY`,
//! `(#PCDATA)`, mixed content `(#PCDATA | a | b)*`, and element content
//! built from sequences `(a, b)`, choices `(a | b)` and the `?`/`*`/`+`
//! occurrence operators. `<!ATTLIST>` declarations are accepted and skipped
//! (the paper treats attributes like sub-elements).

use crate::error::XmlError;
use crate::span::Span;
use crate::tree::Element;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// How many times a content particle may occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Occurrence {
    /// Exactly once (no suffix).
    One,
    /// Zero or one time (`?`).
    Optional,
    /// Any number of times (`*`).
    ZeroOrMore,
    /// One or more times (`+`).
    OneOrMore,
}

impl Occurrence {
    fn suffix(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        }
    }
}

/// The content specification of one element declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentModel {
    /// `EMPTY` — no content allowed.
    Empty,
    /// `ANY` — any declared elements and text.
    Any,
    /// `(#PCDATA)` — text only.
    Pcdata,
    /// `(#PCDATA | a | b)*` — text interleaved with the named elements.
    Mixed(Vec<String>),
    /// A named child element with an occurrence suffix.
    Name(String, Occurrence),
    /// `(a, b, c)` — ordered sequence, with an occurrence suffix.
    Seq(Vec<ContentModel>, Occurrence),
    /// `(a | b | c)` — alternation, with an occurrence suffix.
    Choice(Vec<ContentModel>, Occurrence),
}

impl ContentModel {
    /// Collects every element name referenced by this model, in first-seen
    /// declaration order.
    pub fn referenced_names(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.collect_names(&mut seen, &mut out);
        out
    }

    fn collect_names(&self, seen: &mut BTreeSet<String>, out: &mut Vec<String>) {
        match self {
            ContentModel::Empty | ContentModel::Any | ContentModel::Pcdata => {}
            ContentModel::Mixed(names) => {
                for n in names {
                    if seen.insert(n.clone()) {
                        out.push(n.clone());
                    }
                }
            }
            ContentModel::Name(n, _) => {
                if seen.insert(n.clone()) {
                    out.push(n.clone());
                }
            }
            ContentModel::Seq(parts, _) | ContentModel::Choice(parts, _) => {
                for p in parts {
                    p.collect_names(seen, out);
                }
            }
        }
    }

    /// True if the model permits text content.
    pub fn allows_text(&self) -> bool {
        matches!(
            self,
            ContentModel::Pcdata | ContentModel::Mixed(_) | ContentModel::Any
        )
    }

    /// Renders the model back to DTD syntax.
    pub fn to_dtd_syntax(&self) -> String {
        match self {
            ContentModel::Empty => "EMPTY".to_string(),
            ContentModel::Any => "ANY".to_string(),
            ContentModel::Pcdata => "(#PCDATA)".to_string(),
            ContentModel::Mixed(names) => {
                let mut s = String::from("(#PCDATA");
                for n in names {
                    s.push_str(" | ");
                    s.push_str(n);
                }
                s.push_str(")*");
                s
            }
            ContentModel::Name(n, occ) => format!("{n}{}", occ.suffix()),
            ContentModel::Seq(parts, occ) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_dtd_syntax()).collect();
                format!("({}){}", inner.join(", "), occ.suffix())
            }
            ContentModel::Choice(parts, occ) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_dtd_syntax()).collect();
                format!("({}){}", inner.join(" | "), occ.suffix())
            }
        }
    }

    /// Matches a sequence of child element names against the model, treating
    /// the model as a regular expression over names. Implemented as a
    /// position-set simulation (no backtracking blow-up).
    fn matches_children(&self, names: &[&str]) -> bool {
        let ends = self.advance(names, &BTreeSet::from([0usize]));
        ends.contains(&names.len())
    }

    /// Given a set of start indices into `names`, returns the set of indices
    /// reachable after this particle consumes some prefix from each start.
    fn advance(&self, names: &[&str], starts: &BTreeSet<usize>) -> BTreeSet<usize> {
        let (base, occ): (BTreeSet<usize>, Occurrence) = match self {
            ContentModel::Empty | ContentModel::Pcdata => return starts.clone(),
            ContentModel::Any => {
                // ANY consumes any suffix.
                let min = match starts.iter().next() {
                    Some(&m) => m,
                    None => return BTreeSet::new(),
                };
                return (min..=names.len()).collect();
            }
            ContentModel::Mixed(allowed) => {
                // Mixed is (a|b|...)* over the element children.
                let mut current = starts.clone();
                loop {
                    let mut next = BTreeSet::new();
                    for &i in &current {
                        if i < names.len() && allowed.iter().any(|a| a == names[i]) {
                            next.insert(i + 1);
                        }
                    }
                    let before = current.len();
                    current.extend(next);
                    if current.len() == before {
                        return current;
                    }
                }
            }
            ContentModel::Name(n, occ) => {
                let mut out = BTreeSet::new();
                for &i in starts {
                    if i < names.len() && names[i] == n {
                        out.insert(i + 1);
                    }
                }
                (out, *occ)
            }
            ContentModel::Seq(parts, occ) => {
                let mut current = starts.clone();
                for p in parts {
                    current = p.advance(names, &current);
                    if current.is_empty() {
                        break;
                    }
                }
                (current, *occ)
            }
            ContentModel::Choice(parts, occ) => {
                let mut out = BTreeSet::new();
                for p in parts {
                    out.extend(p.advance(names, starts));
                }
                (out, *occ)
            }
        };
        apply_occurrence(self, names, starts, base, occ)
    }
}

/// Applies `?`/`*`/`+` semantics on top of a single-iteration result.
fn apply_occurrence(
    model: &ContentModel,
    names: &[&str],
    starts: &BTreeSet<usize>,
    once: BTreeSet<usize>,
    occ: Occurrence,
) -> BTreeSet<usize> {
    match occ {
        Occurrence::One => once,
        Occurrence::Optional => once.union(starts).copied().collect(),
        Occurrence::ZeroOrMore | Occurrence::OneOrMore => {
            // Fixpoint of repeated application.
            let mut all: BTreeSet<usize> = once.clone();
            let mut frontier = once;
            while !frontier.is_empty() {
                let next = strip_occurrence(model).advance(names, &frontier);
                frontier = next.difference(&all).copied().collect();
                all.extend(frontier.iter().copied());
            }
            if occ == Occurrence::ZeroOrMore {
                all.extend(starts.iter().copied());
            }
            all
        }
    }
}

/// Returns a copy of the particle with occurrence `One`, used to iterate the
/// body of a `*`/`+` without re-applying the operator.
fn strip_occurrence(model: &ContentModel) -> ContentModel {
    match model {
        ContentModel::Name(n, _) => ContentModel::Name(n.clone(), Occurrence::One),
        ContentModel::Seq(p, _) => ContentModel::Seq(p.clone(), Occurrence::One),
        ContentModel::Choice(p, _) => ContentModel::Choice(p.clone(), Occurrence::One),
        other => other.clone(),
    }
}

/// One `<!ELEMENT name spec>` declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElementDecl {
    /// Declared element name.
    pub name: String,
    /// Its content specification.
    pub content: ContentModel,
    /// Byte span of the whole `<!ELEMENT ...>` declaration in the text it
    /// was parsed from, or [`Span::SYNTHETIC`] for DTDs built in memory.
    #[serde(default)]
    pub span: Span,
}

impl ElementDecl {
    /// A declaration built in memory (no source location).
    pub fn new(name: impl Into<String>, content: ContentModel) -> Self {
        ElementDecl {
            name: name.into(),
            content,
            span: Span::SYNTHETIC,
        }
    }

    /// The same declaration carrying a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }
}

// Equality is structural: the span records *where* a declaration was
// parsed from, not *what* it declares, so reformatting must not break
// round-trip comparisons.
impl PartialEq for ElementDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.content == other.content
    }
}

impl Eq for ElementDecl {}

/// One attribute definition inside an `<!ATTLIST ...>` declaration. The
/// type and default are accepted but not retained — the paper treats
/// attributes like sub-elements, so only the name matters downstream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttDef {
    /// The attribute name.
    pub name: String,
    /// Byte span of the attribute name in the source text.
    #[serde(default)]
    pub span: Span,
}

impl PartialEq for AttDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for AttDef {}

/// One `<!ATTLIST element att type default ...>` declaration. Previously
/// these were skipped wholesale; they are now retained (names + spans) so
/// static analysis can flag duplicate attribute declarations and attlists
/// for undeclared elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttlistDecl {
    /// The element the attributes belong to.
    pub element: String,
    /// The declared attributes, in source order.
    pub attrs: Vec<AttDef>,
    /// Byte span of the whole `<!ATTLIST ...>` declaration.
    #[serde(default)]
    pub span: Span,
}

impl PartialEq for AttlistDecl {
    fn eq(&self, other: &Self) -> bool {
        self.element == other.element && self.attrs == other.attrs
    }
}

impl Eq for AttlistDecl {}

/// A parsed DTD: the ordered list of element declarations plus an index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Dtd {
    decls: Vec<ElementDecl>,
    /// Retained `<!ATTLIST ...>` declarations, in source order.
    #[serde(default)]
    attlists: Vec<AttlistDecl>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Dtd {
    /// Builds a DTD from declarations, rejecting duplicates.
    pub fn new(decls: Vec<ElementDecl>) -> Result<Self> {
        Dtd::with_attlists(decls, Vec::new())
    }

    /// Builds a DTD from element and attribute-list declarations,
    /// rejecting duplicate element declarations.
    pub fn with_attlists(decls: Vec<ElementDecl>, attlists: Vec<AttlistDecl>) -> Result<Self> {
        let mut index = HashMap::with_capacity(decls.len());
        for (i, d) in decls.iter().enumerate() {
            if index.insert(d.name.clone(), i).is_some() {
                return Err(XmlError::DuplicateElementDecl {
                    name: d.name.clone(),
                });
            }
        }
        Ok(Dtd {
            decls,
            attlists,
            index,
        })
    }

    /// The retained `<!ATTLIST ...>` declarations, in source order.
    pub fn attlists(&self) -> &[AttlistDecl] {
        &self.attlists
    }

    /// The declarations in source order.
    pub fn declarations(&self) -> &[ElementDecl] {
        &self.decls
    }

    /// Looks up a declaration by element name.
    pub fn decl(&self, name: &str) -> Option<&ElementDecl> {
        self.index.get(name).map(|&i| &self.decls[i])
    }

    /// All declared element names in source order.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.decls.iter().map(|d| d.name.as_str())
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if the DTD declares no elements.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Checks that every referenced element name is declared.
    pub fn check_closed(&self) -> Result<()> {
        for d in &self.decls {
            for n in d.content.referenced_names() {
                if !self.index.contains_key(&n) {
                    return Err(XmlError::UndeclaredElement { name: n });
                }
            }
        }
        Ok(())
    }

    /// Determines the root element: the unique declared element that is not
    /// referenced in any other element's content model. If several qualify
    /// (or none, in a cyclic DTD) the first declared element wins, matching
    /// the common convention of declaring the root first.
    pub fn root_name(&self) -> Result<&str> {
        if self.decls.is_empty() {
            return Err(XmlError::NoUniqueRoot { candidates: vec![] });
        }
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for d in &self.decls {
            for n in d.content.referenced_names() {
                if let Some(&i) = self.index.get(&n) {
                    referenced.insert(&self.decls[i].name);
                }
            }
        }
        let candidates: Vec<&str> = self
            .decls
            .iter()
            .map(|d| d.name.as_str())
            .filter(|n| !referenced.contains(n))
            .collect();
        match candidates.len() {
            1 => Ok(candidates[0]),
            _ => Ok(&self.decls[0].name),
        }
    }

    /// Validates an element tree against this DTD: every element must be
    /// declared and its children must match its content model; text content
    /// is only allowed where the model permits it.
    pub fn validate(&self, element: &Element) -> Result<()> {
        let decl = self
            .decl(&element.name)
            .ok_or_else(|| XmlError::UndeclaredElement {
                name: element.name.clone(),
            })?;
        let child_names: Vec<&str> = element.child_elements().map(|e| e.name.as_str()).collect();
        match &decl.content {
            ContentModel::Empty => {
                if !element.children.is_empty() {
                    return Err(XmlError::ValidationFailed {
                        element: element.name.clone(),
                        message: "declared EMPTY but has content".to_string(),
                    });
                }
            }
            ContentModel::Any => {}
            ContentModel::Pcdata => {
                if !child_names.is_empty() {
                    return Err(XmlError::ValidationFailed {
                        element: element.name.clone(),
                        message: format!(
                            "declared (#PCDATA) but contains child elements {child_names:?}"
                        ),
                    });
                }
            }
            model => {
                if !model.allows_text() && !element.direct_text().is_empty() {
                    return Err(XmlError::ValidationFailed {
                        element: element.name.clone(),
                        message: "element content model does not allow text".to_string(),
                    });
                }
                if !model.matches_children(&child_names) {
                    return Err(XmlError::ValidationFailed {
                        element: element.name.clone(),
                        message: format!(
                            "children {child_names:?} do not match {}",
                            model.to_dtd_syntax()
                        ),
                    });
                }
            }
        }
        for child in element.child_elements() {
            self.validate(child)?;
        }
        Ok(())
    }

    /// Renders the whole DTD back to `<!ELEMENT ...>` syntax. A bare name
    /// content model is parenthesized — `<!ELEMENT r (a?)>` — since DTD
    /// content specifications must be groups.
    pub fn to_dtd_syntax(&self) -> String {
        let mut out = String::new();
        for d in &self.decls {
            out.push_str("<!ELEMENT ");
            out.push_str(&d.name);
            out.push(' ');
            match &d.content {
                ContentModel::Name(..) => {
                    out.push('(');
                    out.push_str(&d.content.to_dtd_syntax());
                    out.push(')');
                }
                other => out.push_str(&other.to_dtd_syntax()),
            }
            out.push_str(">\n");
        }
        out
    }
}

/// Parses a sequence of `<!ELEMENT ...>` declarations (whitespace and
/// comments between them are skipped). `<!ATTLIST ...>` declarations are
/// parsed tolerantly and retained — attribute names and spans survive for
/// static analysis, while types and defaults are discarded.
///
/// Every produced [`ElementDecl`] and [`AttlistDecl`] carries the byte
/// [`Span`] of its declaration in `input`, so diagnostics can point at the
/// offending text.
pub fn parse_dtd(input: &str) -> Result<Dtd> {
    let mut p = DtdParser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut decls = Vec::new();
    let mut attlists = Vec::new();
    loop {
        p.skip_trivia()?;
        if p.at_end() {
            break;
        }
        let start = p.pos;
        if p.starts_with("<!ELEMENT") {
            p.pos += "<!ELEMENT".len();
            let decl = p.parse_element_decl()?;
            decls.push(decl.with_span(Span::new(start, p.pos)));
        } else if p.starts_with("<!ATTLIST") {
            p.pos += "<!ATTLIST".len();
            let mut attlist = p.parse_attlist_decl()?;
            attlist.span = Span::new(start, p.pos);
            attlists.push(attlist);
        } else {
            return Err(XmlError::InvalidDtd {
                message: format!(
                    "expected <!ELEMENT or <!ATTLIST at offset {}, found {:?}",
                    p.pos,
                    p.input[p.pos..].chars().take(12).collect::<String>()
                ),
            });
        }
    }
    Dtd::with_attlists(decls, attlists)
}

struct DtdParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DtdParser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(rel) => self.pos += rel + 3,
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "DTD comment",
                        });
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::InvalidDtd {
                message: format!("expected a name at offset {start}"),
            });
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_element_decl(&mut self) -> Result<ElementDecl> {
        let name = self.parse_name()?;
        self.skip_ws();
        let content = if self.starts_with("EMPTY") {
            self.pos += 5;
            ContentModel::Empty
        } else if self.starts_with("ANY") {
            self.pos += 3;
            ContentModel::Any
        } else if self.peek() == Some(b'(') {
            self.parse_group()?
        } else {
            return Err(XmlError::InvalidDtd {
                message: format!(
                    "expected content spec for element {name} at offset {}",
                    self.pos
                ),
            });
        };
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(XmlError::InvalidDtd {
                message: format!(
                    "expected '>' closing declaration of {name} at offset {}",
                    self.pos
                ),
            });
        }
        self.pos += 1;
        Ok(ElementDecl::new(name, content))
    }

    /// Parses the body of an `<!ATTLIST element (att type default)*>`
    /// declaration. Attribute names (with spans) are kept; types —
    /// including parenthesized enumerations — and defaults — including
    /// `#REQUIRED` / `#IMPLIED` / `#FIXED "v"` and quoted literals — are
    /// validated for shape and discarded.
    fn parse_attlist_decl(&mut self) -> Result<AttlistDecl> {
        let element = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(AttlistDecl {
                        element,
                        attrs,
                        span: Span::SYNTHETIC,
                    });
                }
                Some(_) => {
                    let start = self.pos;
                    let name = self.parse_name()?;
                    attrs.push(AttDef {
                        name,
                        span: Span::new(start, self.pos),
                    });
                    self.skip_attribute_type()?;
                    self.skip_attribute_default()?;
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "ATTLIST declaration",
                    });
                }
            }
        }
    }

    /// Skips an attribute type: a parenthesized enumeration or a keyword
    /// such as `CDATA` / `ID` / `NMTOKEN`.
    fn skip_attribute_type(&mut self) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            let mut depth = 0usize;
            while let Some(b) = self.peek() {
                self.pos += 1;
                match b {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(());
                        }
                    }
                    _ => {}
                }
            }
            Err(XmlError::UnexpectedEof {
                context: "ATTLIST enumerated type",
            })
        } else {
            self.parse_name().map(drop)
        }
    }

    /// Skips an attribute default: `#REQUIRED`, `#IMPLIED`, `#FIXED "v"`,
    /// or a bare quoted literal.
    fn skip_attribute_default(&mut self) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(b'#') => {
                self.pos += 1;
                let keyword = self.parse_name()?;
                if keyword == "FIXED" {
                    self.skip_ws();
                    self.skip_quoted()?;
                }
                Ok(())
            }
            Some(b'"') | Some(b'\'') => self.skip_quoted(),
            other => Err(XmlError::InvalidDtd {
                message: format!(
                    "expected attribute default (#REQUIRED, #IMPLIED, #FIXED or a \
                     quoted literal) at offset {}, found {other:?}",
                    self.pos
                ),
            }),
        }
    }

    /// Skips a quoted literal, honouring the opening quote character.
    fn skip_quoted(&mut self) -> Result<()> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(XmlError::InvalidDtd {
                    message: format!("expected a quoted literal at offset {}", self.pos),
                });
            }
        };
        self.pos += 1;
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == quote {
                return Ok(());
            }
        }
        Err(XmlError::UnexpectedEof {
            context: "quoted attribute literal",
        })
    }

    /// Parses a parenthesized group: `(#PCDATA)`, `(#PCDATA | a | b)*`,
    /// `(cp, cp, ...)` or `(cp | cp | ...)`, plus an occurrence suffix.
    fn parse_group(&mut self) -> Result<ContentModel> {
        debug_assert_eq!(self.peek(), Some(b'('));
        self.pos += 1;
        self.skip_ws();
        if self.starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.pos += 1;
                // Allow an optional trailing '*' on plain (#PCDATA).
                if self.peek() == Some(b'*') {
                    self.pos += 1;
                }
                return Ok(ContentModel::Pcdata);
            }
            let mut names = Vec::new();
            while self.peek() == Some(b'|') {
                self.pos += 1;
                names.push(self.parse_name()?);
                self.skip_ws();
            }
            if self.peek() != Some(b')') {
                return Err(XmlError::InvalidDtd {
                    message: format!("expected ')' closing mixed content at offset {}", self.pos),
                });
            }
            self.pos += 1;
            if self.peek() == Some(b'*') {
                self.pos += 1;
            } else if !names.is_empty() {
                return Err(XmlError::InvalidDtd {
                    message: format!(
                        "mixed content with names must end with ')*' (offset {})",
                        self.pos
                    ),
                });
            }
            return Ok(ContentModel::Mixed(names));
        }

        let mut parts = vec![self.parse_cp()?];
        self.skip_ws();
        let separator = match self.peek() {
            Some(b',') => Some(b','),
            Some(b'|') => Some(b'|'),
            Some(b')') => None,
            other => {
                return Err(XmlError::InvalidDtd {
                    message: format!(
                        "expected ',', '|' or ')' in group at offset {}, found {other:?}",
                        self.pos
                    ),
                })
            }
        };
        if let Some(sep) = separator {
            while self.peek() == Some(sep) {
                self.pos += 1;
                parts.push(self.parse_cp()?);
                self.skip_ws();
            }
            if matches!(self.peek(), Some(b',') | Some(b'|')) {
                return Err(XmlError::InvalidDtd {
                    message: format!(
                        "cannot mix ',' and '|' at the same level (offset {})",
                        self.pos
                    ),
                });
            }
        }
        if self.peek() != Some(b')') {
            return Err(XmlError::InvalidDtd {
                message: format!("expected ')' closing group at offset {}", self.pos),
            });
        }
        self.pos += 1;
        let occ = self.parse_occurrence();
        Ok(match separator {
            Some(b'|') => ContentModel::Choice(parts, occ),
            _ if parts.len() == 1 && occ == Occurrence::One => parts.pop().expect("one part"),
            _ => ContentModel::Seq(parts, occ),
        })
    }

    /// Parses a content particle: a name or nested group with a suffix.
    fn parse_cp(&mut self) -> Result<ContentModel> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.parse_group()
        } else {
            let name = self.parse_name()?;
            let occ = self.parse_occurrence();
            Ok(ContentModel::Name(name, occ))
        }
    }

    fn parse_occurrence(&mut self) -> Occurrence {
        let occ = match self.peek() {
            Some(b'?') => Occurrence::Optional,
            Some(b'*') => Occurrence::ZeroOrMore,
            Some(b'+') => Occurrence::OneOrMore,
            _ => return Occurrence::One,
        };
        self.pos += 1;
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fragment;

    const MEDIATED: &str = "<!ELEMENT house-listing (location?, price, contact)>\n\
         <!ELEMENT location (#PCDATA)>\n\
         <!ELEMENT price (#PCDATA)>\n\
         <!ELEMENT contact (name, phone)>\n\
         <!ELEMENT name (#PCDATA)>\n\
         <!ELEMENT phone (#PCDATA)>";

    #[test]
    fn parses_paper_mediated_schema() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        assert_eq!(dtd.len(), 6);
        assert_eq!(dtd.root_name().unwrap(), "house-listing");
        dtd.check_closed().unwrap();
        let hl = dtd.decl("house-listing").unwrap();
        assert_eq!(
            hl.content.referenced_names(),
            vec!["location", "price", "contact"]
        );
    }

    #[test]
    fn validates_conforming_document() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        let doc = parse_fragment(
            "<house-listing><location>Seattle, WA</location><price>$70,000</price>\
             <contact><name>Kate</name><phone>(206) 523 4719</phone></contact></house-listing>",
        )
        .unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn optional_element_may_be_absent() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        let doc = parse_fragment(
            "<house-listing><price>$1</price>\
             <contact><name>K</name><phone>5</phone></contact></house-listing>",
        )
        .unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn missing_required_element_fails() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        let doc = parse_fragment("<house-listing><price>$1</price></house-listing>").unwrap();
        let err = dtd.validate(&doc).unwrap_err();
        assert!(
            matches!(err, XmlError::ValidationFailed { element, .. } if element == "house-listing")
        );
    }

    #[test]
    fn wrong_order_fails() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        let doc = parse_fragment(
            "<house-listing><contact><name>K</name><phone>5</phone></contact>\
             <price>$1</price></house-listing>",
        )
        .unwrap();
        assert!(dtd.validate(&doc).is_err());
    }

    #[test]
    fn pcdata_rejects_child_elements() {
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA)>").unwrap();
        let doc = parse_fragment("<a><b/></a>").unwrap();
        assert!(dtd.validate(&doc).is_err());
    }

    #[test]
    fn star_and_plus() {
        let dtd =
            parse_dtd("<!ELEMENT r (a*, b+)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>")
                .unwrap();
        assert!(dtd
            .validate(&parse_fragment("<r><b>1</b></r>").unwrap())
            .is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a><a>2</a><b>3</b><b>4</b></r>").unwrap())
            .is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a></r>").unwrap())
            .is_err());
    }

    #[test]
    fn choice_groups() {
        let dtd = parse_dtd(
            "<!ELEMENT r ((a | b), c)>\n<!ELEMENT a (#PCDATA)>\n\
             <!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>",
        )
        .unwrap();
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a><c>2</c></r>").unwrap())
            .is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><b>1</b><c>2</c></r>").unwrap())
            .is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a><b>1</b><c>2</c></r>").unwrap())
            .is_err());
    }

    #[test]
    fn nested_group_with_occurrence() {
        let dtd =
            parse_dtd("<!ELEMENT r ((a, b)*)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>")
                .unwrap();
        assert!(dtd.validate(&parse_fragment("<r/>").unwrap()).is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a><b>2</b><a>3</a><b>4</b></r>").unwrap())
            .is_ok());
        assert!(dtd
            .validate(&parse_fragment("<r><a>1</a></r>").unwrap())
            .is_err());
    }

    #[test]
    fn mixed_content() {
        let dtd = parse_dtd("<!ELEMENT d (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>").unwrap();
        let doc = parse_fragment("<d>hello <em>world</em> bye</d>").unwrap();
        dtd.validate(&doc).unwrap();
        let bad = parse_fragment("<d><other/></d>").unwrap();
        assert!(matches!(
            dtd.validate(&bad).unwrap_err(),
            XmlError::ValidationFailed { element, .. } if element == "d"
        ));
    }

    #[test]
    fn empty_content_model() {
        let dtd = parse_dtd("<!ELEMENT br EMPTY>").unwrap();
        assert!(dtd.validate(&parse_fragment("<br/>").unwrap()).is_ok());
        assert!(dtd
            .validate(&parse_fragment("<br>x</br>").unwrap())
            .is_err());
    }

    #[test]
    fn any_content_model() {
        let dtd = parse_dtd("<!ELEMENT r ANY>\n<!ELEMENT a (#PCDATA)>").unwrap();
        assert!(dtd
            .validate(&parse_fragment("<r>text <a>1</a> more</r>").unwrap())
            .is_ok());
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = parse_dtd("<!ELEMENT a (#PCDATA)>\n<!ELEMENT a (#PCDATA)>").unwrap_err();
        assert!(matches!(err, XmlError::DuplicateElementDecl { name } if name == "a"));
    }

    #[test]
    fn undeclared_reference_detected() {
        let dtd = parse_dtd("<!ELEMENT r (ghost)>").unwrap();
        assert!(matches!(
            dtd.check_closed().unwrap_err(),
            XmlError::UndeclaredElement { name } if name == "ghost"
        ));
    }

    #[test]
    fn mixing_separators_rejected() {
        assert!(parse_dtd("<!ELEMENT r (a, b | c)>").is_err());
    }

    #[test]
    fn attlist_retained_with_names() {
        let dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)>\n<!ATTLIST a id CDATA #REQUIRED>\n<!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        assert_eq!(dtd.len(), 2);
        assert_eq!(dtd.attlists().len(), 1);
        let attlist = &dtd.attlists()[0];
        assert_eq!(attlist.element, "a");
        assert_eq!(attlist.attrs.len(), 1);
        assert_eq!(attlist.attrs[0].name, "id");
        assert!(!attlist.span.is_synthetic());
    }

    #[test]
    fn attlist_parses_enumerations_and_defaults() {
        let dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)>\n\
             <!ATTLIST a kind (big | small) \"big\"\n\
                         id ID #IMPLIED\n\
                         ver CDATA #FIXED \"1.0\">",
        )
        .unwrap();
        let names: Vec<&str> = dtd.attlists()[0]
            .attrs
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["kind", "id", "ver"]);
    }

    #[test]
    fn attlist_default_may_contain_gt() {
        // A '>' inside a quoted default must not terminate the declaration
        // (the old skip-to-'>' fast path got this wrong).
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA)>\n<!ATTLIST a note CDATA \"x > y\">").unwrap();
        assert_eq!(dtd.attlists()[0].attrs[0].name, "note");
    }

    #[test]
    fn declarations_carry_source_spans() {
        let text = "<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (a)>";
        let dtd = parse_dtd(text).unwrap();
        let a = &dtd.declarations()[0];
        let b = &dtd.declarations()[1];
        assert_eq!(&text[a.span.start..a.span.end], "<!ELEMENT a (#PCDATA)>");
        assert_eq!(&text[b.span.start..b.span.end], "<!ELEMENT b (a)>");
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let parsed = parse_dtd("<!ELEMENT a (#PCDATA)>").unwrap();
        let built = Dtd::new(vec![ElementDecl::new("a", ContentModel::Pcdata)]).unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn comments_skipped() {
        let dtd = parse_dtd("<!-- mediated schema -->\n<!ELEMENT a (#PCDATA)>").unwrap();
        assert_eq!(dtd.len(), 1);
    }

    #[test]
    fn roundtrip_through_syntax() {
        let dtd = parse_dtd(MEDIATED).unwrap();
        let rendered = dtd.to_dtd_syntax();
        let reparsed = parse_dtd(&rendered).unwrap();
        assert_eq!(dtd, reparsed);
    }

    #[test]
    fn root_detection_prefers_unreferenced() {
        let dtd = parse_dtd("<!ELEMENT leaf (#PCDATA)>\n<!ELEMENT top (leaf)>").unwrap();
        assert_eq!(dtd.root_name().unwrap(), "top");
    }

    #[test]
    fn pcdata_star_accepted() {
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA)*>").unwrap();
        assert_eq!(dtd.decl("a").unwrap().content, ContentModel::Pcdata);
    }
}
