//! Schema trees: the structural view of a DTD used by LSD.
//!
//! The constraint handler asks questions like "is `b` nested in `a`?",
//! "are `a` and `b` siblings, and which tags sit between them?", and the
//! user-feedback loop orders tags by how much structure lies below them.
//! [`SchemaTree`] precomputes all of that from a [`Dtd`].

use crate::dtd::Dtd;
use crate::error::XmlError;
use crate::Result;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Precomputed structural information about one tag in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagInfo {
    /// The tag name.
    pub name: String,
    /// Depth in the schema tree; the root has depth 1.
    pub depth: usize,
    /// True if the tag's content model references no child elements.
    pub is_leaf: bool,
    /// Direct parents (a tag may be referenced by several content models).
    pub parents: Vec<String>,
    /// Direct children in content-model order.
    pub children: Vec<String>,
    /// One slash-joined path from the root to this tag (shortest, first
    /// found), e.g. `house-listing/contact/phone`.
    pub path: String,
}

/// The structural view of a DTD: tags, parent/child edges, depths, paths.
#[derive(Debug, Clone)]
pub struct SchemaTree {
    root: String,
    tags: Vec<TagInfo>,
    index: HashMap<String, usize>,
    /// `descendants[i]` = set of tag indices reachable below tag `i`.
    descendants: Vec<BTreeSet<usize>>,
}

impl SchemaTree {
    /// Builds the schema tree for a DTD. The DTD must be closed (every
    /// referenced element declared).
    pub fn from_dtd(dtd: &Dtd) -> Result<Self> {
        dtd.check_closed()?;
        let root = dtd.root_name()?.to_string();

        let names: Vec<String> = dtd.element_names().map(str::to_string).collect();
        let index: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();

        let mut children: Vec<Vec<String>> = Vec::with_capacity(names.len());
        let mut parents: Vec<Vec<String>> = vec![Vec::new(); names.len()];
        for decl in dtd.declarations() {
            let kids = decl.content.referenced_names();
            let pi = index[&decl.name];
            for k in &kids {
                let ki = index[k];
                if !parents[ki].contains(&decl.name) {
                    parents[ki].push(decl.name.clone());
                }
                let _ = pi; // parent index retained for clarity
            }
            children.push(kids);
        }

        // BFS from the root for depth and a canonical path per tag.
        let mut depth = vec![usize::MAX; names.len()];
        let mut path = vec![String::new(); names.len()];
        let ri = *index
            .get(&root)
            .ok_or_else(|| XmlError::UndeclaredElement { name: root.clone() })?;
        depth[ri] = 1;
        path[ri] = root.clone();
        let mut queue = VecDeque::from([ri]);
        while let Some(i) = queue.pop_front() {
            for k in &children[i] {
                let ki = index[k];
                if depth[ki] == usize::MAX {
                    depth[ki] = depth[i] + 1;
                    path[ki] = format!("{}/{}", path[i], k);
                    queue.push_back(ki);
                }
            }
        }

        // Transitive descendants, computed per tag by DFS (schemas are small).
        let child_idx: Vec<Vec<usize>> = children
            .iter()
            .map(|kids| kids.iter().map(|k| index[k]).collect())
            .collect();
        let mut descendants = vec![BTreeSet::new(); names.len()];
        for i in 0..names.len() {
            let mut seen = BTreeSet::new();
            let mut stack: Vec<usize> = child_idx[i].clone();
            while let Some(j) = stack.pop() {
                if seen.insert(j) {
                    stack.extend(child_idx[j].iter().copied());
                }
            }
            descendants[i] = seen;
        }

        let tags: Vec<TagInfo> = names
            .iter()
            .enumerate()
            .map(|(i, n)| TagInfo {
                name: n.clone(),
                depth: if depth[i] == usize::MAX { 0 } else { depth[i] },
                is_leaf: children[i].is_empty(),
                parents: parents[i].clone(),
                children: children[i].clone(),
                path: path[i].clone(),
            })
            .collect();

        Ok(SchemaTree {
            root,
            tags,
            index,
            descendants,
        })
    }

    /// The root tag name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// All tags in declaration order.
    pub fn tags(&self) -> impl Iterator<Item = &TagInfo> {
        self.tags.iter()
    }

    /// Number of tags in the schema.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if the schema has no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// All tag names in declaration order.
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(|t| t.name.as_str())
    }

    /// Looks up a tag's info.
    pub fn tag(&self, name: &str) -> Option<&TagInfo> {
        self.index.get(name).map(|&i| &self.tags[i])
    }

    /// Names of the non-leaf tags (tags with element content).
    pub fn non_leaf_tags(&self) -> impl Iterator<Item = &str> {
        self.tags
            .iter()
            .filter(|t| !t.is_leaf)
            .map(|t| t.name.as_str())
    }

    /// Maximum tag depth (the paper's Table 3 "Depth" column).
    pub fn max_depth(&self) -> usize {
        self.tags.iter().map(|t| t.depth).max().unwrap_or(0)
    }

    /// True if `inner` appears (transitively) below `outer`.
    pub fn is_nested_in(&self, inner: &str, outer: &str) -> bool {
        match (self.index.get(inner), self.index.get(outer)) {
            (Some(&ii), Some(&oi)) => self.descendants[oi].contains(&ii),
            _ => false,
        }
    }

    /// True if `inner` is a *direct* child of `outer`.
    pub fn is_child_of(&self, inner: &str, outer: &str) -> bool {
        self.tag(outer)
            .is_some_and(|t| t.children.iter().any(|c| c == inner))
    }

    /// True if `a` and `b` share at least one direct parent.
    pub fn are_siblings(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        match (self.tag(a), self.tag(b)) {
            (Some(ta), Some(tb)) => ta.parents.iter().any(|p| tb.parents.contains(p)),
            _ => false,
        }
    }

    /// For siblings `a` and `b` under a shared parent, the tags declared
    /// between them in content-model order. Empty if they are adjacent;
    /// `None` if they are not siblings.
    pub fn tags_between(&self, a: &str, b: &str) -> Option<Vec<String>> {
        if a == b {
            return None; // a tag is not its own sibling
        }
        let (ta, tb) = (self.tag(a)?, self.tag(b)?);
        let parent = ta.parents.iter().find(|p| tb.parents.contains(p))?;
        let siblings = &self.tag(parent)?.children;
        let ia = siblings.iter().position(|s| s == a)?;
        let ib = siblings.iter().position(|s| s == b)?;
        let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
        Some(siblings[lo + 1..hi].to_vec())
    }

    /// Number of distinct tags nestable (transitively) within `tag`. The
    /// paper (Section 6.3) uses this as the constraint-participation score
    /// that orders tags for user feedback and for the A* refinement order.
    pub fn nestable_count(&self, tag: &str) -> usize {
        self.index
            .get(tag)
            .map_or(0, |&i| self.descendants[i].len())
    }

    /// Tag names ordered by decreasing [`Self::nestable_count`], ties broken
    /// by declaration order — the feedback/search order of Section 6.3.
    pub fn tags_by_structure_score(&self) -> Vec<&str> {
        let mut order: Vec<usize> = (0..self.tags.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.descendants[i].len()));
        order
            .into_iter()
            .map(|i| self.tags[i].name.as_str())
            .collect()
    }

    /// The slash-joined path from the root to `tag` (first found by BFS).
    pub fn path_to(&self, tag: &str) -> Option<&str> {
        self.tag(tag).map(|t| t.path.as_str())
    }

    /// Distance between two tags in the undirected schema tree (number of
    /// edges on the path through their lowest common ancestor, using
    /// canonical BFS paths). Used by numeric proximity constraints.
    pub fn tree_distance(&self, a: &str, b: &str) -> Option<usize> {
        let pa: Vec<&str> = self.path_to(a)?.split('/').collect();
        let pb: Vec<&str> = self.path_to(b)?.split('/').collect();
        let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
        Some((pa.len() - common) + (pb.len() - common))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::parse_dtd;

    fn mediated() -> SchemaTree {
        let dtd = parse_dtd(
            "<!ELEMENT house-listing (location?, baths, beds, price, contact)>\n\
             <!ELEMENT location (#PCDATA)>\n\
             <!ELEMENT baths (#PCDATA)>\n\
             <!ELEMENT beds (#PCDATA)>\n\
             <!ELEMENT price (#PCDATA)>\n\
             <!ELEMENT contact (name, phone)>\n\
             <!ELEMENT name (#PCDATA)>\n\
             <!ELEMENT phone (#PCDATA)>",
        )
        .unwrap();
        SchemaTree::from_dtd(&dtd).unwrap()
    }

    #[test]
    fn basic_shape() {
        let s = mediated();
        assert_eq!(s.root(), "house-listing");
        assert_eq!(s.len(), 8);
        assert_eq!(s.max_depth(), 3);
        let non_leaf: Vec<&str> = s.non_leaf_tags().collect();
        assert_eq!(non_leaf, vec!["house-listing", "contact"]);
    }

    #[test]
    fn nesting_queries() {
        let s = mediated();
        assert!(s.is_nested_in("phone", "house-listing"));
        assert!(s.is_nested_in("phone", "contact"));
        assert!(!s.is_nested_in("contact", "phone"));
        assert!(!s.is_nested_in("price", "contact"));
        assert!(s.is_child_of("name", "contact"));
        assert!(!s.is_child_of("phone", "house-listing"));
    }

    #[test]
    fn sibling_queries() {
        let s = mediated();
        assert!(s.are_siblings("baths", "beds"));
        assert!(s.are_siblings("location", "price"));
        assert!(!s.are_siblings("name", "price"));
        assert!(!s.are_siblings("price", "price"));
    }

    #[test]
    fn tags_between_in_declaration_order() {
        let s = mediated();
        assert_eq!(
            s.tags_between("baths", "beds").unwrap(),
            Vec::<String>::new()
        );
        assert_eq!(
            s.tags_between("location", "price").unwrap(),
            vec!["baths", "beds"]
        );
        assert_eq!(
            s.tags_between("price", "location").unwrap(),
            vec!["baths", "beds"]
        );
        assert!(s.tags_between("name", "price").is_none());
    }

    #[test]
    fn structure_scores_order_tags() {
        let s = mediated();
        assert_eq!(s.nestable_count("house-listing"), 7);
        assert_eq!(s.nestable_count("contact"), 2);
        assert_eq!(s.nestable_count("price"), 0);
        let order = s.tags_by_structure_score();
        assert_eq!(order[0], "house-listing");
        assert_eq!(order[1], "contact");
    }

    #[test]
    fn paths_and_distance() {
        let s = mediated();
        assert_eq!(s.path_to("phone").unwrap(), "house-listing/contact/phone");
        assert_eq!(s.tree_distance("name", "phone"), Some(2));
        assert_eq!(s.tree_distance("price", "phone"), Some(3));
        assert_eq!(s.tree_distance("price", "price"), Some(0));
        assert_eq!(s.tree_distance("house-listing", "phone"), Some(2));
    }

    #[test]
    fn shared_tag_under_two_parents() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a, b)>\n<!ELEMENT a (x)>\n<!ELEMENT b (x)>\n<!ELEMENT x (#PCDATA)>",
        )
        .unwrap();
        let s = SchemaTree::from_dtd(&dtd).unwrap();
        let x = s.tag("x").unwrap();
        assert_eq!(x.parents, vec!["a", "b"]);
        assert!(s.is_nested_in("x", "a"));
        assert!(s.is_nested_in("x", "b"));
        assert_eq!(x.depth, 3);
    }

    #[test]
    fn unknown_tags_answer_negative() {
        let s = mediated();
        assert!(!s.is_nested_in("ghost", "house-listing"));
        assert!(!s.are_siblings("ghost", "price"));
        assert_eq!(s.tags_between("ghost", "price"), None);
        assert_eq!(s.nestable_count("ghost"), 0);
    }
}
