//! # lsd-xml
//!
//! XML substrate for the LSD schema matcher: a document model, a hand-rolled
//! parser for the XML subset the paper uses (elements, attributes, text,
//! comments, entity references), a DTD content-model grammar with a parser
//! for `<!ELEMENT ...>` declarations, document validation against a DTD, and
//! a [`SchemaTree`] abstraction that answers the structural questions the
//! constraint handler and the XML learner ask (nesting, siblings, paths,
//! depth).
//!
//! The paper (Section 2.1) treats attributes and sub-elements uniformly; we
//! preserve attributes in the model and expose
//! [`Element::attributes_as_children`] to realize that convention.
//!
//! ## Quick example
//!
//! ```
//! use lsd_xml::{parse_document, parse_dtd, SchemaTree};
//!
//! let doc = parse_document(
//!     "<house-listing><location>Seattle, WA</location>\
//!      <price>$70,000</price></house-listing>").unwrap();
//! assert_eq!(doc.root.name, "house-listing");
//! assert_eq!(doc.root.children.len(), 2);
//!
//! let dtd = parse_dtd(
//!     "<!ELEMENT house-listing (location?, price)>\n\
//!      <!ELEMENT location (#PCDATA)>\n\
//!      <!ELEMENT price (#PCDATA)>").unwrap();
//! let schema = SchemaTree::from_dtd(&dtd).unwrap();
//! assert!(schema.is_nested_in("location", "house-listing"));
//! assert!(dtd.validate(&doc.root).is_ok());
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod dtd;
mod error;
mod parser;
mod schema;
mod select;
mod span;
mod tree;
mod writer;

pub use dtd::{parse_dtd, AttDef, AttlistDecl, ContentModel, Dtd, ElementDecl, Occurrence};
pub use error::XmlError;
pub use parser::{parse_document, parse_fragment};
pub use schema::{SchemaTree, TagInfo};
pub use span::{Location, Span};
pub use tree::{Document, Element, Node};
pub use writer::{escape_text, write_element, write_element_pretty};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, XmlError>;
