//! In-memory XML document model.
//!
//! The model is deliberately simple: an [`Element`] has a name, an ordered
//! list of attributes, and an ordered list of child [`Node`]s (elements or
//! text runs). This matches the subset of XML the LSD paper works with —
//! data-centric documents with associated DTDs.

use serde::{Deserialize, Serialize};

/// A parsed XML document: a root element (prolog/comments are discarded).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The unique root element in which all others are nested.
    pub root: Element,
}

/// One node in an element's content: either a child element or a text run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A nested child element.
    Element(Element),
    /// A run of character data (entity references already resolved).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is an element.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: tag name, attributes, and ordered child nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Tag name, e.g. `house-listing`.
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates a leaf element wrapping a single text run.
    pub fn text_leaf(name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut e = Element::new(name);
        e.children.push(Node::Text(text.into()));
        e
    }

    /// Builder-style: appends a child element and returns `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: appends a text run and returns `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder-style: appends an attribute and returns `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Appends a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text run in place.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterates over child *elements* only, skipping text runs.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Returns the first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Returns all child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// True if the element contains no child elements (text only or empty).
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|c| matches!(c, Node::Text(_)))
    }

    /// Concatenates the direct text runs of this element (not descendants),
    /// trimming surrounding whitespace and separating runs with one space.
    pub fn direct_text(&self) -> String {
        join_text(self.children.iter().filter_map(Node::as_text))
    }

    /// Concatenates all text in the subtree rooted at this element, in
    /// document order, separating runs with one space.
    pub fn deep_text(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        collect_text(self, &mut parts);
        join_text(parts.into_iter())
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Per the paper's convention (Section 2.1), attributes are treated the
    /// same as sub-elements: this returns a copy of the element in which each
    /// attribute `n="v"` becomes a leading child `<n>v</n>`.
    pub fn attributes_as_children(&self) -> Element {
        let mut out = Element::new(self.name.clone());
        for (n, v) in &self.attributes {
            out.children
                .push(Node::Element(Element::text_leaf(n.clone(), v.clone())));
        }
        for c in &self.children {
            match c {
                Node::Element(e) => out.children.push(Node::Element(e.attributes_as_children())),
                Node::Text(t) => out.children.push(Node::Text(t.clone())),
            }
        }
        out
    }

    /// Number of elements in the subtree (including this one).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Maximum nesting depth of the subtree; a leaf has depth 1.
    pub fn depth(&self) -> usize {
        1 + self.child_elements().map(Element::depth).max().unwrap_or(0)
    }

    /// Visits every element in the subtree in document (pre-)order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Element)) {
        f(self);
        for c in self.child_elements() {
            c.visit(f);
        }
    }

    /// Collects `(path, element)` pairs for every element in the subtree,
    /// where `path` is the slash-joined list of tag names from this element
    /// down to the visited one (inclusive), e.g. `house-listing/contact/phone`.
    pub fn paths(&self) -> Vec<(String, &Element)> {
        let mut out = Vec::new();
        fn rec<'a>(e: &'a Element, prefix: &str, out: &mut Vec<(String, &'a Element)>) {
            let path = if prefix.is_empty() {
                e.name.clone()
            } else {
                format!("{prefix}/{}", e.name)
            };
            out.push((path.clone(), e));
            for c in e.child_elements() {
                rec(c, &path, out);
            }
        }
        rec(self, "", &mut out);
        out
    }
}

fn join_text<'a>(parts: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for p in parts {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(p);
    }
    out
}

fn collect_text<'a>(e: &'a Element, out: &mut Vec<&'a str>) {
    for c in &e.children {
        match c {
            Node::Text(t) => out.push(t),
            Node::Element(ch) => collect_text(ch, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing() -> Element {
        Element::new("house-listing")
            .with_child(Element::text_leaf("location", "Seattle, WA"))
            .with_child(Element::text_leaf("price", " $70,000 "))
            .with_child(
                Element::new("contact")
                    .with_child(Element::text_leaf("name", "Kate Richardson"))
                    .with_child(Element::text_leaf("phone", "(206) 523 4719")),
            )
    }

    #[test]
    fn builders_compose() {
        let e = listing();
        assert_eq!(e.name, "house-listing");
        assert_eq!(e.child_elements().count(), 3);
        assert_eq!(e.child("price").unwrap().direct_text(), "$70,000");
    }

    #[test]
    fn deep_text_concatenates_in_document_order() {
        let e = listing();
        assert_eq!(
            e.deep_text(),
            "Seattle, WA $70,000 Kate Richardson (206) 523 4719"
        );
    }

    #[test]
    fn direct_text_ignores_descendants() {
        let e = listing();
        assert_eq!(e.direct_text(), "");
        assert_eq!(e.child("location").unwrap().direct_text(), "Seattle, WA");
    }

    #[test]
    fn leaf_detection() {
        let e = listing();
        assert!(!e.is_leaf());
        assert!(e.child("location").unwrap().is_leaf());
        assert!(Element::new("empty").is_leaf());
    }

    #[test]
    fn subtree_size_and_depth() {
        let e = listing();
        assert_eq!(e.subtree_size(), 6);
        assert_eq!(e.depth(), 3);
        assert_eq!(Element::new("x").depth(), 1);
    }

    #[test]
    fn paths_enumerate_every_element() {
        let e = listing();
        let paths: Vec<String> = e.paths().into_iter().map(|(p, _)| p).collect();
        assert_eq!(
            paths,
            vec![
                "house-listing",
                "house-listing/location",
                "house-listing/price",
                "house-listing/contact",
                "house-listing/contact/name",
                "house-listing/contact/phone",
            ]
        );
    }

    #[test]
    fn attributes_become_children() {
        let e = Element::new("listing")
            .with_attr("id", "42")
            .with_child(Element::text_leaf("price", "$1"));
        let converted = e.attributes_as_children();
        assert_eq!(converted.child_elements().count(), 2);
        let first = converted.child_elements().next().unwrap();
        assert_eq!(first.name, "id");
        assert_eq!(first.direct_text(), "42");
    }

    #[test]
    fn children_named_filters() {
        let e = Element::new("r")
            .with_child(Element::text_leaf("a", "1"))
            .with_child(Element::text_leaf("b", "2"))
            .with_child(Element::text_leaf("a", "3"));
        let named: Vec<_> = e.children_named("a").map(|c| c.direct_text()).collect();
        assert_eq!(named, vec!["1", "3"]);
    }

    #[test]
    fn visit_preorder() {
        let e = listing();
        let mut names = Vec::new();
        e.visit(&mut |el| names.push(el.name.clone()));
        assert_eq!(names[0], "house-listing");
        assert_eq!(names.len(), 6);
        assert_eq!(names[3], "contact");
    }

    #[test]
    fn attribute_lookup() {
        let e = Element::new("x").with_attr("k", "v").with_attr("k2", "v2");
        assert_eq!(e.attribute("k"), Some("v"));
        assert_eq!(e.attribute("missing"), None);
    }
}
