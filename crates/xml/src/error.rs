use std::fmt;

/// Errors produced while parsing or validating XML documents and DTDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended before the parser finished a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A character that is not legal at the current position.
    UnexpectedChar {
        /// Byte offset into the input.
        offset: usize,
        /// The offending character.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// Closing tag does not match the open tag.
    MismatchedTag {
        /// Byte offset of the close tag.
        offset: usize,
        /// Name on the open tag.
        open: String,
        /// Name on the close tag.
        close: String,
    },
    /// An entity reference (`&...;`) that is not one of the five predefined
    /// XML entities or a numeric character reference.
    UnknownEntity {
        /// Byte offset of the reference.
        offset: usize,
        /// The entity name, without `&`/`;`.
        entity: String,
    },
    /// Trailing non-whitespace content after the root element.
    TrailingContent {
        /// Byte offset where the trailing content starts.
        offset: usize,
    },
    /// The document contains no root element.
    NoRootElement,
    /// A DTD declaration could not be parsed.
    InvalidDtd {
        /// Human-readable description of the problem.
        message: String,
    },
    /// The same element name is declared twice in one DTD.
    DuplicateElementDecl {
        /// The element name that is declared more than once.
        name: String,
    },
    /// A DTD references an element name with no `<!ELEMENT ...>` declaration.
    UndeclaredElement {
        /// The referenced-but-undeclared name.
        name: String,
    },
    /// A document element does not conform to the DTD content model.
    ValidationFailed {
        /// Name of the element whose content is invalid.
        element: String,
        /// Description of the violation.
        message: String,
    },
    /// The DTD has no unambiguous root (an element not contained by others).
    NoUniqueRoot {
        /// The candidate root names found (may be empty).
        candidates: Vec<String>,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::UnexpectedChar {
                offset,
                found,
                expected,
            } => {
                write!(
                    f,
                    "unexpected character {found:?} at offset {offset}, expected {expected}"
                )
            }
            XmlError::MismatchedTag {
                offset,
                open,
                close,
            } => {
                write!(
                    f,
                    "mismatched close tag </{close}> for <{open}> at offset {offset}"
                )
            }
            XmlError::UnknownEntity { offset, entity } => {
                write!(f, "unknown entity &{entity}; at offset {offset}")
            }
            XmlError::TrailingContent { offset } => {
                write!(f, "trailing content after root element at offset {offset}")
            }
            XmlError::NoRootElement => write!(f, "document contains no root element"),
            XmlError::InvalidDtd { message } => write!(f, "invalid DTD: {message}"),
            XmlError::DuplicateElementDecl { name } => {
                write!(f, "duplicate <!ELEMENT> declaration for {name}")
            }
            XmlError::UndeclaredElement { name } => {
                write!(f, "element {name} is referenced but never declared")
            }
            XmlError::ValidationFailed { element, message } => {
                write!(
                    f,
                    "element <{element}> does not match its content model: {message}"
                )
            }
            XmlError::NoUniqueRoot { candidates } => {
                write!(
                    f,
                    "DTD has no unique root element (candidates: {candidates:?})"
                )
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = XmlError::MismatchedTag {
            offset: 12,
            open: "a".into(),
            close: "b".into(),
        };
        let text = err.to_string();
        assert!(text.contains("</b>"));
        assert!(text.contains("<a>"));
        assert!(text.contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XmlError>();
    }
}
