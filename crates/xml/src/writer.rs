//! Serialization of the document model back to XML text.

use crate::tree::{Element, Node};
use std::fmt::Write;

/// Escapes the five XML special characters in text content.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serializes an element compactly (no inserted whitespace), suitable for
/// re-parsing. Round-trips with [`crate::parse_fragment`] for documents
/// whose text runs contain no leading/trailing whitespace.
pub fn write_element(element: &Element) -> String {
    let mut out = String::new();
    write_compact(element, &mut out);
    out
}

fn write_compact(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attributes {
        let _ = write!(out, " {n}=\"{}\"", escape_text(v));
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            Node::Element(ch) => write_compact(ch, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    let _ = write!(out, "</{}>", e.name);
}

/// Serializes an element with two-space indentation. Text-only (leaf)
/// elements stay on a single line.
pub fn write_element_pretty(element: &Element) -> String {
    let mut out = String::new();
    write_pretty(element, 0, &mut out);
    out
}

fn write_pretty(e: &Element, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attributes {
        let _ = write!(out, " {n}=\"{}\"", escape_text(v));
    }
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    if e.is_leaf() {
        let _ = writeln!(out, ">{}</{}>", escape_text(&e.direct_text()), e.name);
        return;
    }
    out.push_str(">\n");
    for c in &e.children {
        match c {
            Node::Element(ch) => write_pretty(ch, indent + 1, out),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    let _ = writeln!(out, "{pad}  {}", escape_text(t));
                }
            }
        }
    }
    let _ = writeln!(out, "{pad}</{}>", e.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fragment;

    #[test]
    fn escape_covers_all_specials() {
        assert_eq!(
            escape_text(r#"a&b<c>d"e'f"#),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f"
        );
    }

    #[test]
    fn compact_roundtrip() {
        let src =
            r#"<listing id="7"><price>$70,000</price><desc>big &amp; bright</desc></listing>"#;
        let e = parse_fragment(src).unwrap();
        let written = write_element(&e);
        let reparsed = parse_fragment(&written).unwrap();
        assert_eq!(e, reparsed);
    }

    #[test]
    fn empty_element_self_closes() {
        let e = parse_fragment("<a/>").unwrap();
        assert_eq!(write_element(&e), "<a/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let e = parse_fragment("<r><a>1</a><b><c>2</c></b></r>").unwrap();
        let s = write_element_pretty(&e);
        assert!(s.contains("  <a>1</a>\n"));
        assert!(s.contains("    <c>2</c>\n"));
        assert!(s.starts_with("<r>\n"));
        assert!(s.ends_with("</r>\n"));
    }

    #[test]
    fn pretty_output_reparses_equal_modulo_whitespace() {
        let e = parse_fragment("<r><a>one two</a><b><c>3</c></b></r>").unwrap();
        let reparsed = parse_fragment(&write_element_pretty(&e)).unwrap();
        assert_eq!(e, reparsed);
    }
}
