//! Byte-span source locations.
//!
//! The DTD parser stamps every declaration it produces with the byte range
//! it was parsed from, so downstream diagnostics (`lsd-analysis`) can point
//! back into the original text rustc-style. DTDs built programmatically
//! (e.g. by `lsd-datagen`) carry [`Span::SYNTHETIC`] instead; renderers
//! treat a synthetic span as "no source location available".

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the source text a construct
/// was parsed from.
///
/// Spans never participate in structural equality of the AST nodes that
/// carry them: two DTDs parsed from differently formatted text still
/// compare equal declaration-for-declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte of the construct.
    pub start: usize,
    /// Byte offset one past the last byte of the construct.
    pub end: usize,
}

impl Span {
    /// The span of a node that was built in memory rather than parsed.
    pub const SYNTHETIC: Span = Span { start: 0, end: 0 };

    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// True for nodes with no source location ([`Span::SYNTHETIC`]).
    pub fn is_synthetic(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The 1-based line and column of `self.start` within `text`, plus the
    /// full text of that line — everything a rustc-style renderer needs.
    /// Returns `None` when the span does not lie inside `text`.
    pub fn locate<'t>(&self, text: &'t str) -> Option<Location<'t>> {
        if self.start > text.len() || self.end > text.len() || self.start > self.end {
            return None;
        }
        let before = &text[..self.start];
        let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = text[self.start..]
            .find('\n')
            .map(|i| self.start + i)
            .unwrap_or(text.len());
        Some(Location {
            line: before.matches('\n').count() + 1,
            column: self.start - line_start + 1,
            line_text: &text[line_start..line_end],
            underline_len: self.len().min(line_end - self.start).max(1),
        })
    }
}

/// Where a [`Span`] falls within a source text (see [`Span::locate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location<'t> {
    /// 1-based line number of the span start.
    pub line: usize,
    /// 1-based column (in bytes) of the span start within its line.
    pub column: usize,
    /// The full text of that line, without the trailing newline.
    pub line_text: &'t str,
    /// How many bytes of the line the span covers (clipped to the line,
    /// at least 1).
    pub underline_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_and_len() {
        assert!(Span::SYNTHETIC.is_synthetic());
        assert!(Span::SYNTHETIC.is_empty());
        let s = Span::new(3, 8);
        assert!(!s.is_synthetic());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn locate_finds_line_and_column() {
        let text = "first line\n<!ELEMENT a (b)>\nlast";
        let start = text.find("<!ELEMENT").unwrap();
        let span = Span::new(start, start + 16);
        let loc = span.locate(text).unwrap();
        assert_eq!(loc.line, 2);
        assert_eq!(loc.column, 1);
        assert_eq!(loc.line_text, "<!ELEMENT a (b)>");
        assert_eq!(loc.underline_len, 16);
    }

    #[test]
    fn locate_clips_to_line() {
        let text = "ab\ncd";
        let span = Span::new(1, 5);
        let loc = span.locate(text).unwrap();
        assert_eq!(loc.line, 1);
        assert_eq!(loc.column, 2);
        assert_eq!(loc.underline_len, 1);
    }

    #[test]
    fn locate_rejects_out_of_bounds() {
        assert!(Span::new(3, 10).locate("ab").is_none());
    }
}
