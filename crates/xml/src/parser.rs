//! A hand-rolled parser for the XML subset used by LSD's data sources.
//!
//! Supported: elements, attributes (single- or double-quoted), text content,
//! the five predefined entities plus numeric character references, comments,
//! CDATA sections, XML declarations and processing instructions (skipped),
//! and inline `<!DOCTYPE ...>` declarations (skipped — DTDs are parsed
//! separately by [`crate::parse_dtd`]). Not supported: namespaces (the
//! paper's sources don't use them).

use crate::error::XmlError;
use crate::tree::{Document, Element, Node};
use crate::Result;

/// Parses a complete XML document. Exactly one root element is required;
/// anything but whitespace/comments/PIs around it is an error.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = match p.parse_element()? {
        Some(root) => root,
        None => return Err(XmlError::NoRootElement),
    };
    p.skip_misc()?;
    if !p.at_end() {
        return Err(XmlError::TrailingContent { offset: p.pos });
    }
    Ok(Document { root })
}

/// Parses a single element from a string that may have surrounding
/// whitespace but no prolog. Useful for tests and for embedding fragments.
pub fn parse_fragment(input: &str) -> Result<Element> {
    let mut p = Parser::new(input);
    p.skip_misc()?;
    let el = p.parse_element()?.ok_or(XmlError::NoRootElement)?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(XmlError::TrailingContent { offset: p.pos });
    }
    Ok(el)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Skips the XML declaration, DOCTYPE, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips whitespace, comments and PIs (used after the root element and
    /// around fragments).
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, marker: &'static str) -> Result<()> {
        match self.input[self.pos..].find(marker) {
            Some(rel) => {
                self.pos += rel + marker.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof {
                context: "comment or processing instruction",
            }),
        }
    }

    /// Skips `<!DOCTYPE ...>` including an optional internal subset `[...]`.
    fn skip_doctype(&mut self) -> Result<()> {
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof {
            context: "DOCTYPE declaration",
        })
    }

    /// Parses one element starting at `<`. Returns `Ok(None)` if the input
    /// does not start with an open tag.
    fn parse_element(&mut self) -> Result<Option<Element>> {
        if self.peek() != Some(b'<') {
            return Ok(None);
        }
        self.pos += 1;
        let name = self.parse_name("element name")?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(Some(element)); // self-closing
                    }
                    return Err(XmlError::UnexpectedChar {
                        offset: self.pos,
                        found: self.current_char(),
                        expected: "'>' after '/'",
                    });
                }
                Some(_) => {
                    let (an, av) = self.parse_attribute()?;
                    element.attributes.push((an, av));
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "open tag",
                    })
                }
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close_offset = self.pos;
                let close = self.parse_name("close tag name")?;
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::UnexpectedChar {
                        offset: self.pos,
                        found: self.current_char(),
                        expected: "'>' in close tag",
                    });
                }
                self.pos += 1;
                if close != element.name {
                    return Err(XmlError::MismatchedTag {
                        offset: close_offset,
                        open: element.name,
                        close,
                    });
                }
                return Ok(Some(element));
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + "<![CDATA[".len();
                match self.input[start..].find("]]>") {
                    Some(rel) => {
                        push_text(&mut element, self.input[start..start + rel].to_string());
                        self.pos = start + rel + 3;
                    }
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "CDATA section",
                        })
                    }
                }
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?.expect("peeked '<'");
                element.children.push(Node::Element(child));
            } else if self.at_end() {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                });
            } else {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    push_text(&mut element, text);
                }
            }
        }
    }

    fn current_char(&self) -> char {
        self.input[self.pos..].chars().next().unwrap_or('\u{0}')
    }

    fn parse_name(&mut self, context: &'static str) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            if self.at_end() {
                return Err(XmlError::UnexpectedEof { context });
            }
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.current_char(),
                expected: "a name character",
            });
        }
        let name = &self.input[start..self.pos];
        match name.chars().next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            first => {
                return Err(XmlError::UnexpectedChar {
                    offset: start,
                    found: first.unwrap_or('\0'),
                    expected: "a letter or '_' starting a name",
                });
            }
        }
        Ok(name.to_string())
    }

    fn parse_attribute(&mut self) -> Result<(String, String)> {
        let name = self.parse_name("attribute name")?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.current_char(),
                expected: "'=' after attribute name",
            });
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => {
                return Err(XmlError::UnexpectedChar {
                    offset: self.pos,
                    found: self.current_char(),
                    expected: "a quote starting an attribute value",
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof {
                    context: "attribute value",
                })
            }
        };
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok((name, value));
                }
                Some(b'&') => value.push(self.parse_entity()?),
                Some(_) => {
                    let c = self.current_char();
                    value.push(c);
                    self.pos += c.len_utf8();
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "attribute value",
                    })
                }
            }
        }
    }

    /// Parses text up to the next `<`, resolving entity references.
    fn parse_text(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'<') | None => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => {
                    let c = self.current_char();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses `&name;` / `&#NN;` / `&#xHH;` with the cursor on `&`.
    fn parse_entity(&mut self) -> Result<char> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = match self.input[self.pos..].find(';') {
            // Entities are short; a far-away ';' means the '&' is stray text.
            Some(rel) if rel <= 10 => self.pos + rel,
            _ => {
                return Err(XmlError::UnknownEntity {
                    offset: start,
                    entity: self.input[self.pos..].chars().take(8).collect(),
                })
            }
        };
        let body = &self.input[self.pos..end];
        self.pos = end + 1;
        let ch = match body {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                u32::from_str_radix(&body[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(XmlError::UnknownEntity {
                        offset: start,
                        entity: body.to_string(),
                    })?
            }
            _ if body.starts_with('#') => body[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or(XmlError::UnknownEntity {
                    offset: start,
                    entity: body.to_string(),
                })?,
            _ => {
                return Err(XmlError::UnknownEntity {
                    offset: start,
                    entity: body.to_string(),
                })
            }
        };
        Ok(ch)
    }
}

/// Appends text, merging with a trailing text node if present (so CDATA and
/// entity boundaries don't fragment logical text runs).
fn push_text(element: &mut Element, text: String) {
    if let Some(Node::Text(prev)) = element.children.last_mut() {
        prev.push_str(&text);
    } else {
        element.children.push(Node::Text(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let doc = parse_document(
            "<house-listing>\n  <location>Seattle, WA</location>\n  <price> $70,000</price>\n  \
             <contact><name>Kate Richardson</name>\n  <phone>(206) 523 4719</phone>\n  \
             </contact>\n</house-listing>",
        )
        .unwrap();
        assert_eq!(doc.root.name, "house-listing");
        assert_eq!(doc.root.child_elements().count(), 3);
        let contact = doc.root.child("contact").unwrap();
        assert_eq!(
            contact.child("phone").unwrap().direct_text(),
            "(206) 523 4719"
        );
    }

    #[test]
    fn resolves_entities() {
        let e = parse_fragment("<d>Tom &amp; Jerry &lt;3 &#65;&#x42;</d>").unwrap();
        assert_eq!(e.direct_text(), "Tom & Jerry <3 AB");
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse_fragment("<d>&nbsp;</d>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { entity, .. } if entity == "nbsp"));
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let e = parse_fragment(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("two & three"));
    }

    #[test]
    fn self_closing_tags() {
        let e = parse_fragment("<r><a/><b x='1'/></r>").unwrap();
        assert_eq!(e.child_elements().count(), 2);
        assert!(e.child("a").unwrap().is_leaf());
    }

    #[test]
    fn mismatched_close_tag_is_error() {
        let err = parse_fragment("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { open, close, .. }
            if open == "b" && close == "a"));
    }

    #[test]
    fn skips_prolog_doctype_comments_pis() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE listing [<!ELEMENT listing (#PCDATA)>]>\n\
             <!-- a comment -->\n<listing>hi</listing>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.root.direct_text(), "hi");
    }

    #[test]
    fn trailing_content_is_error() {
        let err = parse_document("<a/>junk").unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn cdata_passes_through_verbatim() {
        let e = parse_fragment("<d>before <![CDATA[<not> & parsed]]> after</d>").unwrap();
        assert_eq!(e.direct_text(), "before <not> & parsed after");
    }

    #[test]
    fn cdata_merges_with_adjacent_text() {
        let e = parse_fragment("<d>a<![CDATA[b]]>c</d>").unwrap();
        assert_eq!(e.children.len(), 1, "text runs should merge");
        assert_eq!(e.direct_text(), "abc");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let e = parse_fragment("<r>\n  <a>1</a>\n  <b>2</b>\n</r>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn comments_inside_content_are_skipped() {
        let e = parse_fragment("<d>a<!-- c -->b</d>").unwrap();
        assert_eq!(e.direct_text(), "ab");
    }

    #[test]
    fn empty_input_is_no_root() {
        assert!(matches!(
            parse_document("   "),
            Err(XmlError::NoRootElement)
        ));
    }

    #[test]
    fn unterminated_element_is_eof() {
        let err = parse_fragment("<a><b>text").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn unicode_text_roundtrips() {
        let e = parse_fragment("<d>café — ½ 語</d>").unwrap();
        assert_eq!(e.direct_text(), "café — ½ 語");
    }

    #[test]
    fn bad_name_start_rejected() {
        assert!(parse_fragment("<1abc/>").is_err());
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<n>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</n>");
        }
        let e = parse_fragment(&s).unwrap();
        assert_eq!(e.depth(), 200);
    }
}
