//! Property-based tests for the XML substrate.

use lsd_xml::{parse_fragment, write_element, ContentModel, Dtd, Element, ElementDecl, Occurrence};
use proptest::prelude::*;

/// A legal XML name.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

/// Text content without leading/trailing whitespace (the parser trims
/// whitespace-only runs, and pretty-printing normalizes edges).
fn arb_text() -> impl Strategy<Value = String> {
    "[ -~]{1,30}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

/// An arbitrary element tree of bounded depth and fanout. Children are
/// either elements or non-whitespace text runs (no two adjacent text runs:
/// the parser merges them, so round-tripping requires that normal form).
fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), prop::option::of(arb_text())).prop_map(|(name, text)| match text {
        Some(t) => Element::text_leaf(name, t),
        None => Element::new(name),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec(inner, 1..4),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
        )
            .prop_map(|(name, children, attrs)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    // Attribute names must be unique per element.
                    if e.attribute(&n).is_none() {
                        e.attributes.push((n, v));
                    }
                }
                for c in children {
                    e.push_child(c);
                }
                e
            })
    })
}

proptest! {
    /// write → parse is the identity on normalized element trees.
    #[test]
    fn write_parse_roundtrip(e in arb_element()) {
        let text = write_element(&e);
        let parsed = parse_fragment(&text).expect("own output must parse");
        prop_assert_eq!(parsed, e);
    }

    /// Writing is deterministic and parsing it again is stable (idempotent
    /// normal form).
    #[test]
    fn write_is_stable(e in arb_element()) {
        let once = write_element(&e);
        let twice = write_element(&parse_fragment(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    /// Structural statistics are consistent: subtree size bounds depth and
    /// path count equals subtree size.
    #[test]
    fn structural_invariants(e in arb_element()) {
        prop_assert!(e.depth() <= e.subtree_size());
        prop_assert_eq!(e.paths().len(), e.subtree_size());
    }
}

/// A random content model over a fixed small alphabet, plus a generator of
/// conforming child sequences.
#[derive(Debug, Clone)]
enum ModelSpec {
    Name(usize, Occurrence),
    Seq(Vec<ModelSpec>, Occurrence),
    Choice(Vec<ModelSpec>, Occurrence),
}

const ALPHABET: [&str; 4] = ["a", "b", "c", "d"];

fn arb_occurrence() -> impl Strategy<Value = Occurrence> {
    prop_oneof![
        Just(Occurrence::One),
        Just(Occurrence::Optional),
        Just(Occurrence::ZeroOrMore),
        Just(Occurrence::OneOrMore),
    ]
}

fn arb_model() -> impl Strategy<Value = ModelSpec> {
    let leaf = (0usize..ALPHABET.len(), arb_occurrence()).prop_map(|(i, o)| ModelSpec::Name(i, o));
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (prop::collection::vec(inner.clone(), 1..4), arb_occurrence())
                .prop_map(|(parts, o)| ModelSpec::Seq(parts, o)),
            (prop::collection::vec(inner, 1..4), arb_occurrence())
                .prop_map(|(parts, o)| ModelSpec::Choice(parts, o)),
        ]
    })
}

impl ModelSpec {
    fn to_model(&self) -> ContentModel {
        match self {
            ModelSpec::Name(i, o) => ContentModel::Name(ALPHABET[*i].to_string(), *o),
            ModelSpec::Seq(parts, o) => {
                ContentModel::Seq(parts.iter().map(ModelSpec::to_model).collect(), *o)
            }
            ModelSpec::Choice(parts, o) => {
                ContentModel::Choice(parts.iter().map(ModelSpec::to_model).collect(), *o)
            }
        }
    }

    /// Emits one conforming child-name sequence, using `picks` as a stream
    /// of pseudo-random decisions.
    fn emit(&self, picks: &mut impl Iterator<Item = u8>, out: &mut Vec<&'static str>) {
        let occ = match self {
            ModelSpec::Name(_, o) | ModelSpec::Seq(_, o) | ModelSpec::Choice(_, o) => *o,
        };
        let reps = match occ {
            Occurrence::One => 1,
            Occurrence::Optional => (picks.next().unwrap_or(0) % 2) as usize,
            Occurrence::ZeroOrMore => (picks.next().unwrap_or(0) % 3) as usize,
            Occurrence::OneOrMore => 1 + (picks.next().unwrap_or(0) % 2) as usize,
        };
        for _ in 0..reps {
            match self {
                ModelSpec::Name(i, _) => out.push(ALPHABET[*i]),
                ModelSpec::Seq(parts, _) => {
                    for p in parts {
                        p.emit(picks, out);
                    }
                }
                ModelSpec::Choice(parts, _) => {
                    let k = picks.next().unwrap_or(0) as usize % parts.len();
                    parts[k].emit(picks, out);
                }
            }
        }
    }
}

proptest! {
    /// Every sequence generated *from* a content model validates *against*
    /// that model.
    #[test]
    fn conforming_sequences_validate(spec in arb_model(), picks in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut decls = vec![ElementDecl::new("root", spec.to_model())];
        for name in ALPHABET {
            decls.push(ElementDecl::new(name, ContentModel::Pcdata));
        }
        let dtd = Dtd::new(decls).expect("no duplicate names");

        let mut names = Vec::new();
        let mut stream = picks.into_iter();
        spec.emit(&mut stream, &mut names);
        // Keep the test tractable for pathological star nestings.
        prop_assume!(names.len() <= 64);

        let mut root = Element::new("root");
        for n in &names {
            root.push_child(Element::text_leaf(*n, "x"));
        }
        dtd.validate(&root).map_err(|e| {
            TestCaseError::fail(format!("{names:?} should match {}: {e}",
                dtd.decl("root").expect("declared root").content.to_dtd_syntax()))
        })?;
    }

    /// DTD syntax round-trips: after one parse pass (which canonicalizes
    /// redundant single-particle groups), render → parse → render is the
    /// identity.
    #[test]
    fn dtd_syntax_roundtrip(spec in arb_model()) {
        let decls = vec![ElementDecl::new("root", spec.to_model())];
        let dtd = Dtd::new(decls).expect("single decl");
        let canonical = lsd_xml::parse_dtd(&dtd.to_dtd_syntax()).expect("own syntax must parse");
        let rendered = canonical.to_dtd_syntax();
        let reparsed = lsd_xml::parse_dtd(&rendered).expect("canonical syntax must parse");
        prop_assert_eq!(reparsed.to_dtd_syntax(), rendered);
        prop_assert_eq!(reparsed, canonical);
    }
}
