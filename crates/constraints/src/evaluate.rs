//! The cost model over candidate mappings (paper Section 4.2).
//!
//! A candidate mapping `m = ⟨e₁:c_i1, …, e_q:c_iq⟩` has cost
//! `cost(m) = Σᵢ λᵢ·cost(m,Tᵢ) − α·log prob(m)` where
//! `prob(m) = Πⱼ s(c_ij|eⱼ, PC)` uses the prediction-converter scores.
//! Hard-constraint violations make the cost infinite.
//!
//! [`evaluate_partial`] also scores *partial* assignments, counting only
//! violations that are already certain; since constraints can only add cost
//! as more tags are assigned, the partial cost is a lower bound on any
//! completion — which is exactly what the A\* heuristic needs.

use crate::constraint::{ConstraintKind, DomainConstraint, Predicate};
use crate::source_data::SourceData;
use lsd_learn::{LabelSet, Prediction};
use lsd_xml::SchemaTree;

/// Cost of a mapping violating a hard constraint.
pub const INFEASIBLE: f64 = f64::INFINITY;

/// Scores below this are clamped before taking logs, so a zero-probability
/// prediction costs a lot but stays finite (hard infeasibility is reserved
/// for hard constraints).
const MIN_SCORE: f64 = 1e-9;

/// Everything the constraint handler knows about one target source.
pub struct MatchingContext<'a> {
    /// The mediated-schema labels (including OTHER).
    pub labels: &'a LabelSet,
    /// The source schema tree.
    pub schema: &'a SchemaTree,
    /// The source tags to be assigned, parallel to `predictions`.
    pub tags: Vec<String>,
    /// Prediction-converter output per tag.
    pub predictions: Vec<Prediction>,
    /// Extracted data, for column constraints.
    pub data: &'a SourceData,
    /// Weight α of the `−log prob(m)` term.
    pub alpha: f64,
}

impl<'a> MatchingContext<'a> {
    /// Index of a source tag in `tags`.
    pub fn tag_index(&self, tag: &str) -> Option<usize> {
        self.tags.iter().position(|t| t == tag)
    }

    /// The `−α·log prob` contribution of assigning `label` to tag `t`.
    pub fn assignment_cost(&self, t: usize, label: usize) -> f64 {
        -self.alpha * self.predictions[t].score(label).max(MIN_SCORE).ln()
    }

    /// The cheapest possible `−α·log prob` contribution of tag `t` — the
    /// admissible per-tag heuristic value.
    pub fn best_assignment_cost(&self, t: usize) -> f64 {
        let best = self.predictions[t]
            .scores()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        -self.alpha * best.max(MIN_SCORE).ln()
    }
}

/// Evaluates a (possibly partial) assignment: `assignment[t]` is the label
/// of `ctx.tags[t]`, or `None` if not yet assigned. Returns the total cost —
/// probability term over assigned tags plus the cost of every
/// definitely-violated constraint — or [`INFEASIBLE`] if a hard constraint
/// is definitely violated.
pub fn evaluate_partial(
    ctx: &MatchingContext<'_>,
    constraints: &[DomainConstraint],
    assignment: &[Option<usize>],
) -> f64 {
    debug_assert_eq!(assignment.len(), ctx.tags.len());
    let mut cost = 0.0;
    for (t, label) in assignment.iter().enumerate() {
        if let Some(l) = label {
            cost += ctx.assignment_cost(t, *l);
        }
    }
    let complete = assignment.iter().all(Option::is_some);
    for c in constraints {
        let violation = violation_measure(ctx, &c.predicate, assignment, complete);
        if violation <= 0.0 {
            continue;
        }
        match c.kind {
            ConstraintKind::Hard => return INFEASIBLE,
            ConstraintKind::SoftBinary { cost: unit } => cost += unit,
            ConstraintKind::SoftNumeric { weight } => cost += weight * violation,
        }
    }
    cost
}

/// How violated a predicate is under the partial assignment: 0 when
/// satisfied (or not yet decidable), a positive measure otherwise. For most
/// predicates the measure is a violation count; for [`Predicate::Proximity`]
/// it is the schema-tree distance beyond the minimum possible (2 =
/// siblings).
fn violation_measure(
    ctx: &MatchingContext<'_>,
    predicate: &Predicate,
    assignment: &[Option<usize>],
    complete: bool,
) -> f64 {
    // Tags currently assigned to the given label name.
    let tags_with = |label: &str| -> Vec<usize> {
        match ctx.labels.get(label) {
            Some(lid) => assignment
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(lid))
                .map(|(t, _)| t)
                .collect(),
            None => Vec::new(),
        }
    };

    match predicate {
        Predicate::AtMostOne { label } => {
            let n = tags_with(label).len();
            if n > 1 {
                (n - 1) as f64
            } else {
                0.0
            }
        }
        Predicate::ExactlyOne { label } => {
            if ctx.labels.get(label).is_none() {
                return 0.0; // unknown label: the constraint is vacuous
            }
            let n = tags_with(label).len();
            if n > 1 {
                (n - 1) as f64
            } else if n == 0 && complete {
                1.0
            } else {
                0.0
            }
        }
        Predicate::NestedIn { outer, inner } => {
            let mut v = 0usize;
            for &a in &tags_with(outer) {
                for &b in &tags_with(inner) {
                    if !ctx.schema.is_nested_in(&ctx.tags[b], &ctx.tags[a]) {
                        v += 1;
                    }
                }
            }
            v as f64
        }
        Predicate::NotNestedIn { outer, inner } => {
            let mut v = 0usize;
            for &a in &tags_with(outer) {
                for &b in &tags_with(inner) {
                    if ctx.schema.is_nested_in(&ctx.tags[b], &ctx.tags[a]) {
                        v += 1;
                    }
                }
            }
            v as f64
        }
        Predicate::Contiguous { a, b } => {
            let other = ctx.labels.other();
            let mut v = 0usize;
            for &ta in &tags_with(a) {
                for &tb in &tags_with(b) {
                    match ctx.schema.tags_between(&ctx.tags[ta], &ctx.tags[tb]) {
                        None => v += 1, // not siblings
                        Some(between) => {
                            for name in &between {
                                if let Some(t) = ctx.tag_index(name) {
                                    if matches!(assignment[t], Some(l) if l != other) {
                                        v += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            v as f64
        }
        Predicate::MutuallyExclusive { a, b } => {
            if !tags_with(a).is_empty() && !tags_with(b).is_empty() {
                1.0
            } else {
                0.0
            }
        }
        Predicate::IsKey { label } => tags_with(label)
            .iter()
            .filter(|&&t| ctx.data.has_duplicates(&ctx.tags[t]))
            .count() as f64,
        Predicate::FunctionalDependency {
            determinants,
            dependent,
        } => {
            // First assigned tag per determinant label; decidable only when
            // every determinant and the dependent are present.
            let det_tags: Option<Vec<usize>> = determinants
                .iter()
                .map(|d| tags_with(d).first().copied())
                .collect();
            let dep_tag = tags_with(dependent).first().copied();
            match (det_tags, dep_tag) {
                (Some(dets), Some(dep)) => {
                    let det_names: Vec<&str> = dets.iter().map(|&t| ctx.tags[t].as_str()).collect();
                    if ctx.data.fd_refuted(&det_names, &ctx.tags[dep]) {
                        1.0
                    } else {
                        0.0
                    }
                }
                _ => 0.0,
            }
        }
        Predicate::AtMostK { label, k } => {
            let n = tags_with(label).len();
            if n > *k {
                (n - k) as f64
            } else {
                0.0
            }
        }
        Predicate::Proximity { a, b } => {
            let mut measure = 0.0;
            for &ta in &tags_with(a) {
                for &tb in &tags_with(b) {
                    if let Some(d) = ctx.schema.tree_distance(&ctx.tags[ta], &ctx.tags[tb]) {
                        // Siblings are distance 2 — the closest two distinct
                        // tags can be — so only the excess costs anything.
                        measure += (d.saturating_sub(2)) as f64;
                    }
                }
            }
            measure
        }
        Predicate::IsNumeric { label } => tags_with(label)
            .iter()
            .filter(|&&t| {
                ctx.data
                    .numeric_fraction(&ctx.tags[t])
                    .is_some_and(|f| f < 0.5)
            })
            .count() as f64,
        Predicate::IsTextual { label } => tags_with(label)
            .iter()
            .filter(|&&t| {
                ctx.data
                    .numeric_fraction(&ctx.tags[t])
                    .is_some_and(|f| f > 0.5)
            })
            .count() as f64,
        Predicate::TagIs { tag, label } => match (ctx.tag_index(tag), ctx.labels.get(label)) {
            (Some(t), Some(lid)) => {
                if matches!(assignment[t], Some(l) if l != lid) {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 0.0,
        },
        Predicate::TagIsNot { tag, label } => match (ctx.tag_index(tag), ctx.labels.get(label)) {
            (Some(t), Some(lid)) if assignment[t] == Some(lid) => 1.0,
            _ => 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_dtd;

    fn schema() -> SchemaTree {
        let dtd = parse_dtd(
            "<!ELEMENT listing (area, baths, extra, beds, agent)>\n\
             <!ELEMENT area (#PCDATA)>\n\
             <!ELEMENT baths (#PCDATA)>\n\
             <!ELEMENT extra (#PCDATA)>\n\
             <!ELEMENT beds (#PCDATA)>\n\
             <!ELEMENT agent (name, phone)>\n\
             <!ELEMENT name (#PCDATA)>\n\
             <!ELEMENT phone (#PCDATA)>",
        )
        .unwrap();
        SchemaTree::from_dtd(&dtd).unwrap()
    }

    fn labels() -> LabelSet {
        LabelSet::new([
            "ADDRESS",
            "BATHS",
            "BEDS",
            "AGENT-INFO",
            "AGENT-NAME",
            "AGENT-PHONE",
        ])
    }

    struct Fixture {
        labels: LabelSet,
        schema: SchemaTree,
        data: SourceData,
    }

    impl Fixture {
        fn new() -> Self {
            let schema = schema();
            let mut data =
                SourceData::new(schema.tag_names().map(str::to_string).collect::<Vec<_>>());
            data.push_row([
                ("area", "Miami, FL"),
                ("baths", "2"),
                ("beds", "3"),
                ("phone", "(305) 111 2222"),
            ]);
            data.push_row([
                ("area", "Boston, MA"),
                ("baths", "2"),
                ("beds", "4"),
                ("phone", "(617) 333 4444"),
            ]);
            Fixture {
                labels: labels(),
                schema,
                data,
            }
        }

        fn ctx(&self) -> MatchingContext<'_> {
            let tags: Vec<String> = ["area", "baths", "extra", "beds", "agent", "name", "phone"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let n = self.labels.len();
            let predictions = vec![Prediction::uniform(n); tags.len()];
            MatchingContext {
                labels: &self.labels,
                schema: &self.schema,
                tags,
                predictions,
                data: &self.data,
                alpha: 1.0,
            }
        }
    }

    /// Builds an assignment from `(tag, label_name)` pairs.
    fn assign(ctx: &MatchingContext<'_>, pairs: &[(&str, &str)]) -> Vec<Option<usize>> {
        let mut a = vec![None; ctx.tags.len()];
        for (tag, label) in pairs {
            a[ctx.tag_index(tag).unwrap()] = Some(ctx.labels.get(label).unwrap());
        }
        a
    }

    #[test]
    fn probability_term_prefers_confident_assignments() {
        let f = Fixture::new();
        let mut ctx = f.ctx();
        let n = f.labels.len();
        ctx.predictions[0] = Prediction::from_scores({
            let mut s = vec![0.01; n];
            s[0] = 1.0;
            s
        });
        let confident = assign(&ctx, &[("area", "ADDRESS")]);
        let unlikely = assign(&ctx, &[("area", "BATHS")]);
        let c1 = evaluate_partial(&ctx, &[], &confident);
        let c2 = evaluate_partial(&ctx, &[], &unlikely);
        assert!(c1 < c2);
    }

    #[test]
    fn at_most_one_violated_by_two() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::AtMostOne {
            label: "ADDRESS".into(),
        })];
        let ok = assign(&ctx, &[("area", "ADDRESS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
        let bad = assign(&ctx, &[("area", "ADDRESS"), ("extra", "ADDRESS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
    }

    #[test]
    fn exactly_one_checked_only_on_completion() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::ExactlyOne {
            label: "BATHS".into(),
        })];
        // Partial assignment without BATHS: not yet a violation.
        let partial = assign(&ctx, &[("area", "ADDRESS")]);
        assert!(evaluate_partial(&ctx, &cs, &partial).is_finite());
        // Complete assignment without BATHS: violated.
        let mut complete = vec![Some(ctx.labels.other()); ctx.tags.len()];
        assert_eq!(evaluate_partial(&ctx, &cs, &complete), INFEASIBLE);
        // Complete with exactly one BATHS: fine.
        complete[ctx.tag_index("baths").unwrap()] = Some(ctx.labels.get("BATHS").unwrap());
        assert!(evaluate_partial(&ctx, &cs, &complete).is_finite());
    }

    #[test]
    fn nesting_constraint() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::NestedIn {
            outer: "AGENT-INFO".into(),
            inner: "AGENT-NAME".into(),
        })];
        let ok = assign(&ctx, &[("agent", "AGENT-INFO"), ("name", "AGENT-NAME")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
        let bad = assign(&ctx, &[("agent", "AGENT-INFO"), ("area", "AGENT-NAME")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
    }

    #[test]
    fn negative_nesting_constraint() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::NotNestedIn {
            outer: "AGENT-INFO".into(),
            inner: "ADDRESS".into(),
        })];
        let bad = assign(&ctx, &[("agent", "AGENT-INFO"), ("phone", "ADDRESS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
        let ok = assign(&ctx, &[("agent", "AGENT-INFO"), ("area", "ADDRESS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
    }

    #[test]
    fn contiguity_requires_siblings_and_other_between() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::Contiguous {
            a: "BATHS".into(),
            b: "BEDS".into(),
        })];
        // baths and beds are siblings with "extra" between them.
        let ok = assign(&ctx, &[("baths", "BATHS"), ("beds", "BEDS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
        // The tag between them assigned non-OTHER: violation.
        let bad = assign(
            &ctx,
            &[("baths", "BATHS"), ("beds", "BEDS"), ("extra", "ADDRESS")],
        );
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
        // Between-tag explicitly OTHER: fine.
        let mut okay2 = assign(&ctx, &[("baths", "BATHS"), ("beds", "BEDS")]);
        okay2[ctx.tag_index("extra").unwrap()] = Some(ctx.labels.other());
        assert!(evaluate_partial(&ctx, &cs, &okay2).is_finite());
        // Non-siblings matching the pair: violation.
        let bad2 = assign(&ctx, &[("baths", "BATHS"), ("phone", "BEDS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad2), INFEASIBLE);
    }

    #[test]
    fn exclusivity() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::MutuallyExclusive {
            a: "BATHS".into(),
            b: "BEDS".into(),
        })];
        let bad = assign(&ctx, &[("baths", "BATHS"), ("beds", "BEDS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
        let ok = assign(&ctx, &[("baths", "BATHS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
    }

    #[test]
    fn key_constraint_uses_data() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::IsKey {
            label: "BATHS".into(),
        })];
        // "baths" column is [2, 2]: duplicates → cannot be a key.
        let bad = assign(&ctx, &[("baths", "BATHS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
        // "phone" column is unique.
        let ok = assign(&ctx, &[("phone", "BATHS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
    }

    #[test]
    fn fd_constraint_uses_data() {
        let mut f = Fixture::new();
        // beds functionally determines baths? rows: (3→2), (4→2) — holds.
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::FunctionalDependency {
            determinants: vec!["BEDS".into()],
            dependent: "BATHS".into(),
        })];
        let ok = assign(&ctx, &[("beds", "BEDS"), ("baths", "BATHS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
        drop(ctx);
        // Add a refuting row: same beds, different baths.
        f.data.push_row([("beds", "3"), ("baths", "99")]);
        let ctx = f.ctx();
        let bad = assign(&ctx, &[("beds", "BEDS"), ("baths", "BATHS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad), INFEASIBLE);
    }

    #[test]
    fn soft_binary_adds_finite_cost() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::soft(Predicate::AtMostK {
            label: "ADDRESS".into(),
            k: 1,
        })];
        let one = assign(&ctx, &[("area", "ADDRESS")]);
        let two = assign(&ctx, &[("area", "ADDRESS"), ("extra", "ADDRESS")]);
        let c1 = evaluate_partial(&ctx, &cs, &one);
        let c2 = evaluate_partial(&ctx, &cs, &two);
        assert!(c2.is_finite());
        // Same probability cost per tag (uniform), so the delta is the soft cost.
        let base_two = evaluate_partial(&ctx, &[], &two);
        assert!((c2 - base_two - 1.0).abs() < 1e-9);
        assert!(c1.is_finite());
    }

    #[test]
    fn proximity_scales_with_distance() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::numeric(
            Predicate::Proximity {
                a: "AGENT-NAME".into(),
                b: "AGENT-PHONE".into(),
            },
            1.0,
        )];
        // name & phone are siblings (distance 2 → excess 0).
        let close = assign(&ctx, &[("name", "AGENT-NAME"), ("phone", "AGENT-PHONE")]);
        // area & phone are distance 3 (area–listing–agent–phone) → excess 1.
        let far = assign(&ctx, &[("area", "AGENT-NAME"), ("phone", "AGENT-PHONE")]);
        let cc = evaluate_partial(&ctx, &cs, &close) - evaluate_partial(&ctx, &[], &close);
        let cf = evaluate_partial(&ctx, &cs, &far) - evaluate_partial(&ctx, &[], &far);
        assert!((cc - 0.0).abs() < 1e-9, "{cc}");
        assert!((cf - 1.0).abs() < 1e-9, "{cf}");
    }

    #[test]
    fn type_constraints_prune_by_data() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let numeric = [DomainConstraint::hard(Predicate::IsNumeric {
            label: "BATHS".into(),
        })];
        // "area" values are textual → IsNumeric violated.
        let bad = assign(&ctx, &[("area", "BATHS")]);
        assert_eq!(evaluate_partial(&ctx, &numeric, &bad), INFEASIBLE);
        let ok = assign(&ctx, &[("baths", "BATHS")]);
        assert!(evaluate_partial(&ctx, &numeric, &ok).is_finite());

        let textual = [DomainConstraint::hard(Predicate::IsTextual {
            label: "ADDRESS".into(),
        })];
        let bad = assign(&ctx, &[("beds", "ADDRESS")]);
        assert_eq!(evaluate_partial(&ctx, &textual, &bad), INFEASIBLE);
    }

    #[test]
    fn feedback_constraints() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [
            DomainConstraint::hard(Predicate::TagIs {
                tag: "area".into(),
                label: "ADDRESS".into(),
            }),
            DomainConstraint::hard(Predicate::TagIsNot {
                tag: "extra".into(),
                label: "ADDRESS".into(),
            }),
        ];
        let ok = assign(&ctx, &[("area", "ADDRESS")]);
        assert!(evaluate_partial(&ctx, &cs, &ok).is_finite());
        let bad1 = assign(&ctx, &[("area", "BATHS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad1), INFEASIBLE);
        let bad2 = assign(&ctx, &[("extra", "ADDRESS")]);
        assert_eq!(evaluate_partial(&ctx, &cs, &bad2), INFEASIBLE);
    }

    #[test]
    fn unknown_labels_in_constraints_are_inert() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let cs = [DomainConstraint::hard(Predicate::AtMostOne {
            label: "NO-SUCH-LABEL".into(),
        })];
        let a = assign(&ctx, &[("area", "ADDRESS")]);
        assert!(evaluate_partial(&ctx, &cs, &a).is_finite());
    }

    #[test]
    fn empty_assignment_costs_nothing() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let a = vec![None; ctx.tags.len()];
        assert_eq!(evaluate_partial(&ctx, &[], &a), 0.0);
    }
}
