//! Search for the least-cost candidate mapping (paper Section 4.2).
//!
//! LSD uses A\* over the space of label assignments: tags are refined in
//! decreasing structure-score order (the same order used for user feedback,
//! Section 6.3), the path cost `g` is the partial-mapping cost from
//! [`crate::evaluate_partial`], and the admissible heuristic `h` is the sum
//! over unassigned tags of their cheapest possible `−α·log s` contribution
//! (constraints can only *add* cost, so `h` never overestimates).
//!
//! Because the paper notes the handler can take minutes on large schemas,
//! the A\* expansion count is capped; on overflow the best frontier node is
//! completed greedily. Beam search and pure greedy are provided as the
//! ablation baselines (`ablation_search` bench).

use crate::compiled::{CompiledConstraintSet, Evaluator, Scratch};
use crate::constraint::DomainConstraint;
#[cfg(test)]
use crate::evaluate::evaluate_partial;
use crate::evaluate::{MatchingContext, INFEASIBLE};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which search algorithm the constraint handler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchAlgorithm {
    /// A\* with an expansion cap (the paper's algorithm).
    AStar {
        /// Maximum node expansions before falling back to greedy
        /// completion of the best frontier node.
        max_expansions: usize,
    },
    /// Level-synchronous beam search keeping the best `width` partial
    /// assignments per level.
    Beam {
        /// Beam width.
        width: usize,
    },
    /// Sequential greedy: each tag takes the feasible label with the lowest
    /// incremental cost.
    Greedy,
}

impl Default for SearchAlgorithm {
    fn default() -> Self {
        SearchAlgorithm::AStar {
            max_expansions: 20_000,
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchConfig {
    /// The algorithm to run.
    pub algorithm: SearchAlgorithm,
    /// Heuristic inflation ε for weighted A\* (`f = g + ε·h`). With ε = 1
    /// the search is admissible and the returned mapping provably optimal,
    /// but on large schemas with flat prediction scores the frontier
    /// explodes (the paper reports constraint-handler runtimes up to 20
    /// minutes). ε slightly above 1 trades the optimality proof for
    /// rapid convergence; 1.2 is the default.
    pub heuristic_weight: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            algorithm: SearchAlgorithm::default(),
            heuristic_weight: 1.2,
        }
    }
}

/// Counters describing one search run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Nodes expanded (popped and branched).
    pub expansions: usize,
    /// Child nodes generated (after feasibility pruning).
    pub generated: usize,
    /// Child nodes rejected before entering the frontier (hard-constraint
    /// infeasibility or a missed mandatory-label deadline).
    #[serde(default)]
    pub pruned: usize,
    /// True if the result is provably the least-cost mapping (A\* completed
    /// within its expansion budget).
    pub optimal: bool,
}

/// Per-`(tag, label)` event counters from one search run, the provenance
/// behind [`SearchStats`]' totals: how often each pairing entered the
/// frontier and how often (and why) it was pruned. Flat-indexed
/// `tag * num_labels + label`; all-zero when no search ran (a mandatory
/// label with no candidate tag dooms the search before it starts). When
/// the search ran but failed and the handler fell back to argmax, the
/// counters keep the failed run's prune history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchEvents {
    /// Label-space width (row stride of the flattened tables).
    pub num_labels: usize,
    /// `generated[t * num_labels + l]` — times assigning label `l` to tag
    /// `t` produced a frontier node.
    pub generated: Vec<u64>,
    /// Times the pairing was pruned for missing a mandatory-label deadline.
    pub pruned_deadline: Vec<u64>,
    /// Times the pairing was pruned as hard-constraint infeasible.
    pub pruned_infeasible: Vec<u64>,
}

impl SearchEvents {
    /// All-zero tables for `tags` tags over `labels` labels.
    pub fn new(tags: usize, labels: usize) -> SearchEvents {
        SearchEvents {
            num_labels: labels,
            generated: vec![0; tags * labels],
            pruned_deadline: vec![0; tags * labels],
            pruned_infeasible: vec![0; tags * labels],
        }
    }

    fn idx(&self, tag: usize, label: usize) -> usize {
        tag * self.num_labels + label
    }

    /// Frontier-node count for a `(tag, label)` pairing (0 out of range).
    pub fn generated_for(&self, tag: usize, label: usize) -> u64 {
        self.generated
            .get(self.idx(tag, label))
            .copied()
            .unwrap_or(0)
    }

    /// Deadline-prune count for a `(tag, label)` pairing (0 out of range).
    pub fn pruned_deadline_for(&self, tag: usize, label: usize) -> u64 {
        self.pruned_deadline
            .get(self.idx(tag, label))
            .copied()
            .unwrap_or(0)
    }

    /// Infeasibility-prune count for a `(tag, label)` pairing (0 out of
    /// range).
    pub fn pruned_infeasible_for(&self, tag: usize, label: usize) -> u64 {
        self.pruned_infeasible
            .get(self.idx(tag, label))
            .copied()
            .unwrap_or(0)
    }

    /// True when no search ran (the argmax fallback) or nothing happened.
    pub fn is_empty(&self) -> bool {
        self.generated.is_empty()
            || (self.generated.iter().all(|&n| n == 0)
                && self.pruned_deadline.iter().all(|&n| n == 0)
                && self.pruned_infeasible.iter().all(|&n| n == 0))
    }

    fn record_generated(&mut self, tag: usize, label: usize) {
        let i = self.idx(tag, label);
        self.generated[i] += 1;
    }

    fn record_pruned_deadline(&mut self, tag: usize, label: usize) {
        let i = self.idx(tag, label);
        self.pruned_deadline[i] += 1;
    }

    fn record_pruned_infeasible(&mut self, tag: usize, label: usize) {
        let i = self.idx(tag, label);
        self.pruned_infeasible[i] += 1;
    }
}

/// The mapping the search produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingResult {
    /// `assignment[t]` is the label index for `ctx.tags[t]`.
    pub assignment: Vec<usize>,
    /// Total cost of the assignment under the cost model.
    pub cost: f64,
    /// True if the assignment satisfies every hard constraint. False only
    /// when no feasible complete mapping was found and the handler fell
    /// back to the unconstrained argmax.
    pub feasible: bool,
    /// Search counters.
    pub stats: SearchStats,
    /// Per-`(tag, label)` provenance counters (empty in serialized results
    /// from older versions).
    #[serde(default)]
    pub events: SearchEvents,
}

/// One A\*/beam node: a prefix assignment in `order`.
#[derive(Debug, Clone)]
struct Node {
    assignment: Vec<Option<usize>>,
    depth: usize,
    g: f64,
    f: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    /// Max-heap on *reverse* f (lower f pops first); deeper nodes win ties
    /// so complete mappings surface quickly.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Deadline propagation for mandatory labels: a hard `ExactlyOne(l)`
/// constraint is only *detectably* violated at the final node of a path
/// (when no tag took `l`), which makes A\* dive to the bottom, fail, and
/// backtrack across an exponential frontier. Instead, precompute for each
/// mandatory label the last position in the refinement order whose tag
/// could still take it; any state that passes that position without having
/// placed the label is pruned immediately.
struct Deadlines {
    /// `due[pos]` — labels that must be present once `order[pos]` has been
    /// assigned.
    due: Vec<Vec<usize>>,
    /// Labels no candidate set can provide at all (dooms the search).
    unplaceable: bool,
}

impl Deadlines {
    /// `mandatory` lists the label indices demanded by hard `ExactlyOne`
    /// constraints (see [`CompiledConstraintSet::mandatory_labels`]).
    fn new(mandatory: &[usize], candidates: &[Vec<usize>], order: &[usize]) -> Self {
        let mut due = vec![Vec::new(); order.len()];
        let mut unplaceable = false;
        for &lid in mandatory {
            let last = order
                .iter()
                .enumerate()
                .filter(|(_, &t)| candidates[t].contains(&lid))
                .map(|(pos, _)| pos)
                .max();
            match last {
                Some(pos) => due[pos].push(lid),
                None => unplaceable = true,
            }
        }
        Deadlines { due, unplaceable }
    }

    /// True if the assignment may continue past position `pos` (every label
    /// due by `pos` has been placed).
    fn satisfied(&self, pos: usize, assignment: &[Option<usize>]) -> bool {
        self.due[pos].iter().all(|&l| assignment.contains(&Some(l)))
    }
}

/// Runs the configured search. `candidates[t]` lists the label indices tag
/// `t` may take (prepared by the [`crate::ConstraintHandler`]); `order` is
/// the refinement order over tag indices.
pub fn search_mapping(
    ctx: &MatchingContext<'_>,
    constraints: &[DomainConstraint],
    candidates: &[Vec<usize>],
    order: &[usize],
    config: SearchConfig,
) -> MappingResult {
    let set = CompiledConstraintSet::compile(ctx.labels, constraints);
    search_mapping_compiled(ctx, &set, candidates, order, config)
}

/// [`search_mapping`] over a pre-compiled constraint set. The batch engine
/// compiles the domain constraints once and calls this per source, sharing
/// one `&CompiledConstraintSet` across worker threads.
pub fn search_mapping_compiled(
    ctx: &MatchingContext<'_>,
    set: &CompiledConstraintSet,
    candidates: &[Vec<usize>],
    order: &[usize],
    config: SearchConfig,
) -> MappingResult {
    debug_assert_eq!(candidates.len(), ctx.tags.len());
    debug_assert_eq!(order.len(), ctx.tags.len());
    let _span = lsd_obs::span!("constraints.search");
    let evaluator = Evaluator::with_compiled(ctx, set);
    let deadlines = Deadlines::new(&set.mandatory_labels(), candidates, order);
    let mut scratch = evaluator.scratch();
    let mut events = SearchEvents::new(ctx.tags.len(), ctx.labels.len());
    let result = if deadlines.unplaceable {
        None
    } else {
        match config.algorithm {
            SearchAlgorithm::AStar { max_expansions } => astar(
                ctx,
                &evaluator,
                &deadlines,
                &mut scratch,
                candidates,
                order,
                max_expansions,
                config.heuristic_weight,
                &mut events,
            ),
            SearchAlgorithm::Beam { width } => beam(
                ctx,
                &evaluator,
                &deadlines,
                &mut scratch,
                candidates,
                order,
                width,
                &mut events,
            ),
            SearchAlgorithm::Greedy => greedy(
                ctx,
                &evaluator,
                &deadlines,
                &mut scratch,
                candidates,
                order,
                &mut events,
            ),
        }
    };
    let mut result =
        result.unwrap_or_else(|| fallback_argmax(ctx, &evaluator, &mut scratch, candidates));
    result.events = events;
    // One flush per search call: counters were accumulated in the local
    // `SearchStats` / evaluator cell, so the hot loop never touches the
    // metrics registry.
    if lsd_obs::enabled() {
        lsd_obs::counter_add("search.runs", "", 1);
        lsd_obs::counter_add("search.nodes_expanded", "", result.stats.expansions as u64);
        lsd_obs::counter_add("search.nodes_generated", "", result.stats.generated as u64);
        lsd_obs::counter_add("search.nodes_pruned", "", result.stats.pruned as u64);
        lsd_obs::counter_add("search.evaluations", "", evaluator.evaluations());
        lsd_obs::gauge_max(
            "search.fd_cache_entries",
            "",
            evaluator.fd_cache_entries() as u64,
        );
    }
    result
}

/// Remaining-cost lower bound: cheapest per-tag probability cost of the
/// tags not yet assigned.
fn heuristic(evaluator: &Evaluator<'_>, order: &[usize], depth: usize) -> f64 {
    order[depth..].iter().map(|&t| evaluator.best_cost(t)).sum()
}

#[allow(clippy::too_many_arguments)]
fn astar(
    ctx: &MatchingContext<'_>,
    evaluator: &Evaluator<'_>,
    deadlines: &Deadlines,
    scratch: &mut Scratch,
    candidates: &[Vec<usize>],
    order: &[usize],
    max_expansions: usize,
    heuristic_weight: f64,
    events: &mut SearchEvents,
) -> Option<MappingResult> {
    let q = ctx.tags.len();
    let mut stats = SearchStats {
        optimal: heuristic_weight <= 1.0,
        ..Default::default()
    };
    let mut open = BinaryHeap::new();
    let root = Node {
        assignment: vec![None; q],
        depth: 0,
        g: 0.0,
        f: heuristic_weight * heuristic(evaluator, order, 0),
    };
    open.push(root);

    while let Some(node) = open.pop() {
        if node.depth == q {
            let assignment: Vec<usize> = node
                .assignment
                .iter()
                .map(|a| a.expect("complete"))
                .collect();
            return Some(MappingResult {
                assignment,
                cost: node.g,
                feasible: true,
                stats,
                events: SearchEvents::default(),
            });
        }
        if stats.expansions >= max_expansions {
            // Budget exhausted: greedily complete this (lowest-f) node.
            stats.optimal = false;
            return complete_greedily(
                evaluator, deadlines, scratch, candidates, order, node, stats, events,
            );
        }
        stats.expansions += 1;
        let tag = order[node.depth];
        for &label in &candidates[tag] {
            let mut assignment = node.assignment.clone();
            assignment[tag] = Some(label);
            if !deadlines.satisfied(node.depth, &assignment) {
                stats.pruned += 1;
                events.record_pruned_deadline(tag, label);
                continue;
            }
            let g = evaluator.evaluate(&assignment, scratch);
            if g == INFEASIBLE {
                stats.pruned += 1;
                events.record_pruned_infeasible(tag, label);
                continue;
            }
            stats.generated += 1;
            events.record_generated(tag, label);
            let f = g + heuristic_weight * heuristic(evaluator, order, node.depth + 1);
            open.push(Node {
                assignment,
                depth: node.depth + 1,
                g,
                f,
            });
        }
    }
    None // no feasible complete mapping under the candidate sets
}

/// Completes a partial node by per-tag feasible-best choices.
#[allow(clippy::too_many_arguments)]
fn complete_greedily(
    evaluator: &Evaluator<'_>,
    deadlines: &Deadlines,
    scratch: &mut Scratch,
    candidates: &[Vec<usize>],
    order: &[usize],
    node: Node,
    mut stats: SearchStats,
    events: &mut SearchEvents,
) -> Option<MappingResult> {
    let mut assignment = node.assignment;
    for (pos, &tag) in order.iter().enumerate().skip(node.depth) {
        let mut best: Option<(usize, f64)> = None;
        for &label in &candidates[tag] {
            assignment[tag] = Some(label);
            if !deadlines.satisfied(pos, &assignment) {
                stats.pruned += 1;
                events.record_pruned_deadline(tag, label);
                continue;
            }
            let g = evaluator.evaluate(&assignment, scratch);
            if g == INFEASIBLE {
                stats.pruned += 1;
                events.record_pruned_infeasible(tag, label);
                continue;
            }
            stats.generated += 1;
            events.record_generated(tag, label);
            if g < best.map_or(INFEASIBLE, |(_, c)| c) {
                best = Some((label, g));
            }
        }
        match best {
            Some((label, _)) => assignment[tag] = Some(label),
            None => return None, // dead end even for greedy
        }
    }
    let cost = evaluator.evaluate(&assignment, scratch);
    if cost == INFEASIBLE {
        return None;
    }
    Some(MappingResult {
        assignment: assignment
            .into_iter()
            .map(|a| a.expect("complete"))
            .collect(),
        cost,
        feasible: true,
        stats,
        events: SearchEvents::default(),
    })
}

#[allow(clippy::too_many_arguments)]
fn beam(
    ctx: &MatchingContext<'_>,
    evaluator: &Evaluator<'_>,
    deadlines: &Deadlines,
    scratch: &mut Scratch,
    candidates: &[Vec<usize>],
    order: &[usize],
    width: usize,
    events: &mut SearchEvents,
) -> Option<MappingResult> {
    let width = width.max(1);
    let q = ctx.tags.len();
    let mut stats = SearchStats::default();
    let mut level = vec![Node {
        assignment: vec![None; q],
        depth: 0,
        g: 0.0,
        f: 0.0,
    }];
    for (pos, &tag) in order.iter().enumerate() {
        let mut next: Vec<Node> = Vec::with_capacity(level.len() * 4);
        for node in &level {
            stats.expansions += 1;
            for &label in &candidates[tag] {
                let mut assignment = node.assignment.clone();
                assignment[tag] = Some(label);
                if !deadlines.satisfied(pos, &assignment) {
                    stats.pruned += 1;
                    events.record_pruned_deadline(tag, label);
                    continue;
                }
                let g = evaluator.evaluate(&assignment, scratch);
                if g == INFEASIBLE {
                    stats.pruned += 1;
                    events.record_pruned_infeasible(tag, label);
                    continue;
                }
                stats.generated += 1;
                events.record_generated(tag, label);
                next.push(Node {
                    assignment,
                    depth: node.depth + 1,
                    g,
                    f: g,
                });
            }
        }
        if next.is_empty() {
            return None;
        }
        next.sort_by(|a, b| a.g.partial_cmp(&b.g).unwrap_or(Ordering::Equal));
        next.truncate(width);
        level = next;
    }
    let best = level
        .into_iter()
        .min_by(|a, b| a.g.partial_cmp(&b.g).unwrap_or(Ordering::Equal))?;
    Some(MappingResult {
        assignment: best
            .assignment
            .into_iter()
            .map(|a| a.expect("complete"))
            .collect(),
        cost: best.g,
        feasible: true,
        stats,
        events: SearchEvents::default(),
    })
}

fn greedy(
    ctx: &MatchingContext<'_>,
    evaluator: &Evaluator<'_>,
    deadlines: &Deadlines,
    scratch: &mut Scratch,
    candidates: &[Vec<usize>],
    order: &[usize],
    events: &mut SearchEvents,
) -> Option<MappingResult> {
    let stats = SearchStats::default();
    let node = Node {
        assignment: vec![None; ctx.tags.len()],
        depth: 0,
        g: 0.0,
        f: 0.0,
    };
    complete_greedily(
        evaluator, deadlines, scratch, candidates, order, node, stats, events,
    )
}

/// Last resort when no feasible mapping exists (e.g. contradictory hard
/// constraints): per-tag argmax *within each tag's candidate set*, flagged
/// infeasible. Honouring the candidate sets keeps user `TagIs`/`TagIsNot`
/// feedback binding even when the global search fails.
fn fallback_argmax(
    ctx: &MatchingContext<'_>,
    evaluator: &Evaluator<'_>,
    scratch: &mut Scratch,
    candidates: &[Vec<usize>],
) -> MappingResult {
    let assignment: Vec<usize> = ctx
        .predictions
        .iter()
        .zip(candidates)
        .map(|(p, cands)| {
            cands
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    p.score(a)
                        .partial_cmp(&p.score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or_else(|| p.best_label())
        })
        .collect();
    let opt: Vec<Option<usize>> = assignment.iter().map(|&l| Some(l)).collect();
    let cost = evaluator.evaluate(&opt, scratch);
    MappingResult {
        assignment,
        cost,
        feasible: false,
        stats: SearchStats::default(),
        events: SearchEvents::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Predicate;
    use crate::source_data::SourceData;
    use lsd_learn::{LabelSet, Prediction};
    use lsd_xml::{parse_dtd, SchemaTree};

    struct Fixture {
        labels: LabelSet,
        schema: SchemaTree,
        data: SourceData,
    }

    impl Fixture {
        fn new() -> Self {
            let dtd = parse_dtd(
                "<!ELEMENT listing (area, price, extra)>\n\
                 <!ELEMENT area (#PCDATA)>\n\
                 <!ELEMENT price (#PCDATA)>\n\
                 <!ELEMENT extra (#PCDATA)>",
            )
            .unwrap();
            let schema = SchemaTree::from_dtd(&dtd).unwrap();
            let mut data =
                SourceData::new(schema.tag_names().map(str::to_string).collect::<Vec<_>>());
            data.push_row([("area", "Miami"), ("price", "100"), ("extra", "nice")]);
            data.push_row([("area", "Boston"), ("price", "100"), ("extra", "nice")]);
            Fixture {
                labels: LabelSet::new(["ADDRESS", "PRICE"]),
                schema,
                data,
            }
        }

        /// Context where `area` and `extra` both look like ADDRESS, with
        /// `area` the stronger match, and `price` looks like PRICE.
        fn ctx(&self) -> MatchingContext<'_> {
            MatchingContext {
                labels: &self.labels,
                schema: &self.schema,
                tags: vec!["area".into(), "price".into(), "extra".into()],
                predictions: vec![
                    Prediction::from_scores(vec![0.8, 0.1, 0.1]),
                    Prediction::from_scores(vec![0.1, 0.8, 0.1]),
                    Prediction::from_scores(vec![0.6, 0.1, 0.3]),
                ],
                data: &self.data,
                alpha: 1.0,
            }
        }
    }

    fn all_candidates(ctx: &MatchingContext<'_>) -> Vec<Vec<usize>> {
        vec![(0..ctx.labels.len()).collect(); ctx.tags.len()]
    }

    fn run(f: &Fixture, constraints: &[DomainConstraint], alg: SearchAlgorithm) -> MappingResult {
        let ctx = f.ctx();
        let candidates = all_candidates(&ctx);
        let order: Vec<usize> = (0..ctx.tags.len()).collect();
        search_mapping(
            &ctx,
            constraints,
            &candidates,
            &order,
            SearchConfig {
                algorithm: alg,
                heuristic_weight: 1.0,
            },
        )
    }

    #[test]
    fn unconstrained_search_is_argmax() {
        let f = Fixture::new();
        for alg in [
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
            SearchAlgorithm::Beam { width: 8 },
            SearchAlgorithm::Greedy,
        ] {
            let r = run(&f, &[], alg);
            assert!(r.feasible);
            // area→ADDRESS, price→PRICE, extra→ADDRESS (its argmax).
            assert_eq!(r.assignment, vec![0, 1, 0], "{alg:?}");
        }
    }

    #[test]
    fn at_most_one_forces_weaker_tag_elsewhere() {
        let f = Fixture::new();
        let cs = [DomainConstraint::hard(Predicate::AtMostOne {
            label: "ADDRESS".into(),
        })];
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(r.feasible);
        assert!(r.stats.optimal);
        // `area` keeps ADDRESS (stronger), `extra` must move to OTHER
        // (score 0.3) rather than PRICE (0.1).
        assert_eq!(r.assignment[0], 0);
        assert_eq!(r.assignment[2], f.labels.other());
    }

    #[test]
    fn astar_result_is_optimal_vs_exhaustive() {
        let f = Fixture::new();
        let cs = [
            DomainConstraint::hard(Predicate::AtMostOne {
                label: "ADDRESS".into(),
            }),
            DomainConstraint::soft(Predicate::AtMostK {
                label: "PRICE".into(),
                k: 1,
            }),
        ];
        let ctx = f.ctx();
        let n = ctx.labels.len();
        // Exhaustive minimum over all n^3 assignments.
        let mut best_cost = INFEASIBLE;
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let cost = evaluate_partial(&ctx, &cs, &[Some(a), Some(b), Some(c)]);
                    if cost < best_cost {
                        best_cost = cost;
                    }
                }
            }
        }
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!((r.cost - best_cost).abs() < 1e-9);
    }

    #[test]
    fn expansion_cap_falls_back_to_greedy_completion() {
        let f = Fixture::new();
        let r = run(&f, &[], SearchAlgorithm::AStar { max_expansions: 1 });
        assert!(r.feasible);
        assert!(!r.stats.optimal);
        assert_eq!(r.assignment.len(), 3);
    }

    #[test]
    fn contradictory_hard_constraints_fall_back_to_argmax() {
        let f = Fixture::new();
        let cs = [
            DomainConstraint::hard(Predicate::TagIs {
                tag: "area".into(),
                label: "PRICE".into(),
            }),
            DomainConstraint::hard(Predicate::TagIsNot {
                tag: "area".into(),
                label: "PRICE".into(),
            }),
        ];
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(!r.feasible);
        assert_eq!(r.assignment, vec![0, 1, 0]);
    }

    #[test]
    fn feedback_constraint_steers_search() {
        let f = Fixture::new();
        let cs = [DomainConstraint::hard(Predicate::TagIs {
            tag: "extra".into(),
            label: "PRICE".into(),
        })];
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(r.feasible);
        assert_eq!(r.assignment[2], 1);
    }

    #[test]
    fn beam_width_one_equals_greedy() {
        let f = Fixture::new();
        let cs = [DomainConstraint::hard(Predicate::AtMostOne {
            label: "ADDRESS".into(),
        })];
        let beam = run(&f, &cs, SearchAlgorithm::Beam { width: 1 });
        let greedy = run(&f, &cs, SearchAlgorithm::Greedy);
        assert_eq!(beam.assignment, greedy.assignment);
    }

    #[test]
    fn events_attribute_prunes_to_tag_label_pairs() {
        let f = Fixture::new();
        let cs = [DomainConstraint::hard(Predicate::AtMostOne {
            label: "ADDRESS".into(),
        })];
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(r.feasible);
        let ev = &r.events;
        assert_eq!(ev.num_labels, f.labels.len());
        // Totals agree with the aggregate stats.
        assert_eq!(
            ev.generated.iter().sum::<u64>(),
            r.stats.generated as u64,
            "generated totals"
        );
        assert_eq!(
            ev.pruned_deadline.iter().sum::<u64>() + ev.pruned_infeasible.iter().sum::<u64>(),
            r.stats.pruned as u64,
            "pruned totals"
        );
        // The AtMostOne(ADDRESS) constraint fires when `extra` (tag 2)
        // tries ADDRESS (label 0) after `area` took it.
        assert!(ev.pruned_infeasible_for(2, 0) > 0, "{ev:?}");
        // The winning pairings generated frontier nodes.
        assert!(ev.generated_for(0, 0) > 0);
        assert!(ev.generated_for(1, 1) > 0);
    }

    #[test]
    fn fallback_leaves_failed_search_events() {
        let f = Fixture::new();
        let cs = [
            DomainConstraint::hard(Predicate::TagIs {
                tag: "area".into(),
                label: "PRICE".into(),
            }),
            DomainConstraint::hard(Predicate::TagIsNot {
                tag: "area".into(),
                label: "PRICE".into(),
            }),
        ];
        let r = run(
            &f,
            &cs,
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(!r.feasible);
        // Dimensions are still right even though the search failed.
        assert_eq!(r.events.num_labels, f.labels.len());
        assert_eq!(r.events.generated.len(), 3 * f.labels.len());
    }

    #[test]
    fn stats_are_populated() {
        let f = Fixture::new();
        let r = run(
            &f,
            &[],
            SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
        );
        assert!(r.stats.expansions > 0);
        assert!(r.stats.generated >= r.stats.expansions);
    }
}
