//! Row-aligned extracted source data, for verifying column constraints.
//!
//! Column constraints (Table 1, "Column") involve the data of the target
//! source: "If a matches HOUSE-ID, then a is a key", "a & b functionally
//! determine c". They can only be *refuted* from extracted data — a
//! duplicate value proves a tag is not a key; equal determinant tuples with
//! different dependents refute an FD. The absence of a counterexample in
//! the sample is treated as consistency (paper Section 4.1).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Extracted data for one source: per listing (row), the value of each
/// source tag in that listing, if present.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "SourceDataParts", into = "SourceDataParts")]
pub struct SourceData {
    tags: Vec<String>,
    tag_index: HashMap<String, usize>,
    /// `rows[r][t]` — the text value of tag `t` in listing `r`.
    rows: Vec<Vec<Option<String>>>,
}

/// The serialized shape of [`SourceData`]; the tag index is rebuilt on
/// deserialization.
#[derive(Clone, Serialize, Deserialize)]
struct SourceDataParts {
    tags: Vec<String>,
    rows: Vec<Vec<Option<String>>>,
}

impl From<SourceDataParts> for SourceData {
    fn from(parts: SourceDataParts) -> Self {
        let tag_index = parts
            .tags
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        SourceData {
            tags: parts.tags,
            tag_index,
            rows: parts.rows,
        }
    }
}

impl From<SourceData> for SourceDataParts {
    fn from(data: SourceData) -> Self {
        SourceDataParts {
            tags: data.tags,
            rows: data.rows,
        }
    }
}

impl SourceData {
    /// Creates an empty store for the given source tags.
    pub fn new<I, S>(tags: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tags: Vec<String> = tags.into_iter().map(Into::into).collect();
        let tag_index = tags
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        SourceData {
            tags,
            tag_index,
            rows: Vec::new(),
        }
    }

    /// Appends one listing given `(tag, value)` pairs; tags not present in
    /// this store are ignored, missing tags become `None`. If a tag occurs
    /// several times in one listing, its values are joined with `" | "`
    /// into a single cell (a repeated tag is one listing-level fact for
    /// column-constraint purposes).
    pub fn push_row<'a>(&mut self, values: impl IntoIterator<Item = (&'a str, &'a str)>) {
        let mut row: Vec<Option<String>> = vec![None; self.tags.len()];
        for (tag, value) in values {
            if let Some(&i) = self.tag_index.get(tag) {
                match &mut row[i] {
                    Some(existing) => {
                        existing.push_str(" | ");
                        existing.push_str(value);
                    }
                    slot => *slot = Some(value.to_string()),
                }
            }
        }
        self.rows.push(row);
    }

    /// The tags this store tracks.
    pub fn tags(&self) -> &[String] {
        &self.tags
    }

    /// Number of listings.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Non-missing values of one tag, in row order. Placeholder values
    /// ("unknown", "n/a", …) count as missing: the paper performs exactly
    /// this trivial cleaning, and without it two "unknown" cells would
    /// spuriously refute key and functional-dependency constraints.
    pub fn column(&self, tag: &str) -> Vec<&str> {
        match self.tag_index.get(tag) {
            Some(&i) => self
                .rows
                .iter()
                .filter_map(|r| r[i].as_deref())
                .filter(|v| !is_placeholder(v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// True if the tag's non-missing values contain a duplicate — i.e. the
    /// extracted data *refutes* "this tag is a key".
    pub fn has_duplicates(&self, tag: &str) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.column(tag).into_iter().any(|v| !seen.insert(v))
    }

    /// True if the sample refutes the functional dependency
    /// `determinants → dependent`: two rows agree on all determinant values
    /// (all present) but disagree on the dependent.
    pub fn fd_refuted(&self, determinants: &[&str], dependent: &str) -> bool {
        let det_idx: Vec<usize> = match determinants
            .iter()
            .map(|t| self.tag_index.get(*t).copied())
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => return false, // unknown tag: nothing to refute
        };
        let Some(&dep_idx) = self.tag_index.get(dependent) else {
            return false;
        };
        let mut seen: HashMap<Vec<&str>, &str> = HashMap::new();
        for row in &self.rows {
            let key: Option<Vec<&str>> = det_idx
                .iter()
                .map(|&i| row[i].as_deref().filter(|v| !is_placeholder(v)))
                .collect();
            let (Some(key), Some(dep)) =
                (key, row[dep_idx].as_deref().filter(|v| !is_placeholder(v)))
            else {
                continue;
            };
            match seen.get(&key) {
                Some(&prev) if prev != dep => return true,
                Some(_) => {}
                None => {
                    seen.insert(key, dep);
                }
            }
        }
        false
    }

    /// Fraction of the tag's values that parse as numbers after stripping
    /// common formatting (`$`, `,`, `%`, whitespace). Returns `None` when
    /// the column is empty. Used by constraint pre-processing (Section 7:
    /// "constraints on an element being textual or numeric").
    pub fn numeric_fraction(&self, tag: &str) -> Option<f64> {
        let col = self.column(tag);
        if col.is_empty() {
            return None;
        }
        let numeric = col.iter().filter(|v| is_numeric_value(v)).count();
        Some(numeric as f64 / col.len() as f64)
    }

    /// Mean token count of the tag's values; `None` for an empty column.
    pub fn mean_token_count(&self, tag: &str) -> Option<f64> {
        let col = self.column(tag);
        if col.is_empty() {
            return None;
        }
        let total: usize = col.iter().map(|v| v.split_whitespace().count()).sum();
        Some(total as f64 / col.len() as f64)
    }
}

/// True if the value is a placeholder for missing data (the paper's
/// "unknown"/"unk" noise, removed by its trivial cleaning step).
pub(crate) fn is_placeholder(value: &str) -> bool {
    let v = value.trim();
    v.is_empty()
        || v.eq_ignore_ascii_case("unknown")
        || v.eq_ignore_ascii_case("unk")
        || v.eq_ignore_ascii_case("n/a")
        || v.eq_ignore_ascii_case("na")
        || v.eq_ignore_ascii_case("tba")
        || v == "-"
}

/// True if a value is numeric after stripping `$ , % #` and whitespace.
pub(crate) fn is_numeric_value(value: &str) -> bool {
    let cleaned: String = value
        .chars()
        .filter(|c| !matches!(c, '$' | ',' | '%' | '#') && !c.is_whitespace())
        .collect();
    !cleaned.is_empty() && cleaned.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SourceData {
        let mut d = SourceData::new(["id", "beds", "price", "city", "zip"]);
        d.push_row([
            ("id", "1"),
            ("beds", "3"),
            ("price", "$250,000"),
            ("city", "Miami"),
            ("zip", "33101"),
        ]);
        d.push_row([
            ("id", "2"),
            ("beds", "3"),
            ("price", "$110,000"),
            ("city", "Boston"),
            ("zip", "02108"),
        ]);
        d.push_row([
            ("id", "3"),
            ("beds", "2"),
            ("price", "$90,000"),
            ("city", "Miami"),
            ("zip", "33101"),
        ]);
        d
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let d = sample();
        let json = serde_json::to_string(&d).expect("serializes");
        let back: SourceData = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.column("city"), d.column("city"));
        assert!(back.has_duplicates("beds"));
    }

    #[test]
    fn key_refutation() {
        let d = sample();
        assert!(!d.has_duplicates("id"), "id is a key in the sample");
        assert!(
            d.has_duplicates("beds"),
            "beds has duplicates → cannot be a key"
        );
    }

    #[test]
    fn fd_refutation() {
        let mut d = sample();
        // city → zip holds in the sample so far.
        assert!(!d.fd_refuted(&["city"], "zip"));
        d.push_row([("id", "4"), ("city", "Miami"), ("zip", "33139")]);
        assert!(d.fd_refuted(&["city"], "zip"));
    }

    #[test]
    fn fd_with_missing_values_skips_rows() {
        let mut d = SourceData::new(["a", "b"]);
        d.push_row([("a", "x")]); // b missing
        d.push_row([("a", "x"), ("b", "1")]);
        d.push_row([("a", "x"), ("b", "1")]);
        assert!(!d.fd_refuted(&["a"], "b"));
    }

    #[test]
    fn fd_unknown_tags_never_refute() {
        let d = sample();
        assert!(!d.fd_refuted(&["ghost"], "zip"));
        assert!(!d.fd_refuted(&["city"], "ghost"));
    }

    #[test]
    fn numeric_fraction_strips_formatting() {
        let d = sample();
        assert_eq!(d.numeric_fraction("price"), Some(1.0));
        assert_eq!(d.numeric_fraction("city"), Some(0.0));
        assert_eq!(d.numeric_fraction("missing"), None);
    }

    #[test]
    fn mean_token_count() {
        let mut d = SourceData::new(["desc"]);
        d.push_row([("desc", "great house")]);
        d.push_row([("desc", "close to the river bank")]);
        assert_eq!(d.mean_token_count("desc"), Some(3.5));
    }

    #[test]
    fn repeated_tag_in_one_row_joins() {
        let mut d = SourceData::new(["phone"]);
        d.push_row([("phone", "111"), ("phone", "222")]);
        assert_eq!(d.column("phone"), vec!["111 | 222"]);
    }

    #[test]
    fn unknown_tags_in_push_are_ignored() {
        let mut d = SourceData::new(["a"]);
        d.push_row([("zzz", "1"), ("a", "2")]);
        assert_eq!(d.column("a"), vec!["2"]);
        assert_eq!(d.num_rows(), 1);
    }

    #[test]
    fn numeric_value_detection() {
        assert!(is_numeric_value("$70,000"));
        assert!(is_numeric_value("3.5"));
        assert!(is_numeric_value("  42 "));
        assert!(is_numeric_value("95%"));
        assert!(!is_numeric_value("three"));
        assert!(!is_numeric_value(""));
        assert!(!is_numeric_value("$"));
    }
}
