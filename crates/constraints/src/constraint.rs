//! The domain-constraint language (paper Table 1).
//!
//! Constraints refer to *labels* (mediated-schema elements) and generic
//! source-schema elements; they are written once per domain, independent of
//! any particular source. User feedback (Section 4.3) enters the same
//! language through the tag-level predicates [`Predicate::TagIs`] /
//! [`Predicate::TagIsNot`], which name a concrete source tag.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a constraint asserts. Label parameters are mediated-schema tag
/// names; `tag` parameters are source-schema tag names (feedback only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Frequency: at most one source element matches `label`.
    AtMostOne {
        /// The mediated-schema label.
        label: String,
    },
    /// Frequency: exactly one source element matches `label`.
    ExactlyOne {
        /// The mediated-schema label.
        label: String,
    },
    /// Nesting: if `a` matches `outer` and `b` matches `inner`, then `b`
    /// must be nested in `a` in the source schema.
    NestedIn {
        /// Label whose source tag must contain the other.
        outer: String,
        /// Label whose source tag must be nested.
        inner: String,
    },
    /// Nesting (negative): a source tag matching `inner` cannot be nested
    /// in one matching `outer`.
    NotNestedIn {
        /// Label whose source tag must not contain the other.
        outer: String,
        /// Label whose source tag must not be nested.
        inner: String,
    },
    /// Contiguity: source tags matching `a` and `b` must be siblings, and
    /// any source tags declared between them may only match `OTHER`.
    Contiguous {
        /// First label.
        a: String,
        /// Second label.
        b: String,
    },
    /// Exclusivity: no source may have one tag matching `a` and another
    /// matching `b`.
    MutuallyExclusive {
        /// First label.
        a: String,
        /// Second label.
        b: String,
    },
    /// Column: a source tag matching `label` must be a key (no duplicate
    /// values in the extracted data).
    IsKey {
        /// The mediated-schema label.
        label: String,
    },
    /// Column: source tags matching `determinants` functionally determine
    /// the tag matching `dependent`.
    FunctionalDependency {
        /// Labels of the determinant columns.
        determinants: Vec<String>,
        /// Label of the determined column.
        dependent: String,
    },
    /// Binary (soft): at most `k` source elements match `label`.
    AtMostK {
        /// The mediated-schema label.
        label: String,
        /// The cardinality bound.
        k: usize,
    },
    /// Numeric (soft): source tags matching `a` and `b` should be as close
    /// to each other in the schema tree as possible, all else being equal.
    Proximity {
        /// First label.
        a: String,
        /// Second label.
        b: String,
    },
    /// Pre-processing: data of a tag matching `label` must be mostly
    /// numeric (Section 7's "constraints on an element being textual or
    /// numeric", used to prune candidates before search).
    IsNumeric {
        /// The mediated-schema label.
        label: String,
    },
    /// Pre-processing: data of a tag matching `label` must be mostly
    /// non-numeric text.
    IsTextual {
        /// The mediated-schema label.
        label: String,
    },
    /// User feedback: source tag `tag` matches `label`.
    TagIs {
        /// The source-schema tag name.
        tag: String,
        /// The required label.
        label: String,
    },
    /// User feedback: source tag `tag` does not match `label`
    /// (e.g. "ad-id does not match HOUSE-ID").
    TagIsNot {
        /// The source-schema tag name.
        tag: String,
        /// The forbidden label.
        label: String,
    },
}

impl Predicate {
    /// True if verifying the predicate needs the *data* of the target
    /// source; false if the schema alone suffices (Table 1's "Can Be
    /// Verified With" column). Used by the Figure 9b lesion that splits
    /// LSD into schema-information-only and data-information-only halves.
    pub fn uses_data(&self) -> bool {
        matches!(
            self,
            Predicate::IsKey { .. }
                | Predicate::FunctionalDependency { .. }
                | Predicate::IsNumeric { .. }
                | Predicate::IsTextual { .. }
        )
    }

    /// The mediated-schema label names this predicate references, in
    /// declaration order. Used to validate constraints against a label set
    /// up front (`Lsd::set_constraints`) instead of silently dropping
    /// entries naming unknown labels at compile time.
    pub fn label_names(&self) -> Vec<&str> {
        match self {
            Predicate::AtMostOne { label }
            | Predicate::ExactlyOne { label }
            | Predicate::IsKey { label }
            | Predicate::AtMostK { label, .. }
            | Predicate::IsNumeric { label }
            | Predicate::IsTextual { label }
            | Predicate::TagIs { label, .. }
            | Predicate::TagIsNot { label, .. } => vec![label],
            Predicate::NestedIn { outer, inner } | Predicate::NotNestedIn { outer, inner } => {
                vec![outer, inner]
            }
            Predicate::Contiguous { a, b }
            | Predicate::MutuallyExclusive { a, b }
            | Predicate::Proximity { a, b } => vec![a, b],
            Predicate::FunctionalDependency {
                determinants,
                dependent,
            } => {
                let mut names: Vec<&str> = determinants.iter().map(String::as_str).collect();
                names.push(dependent);
                names
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::AtMostOne { label } => write!(f, "at most one element matches {label}"),
            Predicate::ExactlyOne { label } => write!(f, "exactly one element matches {label}"),
            Predicate::NestedIn { outer, inner } => {
                write!(f, "{inner} must be nested in {outer}")
            }
            Predicate::NotNestedIn { outer, inner } => {
                write!(f, "{inner} cannot be nested in {outer}")
            }
            Predicate::Contiguous { a, b } => write!(f, "{a} and {b} are contiguous siblings"),
            Predicate::MutuallyExclusive { a, b } => {
                write!(f, "{a} and {b} are mutually exclusive")
            }
            Predicate::IsKey { label } => write!(f, "{label} is a key"),
            Predicate::FunctionalDependency {
                determinants,
                dependent,
            } => {
                write!(
                    f,
                    "{} functionally determine {dependent}",
                    determinants.join(", ")
                )
            }
            Predicate::AtMostK { label, k } => {
                write!(f, "at most {k} elements match {label}")
            }
            Predicate::Proximity { a, b } => {
                write!(f, "{a} and {b} should be close in the schema tree")
            }
            Predicate::IsNumeric { label } => write!(f, "{label} data is numeric"),
            Predicate::IsTextual { label } => write!(f, "{label} data is textual"),
            Predicate::TagIs { tag, label } => write!(f, "tag '{tag}' matches {label}"),
            Predicate::TagIsNot { tag, label } => {
                write!(f, "tag '{tag}' does not match {label}")
            }
        }
    }
}

/// How strictly a constraint applies (paper Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// Absolutely cannot be violated: any violating mapping has infinite
    /// cost.
    Hard,
    /// Soft with a fixed violation cost (the paper's *binary* soft
    /// constraints have cost 1).
    SoftBinary {
        /// Cost added per violation.
        cost: f64,
    },
    /// Soft with a violation cost scaling in some measured quantity (the
    /// paper's *numeric* soft constraints); `weight` multiplies the
    /// measure (e.g. schema-tree distance for [`Predicate::Proximity`]).
    SoftNumeric {
        /// Scaling coefficient λ for this constraint.
        weight: f64,
    },
}

/// A predicate plus its enforcement kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainConstraint {
    /// What is asserted.
    pub predicate: Predicate,
    /// How strictly it is enforced.
    pub kind: ConstraintKind,
}

impl DomainConstraint {
    /// A hard constraint.
    pub fn hard(predicate: Predicate) -> Self {
        DomainConstraint {
            predicate,
            kind: ConstraintKind::Hard,
        }
    }

    /// A binary soft constraint with violation cost 1.
    pub fn soft(predicate: Predicate) -> Self {
        DomainConstraint {
            predicate,
            kind: ConstraintKind::SoftBinary { cost: 1.0 },
        }
    }

    /// A numeric soft constraint with the given weight.
    pub fn numeric(predicate: Predicate, weight: f64) -> Self {
        DomainConstraint {
            predicate,
            kind: ConstraintKind::SoftNumeric { weight },
        }
    }
}

impl fmt::Display for DomainConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ConstraintKind::Hard => "hard",
            ConstraintKind::SoftBinary { .. } => "soft",
            ConstraintKind::SoftNumeric { .. } => "numeric",
        };
        write!(f, "[{kind}] {}", self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let c = DomainConstraint::hard(Predicate::IsKey {
            label: "HOUSE-ID".into(),
        });
        assert_eq!(c.kind, ConstraintKind::Hard);
        let c = DomainConstraint::soft(Predicate::AtMostK {
            label: "DESCRIPTION".into(),
            k: 3,
        });
        assert_eq!(c.kind, ConstraintKind::SoftBinary { cost: 1.0 });
        let c = DomainConstraint::numeric(
            Predicate::Proximity {
                a: "AGENT-NAME".into(),
                b: "AGENT-PHONE".into(),
            },
            0.1,
        );
        assert_eq!(c.kind, ConstraintKind::SoftNumeric { weight: 0.1 });
    }

    #[test]
    fn display_is_readable() {
        let c = DomainConstraint::hard(Predicate::NestedIn {
            outer: "AGENT-INFO".into(),
            inner: "AGENT-NAME".into(),
        });
        assert_eq!(
            c.to_string(),
            "[hard] AGENT-NAME must be nested in AGENT-INFO"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let c = DomainConstraint::soft(Predicate::FunctionalDependency {
            determinants: vec!["CITY".into(), "FIRM-NAME".into()],
            dependent: "FIRM-ADDRESS".into(),
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: DomainConstraint = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
