//! The constraint handler (paper Sections 4.2–4.3).
//!
//! Takes the prediction converter's per-tag predictions together with the
//! domain constraints and outputs the 1-1 mappings: it searches the space of
//! candidate mappings for the least-cost one. User feedback is handled by
//! passing additional constraints that apply only to the current source
//! ([`ConstraintHandler::find_mapping_with_feedback`]).
//!
//! Before searching, the handler applies the Section 7 efficiency
//! extension: per-tag *candidate label sets* are pruned to the top-scoring
//! labels plus `OTHER`, and cheap hard type constraints
//! ([`Predicate::IsNumeric`] / [`Predicate::IsTextual`]) eliminate labels a
//! tag's data already rules out. Labels demanded by `TagIs` feedback or by
//! `ExactlyOne` constraints are re-inserted so pruning cannot make the
//! problem artificially infeasible.

use crate::compiled::CompiledConstraintSet;
use crate::constraint::{ConstraintKind, DomainConstraint, Predicate};
use crate::evaluate::MatchingContext;
use crate::search::{search_mapping_compiled, MappingResult, SearchConfig};
use lsd_learn::LabelSet;

/// The constraint handler: domain constraints + search configuration.
///
/// ```
/// use lsd_constraints::{
///     ConstraintHandler, DomainConstraint, MatchingContext, Predicate, SourceData,
/// };
/// use lsd_learn::{LabelSet, Prediction};
/// use lsd_xml::{parse_dtd, SchemaTree};
///
/// let dtd = parse_dtd(
///     "<!ELEMENT l (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>").unwrap();
/// let schema = SchemaTree::from_dtd(&dtd).unwrap();
/// let labels = LabelSet::new(["PRICE"]);
/// let data = SourceData::new(["l", "a", "b"]);
/// let ctx = MatchingContext {
///     labels: &labels,
///     schema: &schema,
///     tags: vec!["l".into(), "a".into(), "b".into()],
///     // Both leaf tags look like PRICE; `a` slightly more so.
///     predictions: vec![
///         Prediction::from_scores(vec![0.2, 0.8]),
///         Prediction::from_scores(vec![0.7, 0.3]),
///         Prediction::from_scores(vec![0.6, 0.4]),
///     ],
///     data: &data,
///     alpha: 1.0,
/// };
/// let handler = ConstraintHandler::new(vec![DomainConstraint::hard(
///     Predicate::AtMostOne { label: "PRICE".into() },
/// )]);
/// let result = handler.find_mapping(&ctx);
/// assert!(result.feasible);
/// let price = labels.get("PRICE").unwrap();
/// let count = result.assignment.iter().filter(|&&l| l == price).count();
/// assert!(count <= 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstraintHandler {
    constraints: Vec<DomainConstraint>,
    config: SearchConfig,
    /// Keep at most this many top-scoring candidate labels per tag
    /// (besides `OTHER` and force-included labels). 0 disables pruning.
    candidate_limit: usize,
}

impl ConstraintHandler {
    /// Default number of candidate labels retained per tag.
    pub const DEFAULT_CANDIDATE_LIMIT: usize = 6;

    /// Creates a handler over the given domain constraints.
    pub fn new(constraints: Vec<DomainConstraint>) -> Self {
        ConstraintHandler {
            constraints,
            config: SearchConfig::default(),
            candidate_limit: Self::DEFAULT_CANDIDATE_LIMIT,
        }
    }

    /// Overrides the search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the per-tag candidate limit (0 = consider every label).
    pub fn with_candidate_limit(mut self, limit: usize) -> Self {
        self.candidate_limit = limit;
        self
    }

    /// The domain constraints.
    pub fn constraints(&self) -> &[DomainConstraint] {
        &self.constraints
    }

    /// Adds a domain constraint.
    pub fn add_constraint(&mut self, constraint: DomainConstraint) {
        self.constraints.push(constraint);
    }

    /// Replaces the domain constraints — used by lesion studies that
    /// evaluate the same trained system with and without the constraint
    /// handler's knowledge.
    pub fn set_constraints(&mut self, constraints: Vec<DomainConstraint>) {
        self.constraints = constraints;
    }

    /// Finds the least-cost 1-1 mapping for the target source.
    pub fn find_mapping(&self, ctx: &MatchingContext<'_>) -> MappingResult {
        self.find_mapping_with_feedback(ctx, &[])
    }

    /// Finds the least-cost mapping under the domain constraints *plus*
    /// per-source feedback constraints (paper Section 4.3: "the constraint
    /// handler simply treats the new constraints as additional domain
    /// constraints, but uses them only in matching the current source").
    pub fn find_mapping_with_feedback(
        &self,
        ctx: &MatchingContext<'_>,
        feedback: &[DomainConstraint],
    ) -> MappingResult {
        let domain = self.compiled(ctx.labels);
        self.find_mapping_precompiled(ctx, &domain, feedback)
    }

    /// Resolves the domain constraints against a label set once, so the
    /// result can be shared (read-only) by many per-source searches. The
    /// batch engine calls this before fanning sources out to workers.
    pub fn compiled(&self, labels: &LabelSet) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(labels, &self.constraints)
    }

    /// [`Self::find_mapping_with_feedback`] over a constraint set already
    /// compiled by [`Self::compiled`]. Feedback constraints (per-source by
    /// definition) are compiled on the spot and layered on top.
    pub fn find_mapping_precompiled(
        &self,
        ctx: &MatchingContext<'_>,
        domain: &CompiledConstraintSet,
        feedback: &[DomainConstraint],
    ) -> MappingResult {
        let order = refinement_order(ctx);
        if feedback.is_empty() {
            let candidates = self.prepare_candidates(ctx, &self.constraints);
            return search_mapping_compiled(ctx, domain, &candidates, &order, self.config);
        }
        let mut all: Vec<DomainConstraint> =
            Vec::with_capacity(self.constraints.len() + feedback.len());
        all.extend(self.constraints.iter().cloned());
        all.extend(feedback.iter().cloned());
        let candidates = self.prepare_candidates(ctx, &all);
        let extended = domain.with_extra(ctx.labels, feedback);
        search_mapping_compiled(ctx, &extended, &candidates, &order, self.config)
    }

    /// Builds the pruned candidate label sets per tag.
    fn prepare_candidates(
        &self,
        ctx: &MatchingContext<'_>,
        constraints: &[DomainConstraint],
    ) -> Vec<Vec<usize>> {
        let other = ctx.labels.other();
        let mut candidates: Vec<Vec<usize>> = ctx
            .predictions
            .iter()
            .map(|p| {
                let mut ranked = p.ranked_labels();
                if self.candidate_limit > 0 {
                    ranked.truncate(self.candidate_limit);
                }
                if !ranked.contains(&other) {
                    ranked.push(other);
                }
                ranked
            })
            .collect();

        // Hard type constraints prune labels whose data is incompatible
        // (cheap pre-processing, Section 7).
        for c in constraints {
            let ConstraintKind::Hard = c.kind else {
                continue;
            };
            let (label, want_numeric) = match &c.predicate {
                Predicate::IsNumeric { label } => (label, true),
                Predicate::IsTextual { label } => (label, false),
                _ => continue,
            };
            let Some(lid) = ctx.labels.get(label) else {
                continue;
            };
            for (t, cands) in candidates.iter_mut().enumerate() {
                let Some(frac) = ctx.data.numeric_fraction(&ctx.tags[t]) else {
                    continue;
                };
                let incompatible = if want_numeric { frac < 0.5 } else { frac > 0.5 };
                if incompatible {
                    cands.retain(|&l| l != lid);
                }
            }
        }

        // Hard tag-level constraints rewrite candidate sets outright: a
        // `TagIs` pin makes every other label infeasible anyway, so the
        // search should never branch on them, and a `TagIsNot` denial
        // removes its label. This keeps the space small and — crucially —
        // makes user corrections (Section 4.3) binding even when the rest
        // of the search degrades to greedy completion.
        let mut pinned: Vec<Option<usize>> = vec![None; ctx.tags.len()];
        for c in constraints {
            let ConstraintKind::Hard = c.kind else {
                continue;
            };
            match &c.predicate {
                Predicate::TagIs { tag, label } => {
                    if let (Some(t), Some(lid)) = (ctx.tag_index(tag), ctx.labels.get(label)) {
                        candidates[t] = vec![lid];
                        pinned[t] = Some(lid);
                    }
                }
                Predicate::TagIsNot { tag, label } => {
                    if let (Some(t), Some(lid)) = (ctx.tag_index(tag), ctx.labels.get(label)) {
                        if pinned[t].is_none() {
                            candidates[t].retain(|&l| l != lid);
                            if candidates[t].is_empty() {
                                candidates[t].push(other);
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Mandatory labels must stay placeable: for each hard ExactlyOne
        // label, make sure some *unpinned* tag can take it (a pinned tag
        // counts only if pinned to that very label). Otherwise, pruning —
        // or a user pinning the only candidate tag elsewhere — would make
        // every complete mapping infeasible.
        for c in constraints {
            let (ConstraintKind::Hard, Predicate::ExactlyOne { label }) = (&c.kind, &c.predicate)
            else {
                continue;
            };
            let Some(lid) = ctx.labels.get(label) else {
                continue;
            };
            let placeable = (0..ctx.tags.len()).any(|t| match pinned[t] {
                Some(p) => p == lid,
                None => candidates[t].contains(&lid),
            });
            if placeable {
                continue;
            }
            // Re-insert for the three unpinned tags that score it highest.
            let mut by_score: Vec<usize> = (0..ctx.tags.len())
                .filter(|&t| pinned[t].is_none())
                .collect();
            by_score.sort_by(|&a, &b| {
                ctx.predictions[b]
                    .score(lid)
                    .partial_cmp(&ctx.predictions[a].score(lid))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &t in by_score.iter().take(3) {
                candidates[t].push(lid);
            }
        }
        candidates
    }
}

/// The refinement order: tags sorted by decreasing structure score (number
/// of distinct tags nestable below them), the order the paper uses both for
/// A\* refinement and for presenting predictions to the user (Section 6.3).
pub(crate) fn refinement_order(ctx: &MatchingContext<'_>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ctx.tags.len()).collect();
    order.sort_by_key(|&t| std::cmp::Reverse(ctx.schema.nestable_count(&ctx.tags[t])));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_data::SourceData;
    use lsd_learn::{LabelSet, Prediction};
    use lsd_xml::{parse_dtd, SchemaTree};

    struct Fixture {
        labels: LabelSet,
        schema: SchemaTree,
        data: SourceData,
    }

    impl Fixture {
        fn new() -> Self {
            let dtd = parse_dtd(
                "<!ELEMENT l (contact, area, price)>\n\
                 <!ELEMENT contact (name, phone)>\n\
                 <!ELEMENT name (#PCDATA)>\n\
                 <!ELEMENT phone (#PCDATA)>\n\
                 <!ELEMENT area (#PCDATA)>\n\
                 <!ELEMENT price (#PCDATA)>",
            )
            .unwrap();
            let schema = SchemaTree::from_dtd(&dtd).unwrap();
            let mut data =
                SourceData::new(schema.tag_names().map(str::to_string).collect::<Vec<_>>());
            data.push_row([
                ("name", "Kate"),
                ("phone", "(206) 111 2222"),
                ("area", "Seattle, WA"),
                ("price", "$70,000"),
            ]);
            data.push_row([
                ("name", "Mike"),
                ("phone", "(305) 333 4444"),
                ("area", "Miami, FL"),
                ("price", "$250,000"),
            ]);
            Fixture {
                labels: LabelSet::new([
                    "CONTACT-INFO",
                    "AGENT-NAME",
                    "AGENT-PHONE",
                    "ADDRESS",
                    "PRICE",
                ]),
                schema,
                data,
            }
        }

        fn ctx(&self) -> MatchingContext<'_> {
            let tags: Vec<String> = ["contact", "name", "phone", "area", "price"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let peak = |i: usize, v: f64| {
                let n = self.labels.len();
                let mut s = vec![(1.0 - v) / (n as f64 - 1.0); n];
                s[i] = v;
                Prediction::from_scores(s)
            };
            MatchingContext {
                labels: &self.labels,
                schema: &self.schema,
                tags,
                predictions: vec![
                    peak(0, 0.6),
                    peak(1, 0.7),
                    peak(2, 0.8),
                    peak(3, 0.7),
                    peak(4, 0.9),
                ],
                data: &self.data,
                alpha: 1.0,
            }
        }
    }

    #[test]
    fn handler_finds_obvious_mapping() {
        let f = Fixture::new();
        let h = ConstraintHandler::new(vec![]);
        let r = h.find_mapping(&f.ctx());
        assert!(r.feasible);
        assert_eq!(r.assignment, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn refinement_order_puts_structured_tags_first() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let order = refinement_order(&ctx);
        assert_eq!(ctx.tags[order[0]], "contact");
    }

    #[test]
    fn feedback_overrides_prediction() {
        let f = Fixture::new();
        let h = ConstraintHandler::new(vec![]);
        let ctx = f.ctx();
        let fb = [DomainConstraint::hard(Predicate::TagIs {
            tag: "area".into(),
            label: "PRICE".into(),
        })];
        let r = h.find_mapping_with_feedback(&ctx, &fb);
        assert!(r.feasible);
        let price = ctx.labels.get("PRICE").unwrap();
        assert_eq!(r.assignment[3], price);
    }

    #[test]
    fn candidate_pruning_keeps_other_and_forced_labels() {
        let f = Fixture::new();
        let h = ConstraintHandler::new(vec![]).with_candidate_limit(1);
        let ctx = f.ctx();
        // Force `price` to a label far down its ranking.
        let fb = [DomainConstraint::hard(Predicate::TagIs {
            tag: "price".into(),
            label: "AGENT-NAME".into(),
        })];
        let r = h.find_mapping_with_feedback(&ctx, &fb);
        assert!(r.feasible);
        assert_eq!(r.assignment[4], ctx.labels.get("AGENT-NAME").unwrap());
    }

    #[test]
    fn type_preprocessing_blocks_textual_tag_from_numeric_label() {
        let f = Fixture::new();
        let cs = vec![DomainConstraint::hard(Predicate::IsNumeric {
            label: "PRICE".into(),
        })];
        let h = ConstraintHandler::new(cs);
        let ctx = f.ctx();
        // Even if the learners preferred PRICE for `area`, the handler must
        // not assign it: force the scenario with a skewed prediction.
        let mut ctx2 = MatchingContext {
            labels: ctx.labels,
            schema: ctx.schema,
            tags: ctx.tags.clone(),
            predictions: ctx.predictions.clone(),
            data: ctx.data,
            alpha: 1.0,
        };
        let n = f.labels.len();
        let mut s = vec![0.02; n];
        s[f.labels.get("PRICE").unwrap()] = 0.9;
        ctx2.predictions[3] = Prediction::from_scores(s); // `area` claims PRICE
        let r = h.find_mapping(&ctx2);
        assert!(r.feasible);
        assert_ne!(r.assignment[3], f.labels.get("PRICE").unwrap());
    }

    #[test]
    fn exactly_one_reinserted_after_pruning() {
        let f = Fixture::new();
        let cs = vec![DomainConstraint::hard(Predicate::ExactlyOne {
            label: "PRICE".into(),
        })];
        let h = ConstraintHandler::new(cs).with_candidate_limit(1);
        let ctx = f.ctx();
        let r = h.find_mapping(&ctx);
        assert!(r.feasible);
        let price = ctx.labels.get("PRICE").unwrap();
        assert_eq!(r.assignment.iter().filter(|&&l| l == price).count(), 1);
    }

    #[test]
    fn add_constraint_mutates() {
        let mut h = ConstraintHandler::new(vec![]);
        assert!(h.constraints().is_empty());
        h.add_constraint(DomainConstraint::hard(Predicate::AtMostOne {
            label: "X".into(),
        }));
        assert_eq!(h.constraints().len(), 1);
    }
}
