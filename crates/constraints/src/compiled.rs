//! Compiled constraint evaluation — the fast path used by the search.
//!
//! [`crate::evaluate_partial`] resolves label names and queries the schema
//! and data on every call, which is fine for one-off scoring but dominates
//! the A\* search (hundreds of thousands of evaluations on a Real Estate
//! II-sized schema). [`Evaluator`] does all of that once up front:
//!
//! - label names → dense indices; constraints referencing unknown labels
//!   or tags are dropped (they can never fire);
//! - schema relations (nesting, between-tags, tree distance) → `q × q`
//!   matrices;
//! - data predicates (key duplicates, numeric fraction) → per-tag flags;
//! - functional-dependency refutations → lazily cached per tag tuple.
//!
//! Evaluation then costs `O(q + #constraints)` per node with no hashing of
//! strings, using a caller-provided [`Scratch`] to avoid allocation.

use crate::constraint::{ConstraintKind, DomainConstraint, Predicate};
use crate::evaluate::{MatchingContext, INFEASIBLE};
use lsd_learn::LabelSet;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A predicate with *label* names resolved to dense indices. Tag names stay
/// textual: labels are fixed per system, but tags differ per source, so
/// this is the largest compilation step that can be shared across sources.
#[derive(Debug, Clone)]
enum HalfCompiled {
    AtMostOne {
        label: usize,
    },
    ExactlyOne {
        label: usize,
    },
    NestedIn {
        outer: usize,
        inner: usize,
    },
    NotNestedIn {
        outer: usize,
        inner: usize,
    },
    Contiguous {
        a: usize,
        b: usize,
    },
    MutuallyExclusive {
        a: usize,
        b: usize,
    },
    IsKey {
        label: usize,
    },
    FunctionalDependency {
        determinants: Vec<usize>,
        dependent: usize,
    },
    AtMostK {
        label: usize,
        k: usize,
    },
    Proximity {
        a: usize,
        b: usize,
    },
    IsNumeric {
        label: usize,
    },
    IsTextual {
        label: usize,
    },
    TagIs {
        tag: String,
        label: usize,
    },
    TagIsNot {
        tag: String,
        label: usize,
    },
}

#[derive(Debug, Clone)]
struct HalfEntry {
    predicate: HalfCompiled,
    kind: ConstraintKind,
    /// Human-readable rendering of the source constraint (its `Display`
    /// form), carried through compilation so rejected candidates can be
    /// blamed on a nameable constraint.
    description: String,
}

/// Domain constraints compiled against a [`LabelSet`]: the read-only,
/// source-independent half of [`Evaluator`] construction. The batch engine
/// compiles once per system and shares the set (`&CompiledConstraintSet`)
/// across per-source search workers; constraints naming unknown labels are
/// dropped here (they can never fire).
#[derive(Debug, Clone, Default)]
pub struct CompiledConstraintSet {
    entries: Vec<HalfEntry>,
}

impl CompiledConstraintSet {
    /// Resolves label names once. Constraints referencing labels absent
    /// from `labels` are dropped.
    pub fn compile(labels: &LabelSet, constraints: &[DomainConstraint]) -> Self {
        let label_of = |name: &str| labels.get(name);
        let entries = constraints
            .iter()
            .filter_map(|c| {
                let predicate = match &c.predicate {
                    Predicate::AtMostOne { label } => HalfCompiled::AtMostOne {
                        label: label_of(label)?,
                    },
                    Predicate::ExactlyOne { label } => HalfCompiled::ExactlyOne {
                        label: label_of(label)?,
                    },
                    Predicate::NestedIn { outer, inner } => HalfCompiled::NestedIn {
                        outer: label_of(outer)?,
                        inner: label_of(inner)?,
                    },
                    Predicate::NotNestedIn { outer, inner } => HalfCompiled::NotNestedIn {
                        outer: label_of(outer)?,
                        inner: label_of(inner)?,
                    },
                    Predicate::Contiguous { a, b } => HalfCompiled::Contiguous {
                        a: label_of(a)?,
                        b: label_of(b)?,
                    },
                    Predicate::MutuallyExclusive { a, b } => HalfCompiled::MutuallyExclusive {
                        a: label_of(a)?,
                        b: label_of(b)?,
                    },
                    Predicate::IsKey { label } => HalfCompiled::IsKey {
                        label: label_of(label)?,
                    },
                    Predicate::FunctionalDependency {
                        determinants,
                        dependent,
                    } => HalfCompiled::FunctionalDependency {
                        determinants: determinants
                            .iter()
                            .map(|d| label_of(d))
                            .collect::<Option<Vec<_>>>()?,
                        dependent: label_of(dependent)?,
                    },
                    Predicate::AtMostK { label, k } => HalfCompiled::AtMostK {
                        label: label_of(label)?,
                        k: *k,
                    },
                    Predicate::Proximity { a, b } => HalfCompiled::Proximity {
                        a: label_of(a)?,
                        b: label_of(b)?,
                    },
                    Predicate::IsNumeric { label } => HalfCompiled::IsNumeric {
                        label: label_of(label)?,
                    },
                    Predicate::IsTextual { label } => HalfCompiled::IsTextual {
                        label: label_of(label)?,
                    },
                    Predicate::TagIs { tag, label } => HalfCompiled::TagIs {
                        tag: tag.clone(),
                        label: label_of(label)?,
                    },
                    Predicate::TagIsNot { tag, label } => HalfCompiled::TagIsNot {
                        tag: tag.clone(),
                        label: label_of(label)?,
                    },
                };
                Some(HalfEntry {
                    predicate,
                    kind: c.kind,
                    description: c.to_string(),
                })
            })
            .collect();
        CompiledConstraintSet { entries }
    }

    /// This set plus `extra` constraints (per-source user feedback) compiled
    /// against the same labels. The base set is not modified.
    pub fn with_extra(&self, labels: &LabelSet, extra: &[DomainConstraint]) -> Self {
        let mut merged = self.clone();
        merged
            .entries
            .extend(CompiledConstraintSet::compile(labels, extra).entries);
        merged
    }

    /// Number of compiled (retained) constraints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no constraint survived compilation.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Labels demanded by a hard `ExactlyOne` constraint (deadline
    /// propagation in the search; also consumed by `lsd-analysis` for
    /// satisfiability lints).
    pub fn mandatory_labels(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::ExactlyOne { label }) => Some(*label),
                _ => None,
            })
            .collect()
    }

    /// Labels statically excluded from every mapping: a hard `AtMostK`
    /// with `k = 0` means no tag may ever carry the label.
    pub fn hard_excluded_labels(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::AtMostK { label, k: 0 }) => Some(*label),
                _ => None,
            })
            .collect()
    }

    /// Label pairs under a hard `MutuallyExclusive` constraint.
    pub fn hard_exclusive_pairs(&self) -> Vec<(usize, usize)> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::MutuallyExclusive { a, b }) => Some((*a, *b)),
                _ => None,
            })
            .collect()
    }

    /// `(tag, label)` pairs pinned by hard `TagIs` feedback.
    pub fn forced_tag_labels(&self) -> Vec<(&str, usize)> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::TagIs { tag, label }) => {
                    Some((tag.as_str(), *label))
                }
                _ => None,
            })
            .collect()
    }

    /// `(tag, label)` pairs vetoed by hard `TagIsNot` feedback.
    pub fn forbidden_tag_labels(&self) -> Vec<(&str, usize)> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::TagIsNot { tag, label }) => {
                    Some((tag.as_str(), *label))
                }
                _ => None,
            })
            .collect()
    }

    /// Hard `NestedIn { outer, inner }` pairs with `outer == inner`. Since
    /// no tag is nested in itself, such a constraint silently excludes its
    /// label from every mapping that assigns it twice — and combined with a
    /// mandatory label it is a static contradiction.
    pub fn hard_self_nested_labels(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter_map(|e| match (&e.kind, &e.predicate) {
                (ConstraintKind::Hard, HalfCompiled::NestedIn { outer, inner })
                    if outer == inner =>
                {
                    Some(*outer)
                }
                _ => None,
            })
            .collect()
    }
}

/// A predicate with every name — labels *and* tags — resolved to an index.
#[derive(Debug, Clone)]
enum CompiledPredicate {
    AtMostOne {
        label: usize,
    },
    ExactlyOne {
        label: usize,
    },
    NestedIn {
        outer: usize,
        inner: usize,
    },
    NotNestedIn {
        outer: usize,
        inner: usize,
    },
    Contiguous {
        a: usize,
        b: usize,
    },
    MutuallyExclusive {
        a: usize,
        b: usize,
    },
    IsKey {
        label: usize,
    },
    FunctionalDependency {
        determinants: Vec<usize>,
        dependent: usize,
    },
    AtMostK {
        label: usize,
        k: usize,
    },
    Proximity {
        a: usize,
        b: usize,
    },
    IsNumeric {
        label: usize,
    },
    IsTextual {
        label: usize,
    },
    TagIs {
        tag: usize,
        label: usize,
    },
    TagIsNot {
        tag: usize,
        label: usize,
    },
}

#[derive(Debug, Clone)]
struct Compiled {
    predicate: CompiledPredicate,
    kind: ConstraintKind,
    description: String,
}

/// One constraint's verdict on an assignment, from
/// [`Evaluator::violations`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ConstraintViolation {
    /// The constraint's `Display` rendering, e.g.
    /// `"[hard] at most one tag maps to ADDRESS"`.
    pub description: String,
    /// True for a hard constraint (a violation makes the assignment
    /// infeasible rather than merely costly).
    pub hard: bool,
    /// The raw violation magnitude (0.0 when satisfied).
    pub violation: f64,
}

/// Reusable per-thread scratch space for [`Evaluator::evaluate`].
#[derive(Debug, Default)]
pub struct Scratch {
    /// `tags_by_label[l]` — tags currently assigned label `l`.
    tags_by_label: Vec<Vec<usize>>,
}

/// The compiled evaluator for one matching context + constraint set.
pub struct Evaluator<'a> {
    ctx: &'a MatchingContext<'a>,
    constraints: Vec<Compiled>,
    /// `nested[inner][outer]` — inner tag transitively below outer tag.
    nested: Vec<Vec<bool>>,
    /// `between[a][b]` — tag indices between siblings a and b, or None if
    /// not siblings.
    between: Vec<Vec<Option<Vec<usize>>>>,
    /// `tree_dist[a][b]` — undirected schema-tree distance.
    tree_dist: Vec<Vec<usize>>,
    /// Per tag: extracted column has duplicate values.
    has_duplicates: Vec<bool>,
    /// Per tag: fraction of numeric values, if any data.
    numeric_fraction: Vec<Option<f64>>,
    /// `assignment_cost[t][l]` — the `−α·log s` term.
    assignment_cost: Vec<Vec<f64>>,
    /// Per tag: the cheapest assignment cost (heuristic building block).
    best_cost: Vec<f64>,
    /// Lazily cached FD refutations keyed by (determinant tags, dependent
    /// tag).
    fd_cache: RefCell<HashMap<(Vec<usize>, usize), bool>>,
    /// Calls to [`Evaluator::evaluate`] — a plain cell so the hot loop pays
    /// one non-atomic add; the search flushes it into the metrics registry
    /// once per run.
    evaluations: Cell<u64>,
}

impl<'a> Evaluator<'a> {
    /// Compiles the constraints against a context (one-shot path: label
    /// resolution and per-source finishing in one call).
    pub fn new(ctx: &'a MatchingContext<'a>, constraints: &[DomainConstraint]) -> Self {
        Evaluator::with_compiled(
            ctx,
            &CompiledConstraintSet::compile(ctx.labels, constraints),
        )
    }

    /// Finishes a pre-compiled constraint set for one source: resolves tag
    /// names against `ctx.tags` (entries naming unknown tags are dropped)
    /// and builds the per-source schema/data matrices. The set is only
    /// borrowed during construction, so one `CompiledConstraintSet` can
    /// serve many concurrent per-source evaluators.
    pub fn with_compiled(ctx: &'a MatchingContext<'a>, set: &CompiledConstraintSet) -> Self {
        let q = ctx.tags.len();
        let tag_of = |name: &str| ctx.tag_index(name);

        let compiled = set
            .entries
            .iter()
            .filter_map(|e| {
                let predicate = match &e.predicate {
                    HalfCompiled::AtMostOne { label } => {
                        CompiledPredicate::AtMostOne { label: *label }
                    }
                    HalfCompiled::ExactlyOne { label } => {
                        CompiledPredicate::ExactlyOne { label: *label }
                    }
                    HalfCompiled::NestedIn { outer, inner } => CompiledPredicate::NestedIn {
                        outer: *outer,
                        inner: *inner,
                    },
                    HalfCompiled::NotNestedIn { outer, inner } => CompiledPredicate::NotNestedIn {
                        outer: *outer,
                        inner: *inner,
                    },
                    HalfCompiled::Contiguous { a, b } => {
                        CompiledPredicate::Contiguous { a: *a, b: *b }
                    }
                    HalfCompiled::MutuallyExclusive { a, b } => {
                        CompiledPredicate::MutuallyExclusive { a: *a, b: *b }
                    }
                    HalfCompiled::IsKey { label } => CompiledPredicate::IsKey { label: *label },
                    HalfCompiled::FunctionalDependency {
                        determinants,
                        dependent,
                    } => CompiledPredicate::FunctionalDependency {
                        determinants: determinants.clone(),
                        dependent: *dependent,
                    },
                    HalfCompiled::AtMostK { label, k } => CompiledPredicate::AtMostK {
                        label: *label,
                        k: *k,
                    },
                    HalfCompiled::Proximity { a, b } => {
                        CompiledPredicate::Proximity { a: *a, b: *b }
                    }
                    HalfCompiled::IsNumeric { label } => {
                        CompiledPredicate::IsNumeric { label: *label }
                    }
                    HalfCompiled::IsTextual { label } => {
                        CompiledPredicate::IsTextual { label: *label }
                    }
                    HalfCompiled::TagIs { tag, label } => CompiledPredicate::TagIs {
                        tag: tag_of(tag)?,
                        label: *label,
                    },
                    HalfCompiled::TagIsNot { tag, label } => CompiledPredicate::TagIsNot {
                        tag: tag_of(tag)?,
                        label: *label,
                    },
                };
                Some(Compiled {
                    predicate,
                    kind: e.kind,
                    description: e.description.clone(),
                })
            })
            .collect();

        let nested: Vec<Vec<bool>> = (0..q)
            .map(|inner| {
                (0..q)
                    .map(|outer| ctx.schema.is_nested_in(&ctx.tags[inner], &ctx.tags[outer]))
                    .collect()
            })
            .collect();
        let between: Vec<Vec<Option<Vec<usize>>>> = (0..q)
            .map(|a| {
                (0..q)
                    .map(|b| {
                        ctx.schema
                            .tags_between(&ctx.tags[a], &ctx.tags[b])
                            .map(|names| names.iter().filter_map(|n| ctx.tag_index(n)).collect())
                    })
                    .collect()
            })
            .collect();
        let tree_dist: Vec<Vec<usize>> = (0..q)
            .map(|a| {
                (0..q)
                    .map(|b| {
                        ctx.schema
                            .tree_distance(&ctx.tags[a], &ctx.tags[b])
                            .unwrap_or(0)
                    })
                    .collect()
            })
            .collect();
        let has_duplicates: Vec<bool> = ctx
            .tags
            .iter()
            .map(|t| ctx.data.has_duplicates(t))
            .collect();
        let numeric_fraction: Vec<Option<f64>> = ctx
            .tags
            .iter()
            .map(|t| ctx.data.numeric_fraction(t))
            .collect();
        let n = ctx.labels.len();
        let assignment_cost: Vec<Vec<f64>> = (0..q)
            .map(|t| (0..n).map(|l| ctx.assignment_cost(t, l)).collect())
            .collect();
        let best_cost: Vec<f64> = (0..q).map(|t| ctx.best_assignment_cost(t)).collect();

        Evaluator {
            ctx,
            constraints: compiled,
            nested,
            between,
            tree_dist,
            has_duplicates,
            numeric_fraction,
            assignment_cost,
            best_cost,
            fd_cache: RefCell::new(HashMap::new()),
            evaluations: Cell::new(0),
        }
    }

    /// Number of [`Evaluator::evaluate`] calls so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// Number of cached functional-dependency refutation entries.
    pub fn fd_cache_entries(&self) -> usize {
        self.fd_cache.borrow().len()
    }

    /// A fresh scratch sized for this evaluator.
    pub fn scratch(&self) -> Scratch {
        Scratch {
            tags_by_label: vec![Vec::new(); self.ctx.labels.len()],
        }
    }

    /// The admissible per-tag heuristic value (cheapest probability cost).
    pub fn best_cost(&self, tag: usize) -> f64 {
        self.best_cost[tag]
    }

    /// Fast equivalent of [`crate::evaluate_partial`].
    pub fn evaluate(&self, assignment: &[Option<usize>], scratch: &mut Scratch) -> f64 {
        self.evaluations.set(self.evaluations.get() + 1);
        for v in &mut scratch.tags_by_label {
            v.clear();
        }
        let mut cost = 0.0;
        let mut assigned = 0usize;
        for (t, a) in assignment.iter().enumerate() {
            if let Some(l) = a {
                cost += self.assignment_cost[t][*l];
                scratch.tags_by_label[*l].push(t);
                assigned += 1;
            }
        }
        let complete = assigned == assignment.len();
        let by = &scratch.tags_by_label;

        for c in &self.constraints {
            let violation = self.violation_of(c, assignment, by, complete);
            if violation <= 0.0 {
                continue;
            }
            match c.kind {
                ConstraintKind::Hard => return INFEASIBLE,
                ConstraintKind::SoftBinary { cost: unit } => cost += unit,
                ConstraintKind::SoftNumeric { weight } => cost += weight * violation,
            }
        }
        cost
    }

    /// Per-constraint verdicts for a *complete* assignment, in compiled
    /// order — the blame report behind "why was this candidate rejected".
    /// Unlike [`Evaluator::evaluate`], which returns at the first hard
    /// violation, this scores every constraint.
    pub fn violations(
        &self,
        assignment: &[Option<usize>],
        scratch: &mut Scratch,
    ) -> Vec<ConstraintViolation> {
        for v in &mut scratch.tags_by_label {
            v.clear();
        }
        let mut assigned = 0usize;
        for (t, a) in assignment.iter().enumerate() {
            if let Some(l) = a {
                scratch.tags_by_label[*l].push(t);
                assigned += 1;
            }
        }
        let complete = assigned == assignment.len();
        let by = &scratch.tags_by_label;
        self.constraints
            .iter()
            .map(|c| ConstraintViolation {
                description: c.description.clone(),
                hard: matches!(c.kind, ConstraintKind::Hard),
                violation: self.violation_of(c, assignment, by, complete),
            })
            .collect()
    }

    /// The raw violation magnitude of one compiled constraint.
    #[inline]
    fn violation_of(
        &self,
        c: &Compiled,
        assignment: &[Option<usize>],
        by: &[Vec<usize>],
        complete: bool,
    ) -> f64 {
        let other = self.ctx.labels.other();
        match &c.predicate {
            CompiledPredicate::AtMostOne { label } => {
                let n = by[*label].len();
                if n > 1 {
                    (n - 1) as f64
                } else {
                    0.0
                }
            }
            CompiledPredicate::ExactlyOne { label } => {
                let n = by[*label].len();
                if n > 1 {
                    (n - 1) as f64
                } else if n == 0 && complete {
                    1.0
                } else {
                    0.0
                }
            }
            CompiledPredicate::NestedIn { outer, inner } => {
                pair_count(&by[*outer], &by[*inner], |a, b| !self.nested[b][a])
            }
            CompiledPredicate::NotNestedIn { outer, inner } => {
                pair_count(&by[*outer], &by[*inner], |a, b| self.nested[b][a])
            }
            CompiledPredicate::Contiguous { a, b } => {
                let mut v = 0.0;
                for &ta in &by[*a] {
                    for &tb in &by[*b] {
                        match &self.between[ta][tb] {
                            None => v += 1.0,
                            Some(mid) => {
                                for &t in mid {
                                    if matches!(assignment[t], Some(l) if l != other) {
                                        v += 1.0;
                                    }
                                }
                            }
                        }
                    }
                }
                v
            }
            CompiledPredicate::MutuallyExclusive { a, b } => {
                if !by[*a].is_empty() && !by[*b].is_empty() {
                    1.0
                } else {
                    0.0
                }
            }
            CompiledPredicate::IsKey { label } => by[*label]
                .iter()
                .filter(|&&t| self.has_duplicates[t])
                .count() as f64,
            CompiledPredicate::FunctionalDependency {
                determinants,
                dependent,
            } => {
                let dets: Option<Vec<usize>> = determinants
                    .iter()
                    .map(|&d| by[d].first().copied())
                    .collect();
                match (dets, by[*dependent].first().copied()) {
                    (Some(dets), Some(dep)) => {
                        let key = (dets.clone(), dep);
                        let mut cache = self.fd_cache.borrow_mut();
                        let refuted = *cache.entry(key).or_insert_with(|| {
                            let det_names: Vec<&str> =
                                dets.iter().map(|&t| self.ctx.tags[t].as_str()).collect();
                            self.ctx.data.fd_refuted(&det_names, &self.ctx.tags[dep])
                        });
                        if refuted {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => 0.0,
                }
            }
            CompiledPredicate::AtMostK { label, k } => {
                let n = by[*label].len();
                if n > *k {
                    (n - k) as f64
                } else {
                    0.0
                }
            }
            CompiledPredicate::Proximity { a, b } => {
                let mut v = 0.0;
                for &ta in &by[*a] {
                    for &tb in &by[*b] {
                        v += self.tree_dist[ta][tb].saturating_sub(2) as f64;
                    }
                }
                v
            }
            CompiledPredicate::IsNumeric { label } => by[*label]
                .iter()
                .filter(|&&t| self.numeric_fraction[t].is_some_and(|f| f < 0.5))
                .count() as f64,
            CompiledPredicate::IsTextual { label } => by[*label]
                .iter()
                .filter(|&&t| self.numeric_fraction[t].is_some_and(|f| f > 0.5))
                .count() as f64,
            CompiledPredicate::TagIs { tag, label } => {
                if matches!(assignment[*tag], Some(l) if l != *label) {
                    1.0
                } else {
                    0.0
                }
            }
            CompiledPredicate::TagIsNot { tag, label } => {
                if assignment[*tag] == Some(*label) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Counts pairs `(a, b)` from the two tag lists satisfying `violates`.
fn pair_count(outer: &[usize], inner: &[usize], violates: impl Fn(usize, usize) -> bool) -> f64 {
    let mut v = 0usize;
    for &a in outer {
        for &b in inner {
            if violates(a, b) {
                v += 1;
            }
        }
    }
    v as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_partial;
    use crate::source_data::SourceData;
    use lsd_learn::{LabelSet, Prediction};
    use lsd_xml::{parse_dtd, SchemaTree};
    use rand::Rng;
    use rand::SeedableRng;

    /// The compiled evaluator must agree with the reference implementation
    /// on random partial assignments across every constraint type.
    #[test]
    fn matches_reference_evaluator_on_random_assignments() {
        let dtd = parse_dtd(
            "<!ELEMENT l (contact, area, baths, extra, beds, price)>\n\
             <!ELEMENT contact (name, phone)>\n\
             <!ELEMENT name (#PCDATA)>\n<!ELEMENT phone (#PCDATA)>\n\
             <!ELEMENT area (#PCDATA)>\n<!ELEMENT baths (#PCDATA)>\n\
             <!ELEMENT extra (#PCDATA)>\n<!ELEMENT beds (#PCDATA)>\n\
             <!ELEMENT price (#PCDATA)>",
        )
        .unwrap();
        let schema = SchemaTree::from_dtd(&dtd).unwrap();
        let labels = LabelSet::new([
            "CONTACT-INFO",
            "AGENT-NAME",
            "AGENT-PHONE",
            "ADDRESS",
            "BATHS",
            "BEDS",
            "PRICE",
        ]);
        let tags: Vec<String> = schema.tag_names().map(str::to_string).collect();
        let mut data = SourceData::new(tags.clone());
        data.push_row([
            ("name", "Kate"),
            ("phone", "(206) 111 2222"),
            ("area", "Seattle"),
            ("baths", "2"),
            ("beds", "3"),
            ("price", "$70,000"),
        ]);
        data.push_row([
            ("name", "Mike"),
            ("phone", "(305) 333 4444"),
            ("area", "Miami"),
            ("baths", "2"),
            ("beds", "4"),
            ("price", "$90,000"),
        ]);

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = labels.len();
        let predictions: Vec<Prediction> = (0..tags.len())
            .map(|_| Prediction::from_scores((0..n).map(|_| rng.gen_range(0.01..1.0)).collect()))
            .collect();
        let ctx = MatchingContext {
            labels: &labels,
            schema: &schema,
            tags,
            predictions,
            data: &data,
            alpha: 1.0,
        };

        use crate::constraint::{DomainConstraint as DC, Predicate as P};
        let constraints = vec![
            DC::hard(P::AtMostOne {
                label: "ADDRESS".into(),
            }),
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::NestedIn {
                outer: "CONTACT-INFO".into(),
                inner: "AGENT-NAME".into(),
            }),
            DC::hard(P::NotNestedIn {
                outer: "CONTACT-INFO".into(),
                inner: "PRICE".into(),
            }),
            DC::hard(P::Contiguous {
                a: "BATHS".into(),
                b: "BEDS".into(),
            }),
            DC::hard(P::MutuallyExclusive {
                a: "BATHS".into(),
                b: "BEDS".into(),
            }),
            DC::hard(P::IsKey {
                label: "PRICE".into(),
            }),
            DC::hard(P::FunctionalDependency {
                determinants: vec!["BEDS".into()],
                dependent: "BATHS".into(),
            }),
            DC::soft(P::AtMostK {
                label: "ADDRESS".into(),
                k: 1,
            }),
            DC::numeric(
                P::Proximity {
                    a: "AGENT-NAME".into(),
                    b: "AGENT-PHONE".into(),
                },
                0.3,
            ),
            DC::hard(P::IsNumeric {
                label: "BATHS".into(),
            }),
            DC::hard(P::IsTextual {
                label: "ADDRESS".into(),
            }),
            DC::hard(P::TagIs {
                tag: "area".into(),
                label: "ADDRESS".into(),
            }),
            DC::hard(P::TagIsNot {
                tag: "extra".into(),
                label: "PRICE".into(),
            }),
            // Constraints over unknown labels must be inert in both paths.
            DC::hard(P::AtMostOne {
                label: "GHOST".into(),
            }),
        ];

        let evaluator = Evaluator::new(&ctx, &constraints);
        let mut scratch = evaluator.scratch();
        let q = ctx.tags.len();
        for _ in 0..500 {
            let assignment: Vec<Option<usize>> = (0..q)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        None
                    } else {
                        Some(rng.gen_range(0..n))
                    }
                })
                .collect();
            let fast = evaluator.evaluate(&assignment, &mut scratch);
            let slow = evaluate_partial(&ctx, &constraints, &assignment);
            if fast.is_infinite() || slow.is_infinite() {
                assert_eq!(fast, slow, "assignment {assignment:?}");
            } else {
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "{fast} vs {slow} for {assignment:?}"
                );
            }
        }
    }
}
