//! # lsd-constraints
//!
//! The domain-constraint engine of LSD (paper Section 4). Domain constraints
//! impose semantic regularities on the schemas and data of the sources in a
//! domain; they are specified once, when the mediated schema is created, and
//! apply to every source thereafter.
//!
//! - [`Predicate`] / [`DomainConstraint`] — the constraint language covering
//!   every row of the paper's Table 1: *frequency*, *nesting*, *contiguity*,
//!   *exclusivity* and *column* (key / functional-dependency) hard
//!   constraints, plus *binary* and *numeric* soft constraints, and the
//!   tag-level equality constraints used for user feedback (Section 4.3).
//! - [`SourceData`] — row-aligned extracted data, used to verify column
//!   constraints ("the few data instances we extract from the source will be
//!   enough to find a violation").
//! - [`MatchingContext`] + [`evaluate_partial`] — the cost model
//!   `cost(m) = Σᵢ λᵢ·cost(m,Tᵢ) − α·log prob(m)` over partial and complete
//!   candidate mappings.
//! - [`ConstraintHandler`] — the search for the least-cost mapping: A\* with
//!   an admissible domain-independent heuristic (the paper's choice,
//!   Section 4.2), with beam-search and greedy alternatives for the
//!   ablation bench, plus the constraint pre-processing extension from
//!   Section 7 (cheap per-tag type constraints prune labels before search).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod compiled;
mod constraint;
mod evaluate;
mod handler;
mod search;
mod source_data;

pub use compiled::{CompiledConstraintSet, ConstraintViolation, Evaluator, Scratch};
pub use constraint::{ConstraintKind, DomainConstraint, Predicate};
pub use evaluate::{evaluate_partial, MatchingContext, INFEASIBLE};
pub use handler::ConstraintHandler;
pub use search::{
    search_mapping, search_mapping_compiled, MappingResult, SearchAlgorithm, SearchConfig,
    SearchEvents, SearchStats,
};
pub use source_data::SourceData;
