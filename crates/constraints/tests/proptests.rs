//! Property-based tests for the constraint engine: random constraint sets
//! and predictions must never panic, and the search must uphold its
//! contracts (assignment shape, feasibility flag, greedy ≥ A\* cost).

use lsd_constraints::{
    evaluate_partial, ConstraintHandler, DomainConstraint, MatchingContext, Predicate,
    SearchAlgorithm, SearchConfig, SourceData,
};
use lsd_learn::{LabelSet, Prediction};
use lsd_xml::{parse_dtd, SchemaTree};
use proptest::prelude::*;

const LABELS: [&str; 5] = ["ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON"];
const TAGS: [&str; 6] = ["root", "grp", "t1", "t2", "t3", "t4"];

fn schema() -> SchemaTree {
    let dtd = parse_dtd(
        "<!ELEMENT root (grp, t3, t4)>\n<!ELEMENT grp (t1, t2)>\n\
         <!ELEMENT t1 (#PCDATA)>\n<!ELEMENT t2 (#PCDATA)>\n\
         <!ELEMENT t3 (#PCDATA)>\n<!ELEMENT t4 (#PCDATA)>",
    )
    .expect("valid DTD");
    SchemaTree::from_dtd(&dtd).expect("closed DTD")
}

fn data() -> SourceData {
    let mut d = SourceData::new(TAGS.iter().map(|t| t.to_string()).collect::<Vec<_>>());
    d.push_row([("t1", "1"), ("t2", "alpha"), ("t3", "7"), ("t4", "x")]);
    d.push_row([("t1", "2"), ("t2", "beta"), ("t3", "7"), ("t4", "y")]);
    d
}

/// An arbitrary label name — sometimes unknown, to exercise the inert path.
fn arb_label() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..LABELS.len()).prop_map(|i| LABELS[i].to_string()),
        Just("NO-SUCH-LABEL".to_string()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        arb_label().prop_map(|label| Predicate::AtMostOne { label }),
        arb_label().prop_map(|label| Predicate::ExactlyOne { label }),
        (arb_label(), arb_label()).prop_map(|(outer, inner)| Predicate::NestedIn { outer, inner }),
        (arb_label(), arb_label())
            .prop_map(|(outer, inner)| Predicate::NotNestedIn { outer, inner }),
        (arb_label(), arb_label()).prop_map(|(a, b)| Predicate::Contiguous { a, b }),
        (arb_label(), arb_label()).prop_map(|(a, b)| Predicate::MutuallyExclusive { a, b }),
        arb_label().prop_map(|label| Predicate::IsKey { label }),
        (arb_label(), arb_label()).prop_map(|(d, dep)| Predicate::FunctionalDependency {
            determinants: vec![d],
            dependent: dep,
        }),
        (arb_label(), 0usize..3).prop_map(|(label, k)| Predicate::AtMostK { label, k }),
        (arb_label(), arb_label()).prop_map(|(a, b)| Predicate::Proximity { a, b }),
        arb_label().prop_map(|label| Predicate::IsNumeric { label }),
        arb_label().prop_map(|label| Predicate::IsTextual { label }),
    ]
}

fn arb_constraint() -> impl Strategy<Value = DomainConstraint> {
    (arb_predicate(), 0u8..3).prop_map(|(predicate, kind)| match kind {
        0 => DomainConstraint::hard(predicate),
        1 => DomainConstraint::soft(predicate),
        _ => DomainConstraint::numeric(predicate, 0.5),
    })
}

fn arb_predictions() -> impl Strategy<Value = Vec<Prediction>> {
    prop::collection::vec(
        prop::collection::vec(0.01f64..1.0, LABELS.len() + 1).prop_map(Prediction::from_scores),
        TAGS.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The handler never panics and always returns one label per tag, for
    /// any constraint set and any predictions.
    #[test]
    fn handler_total_and_well_shaped(
        constraints in prop::collection::vec(arb_constraint(), 0..12),
        predictions in arb_predictions(),
        algorithm in prop_oneof![
            Just(SearchAlgorithm::AStar { max_expansions: 2_000 }),
            Just(SearchAlgorithm::Beam { width: 4 }),
            Just(SearchAlgorithm::Greedy),
        ],
    ) {
        let labels = LabelSet::new(LABELS);
        let schema = schema();
        let data = data();
        let ctx = MatchingContext {
            labels: &labels,
            schema: &schema,
            tags: TAGS.iter().map(|t| t.to_string()).collect(),
            predictions,
            data: &data,
            alpha: 1.0,
        };
        let handler = ConstraintHandler::new(constraints.clone())
            .with_config(SearchConfig { algorithm, heuristic_weight: 1.2 });
        let result = handler.find_mapping(&ctx);
        prop_assert_eq!(result.assignment.len(), TAGS.len());
        prop_assert!(result.assignment.iter().all(|&l| l < labels.len()));
        // If flagged feasible, the full evaluation agrees it is finite.
        if result.feasible {
            let opt: Vec<Option<usize>> = result.assignment.iter().map(|&l| Some(l)).collect();
            let cost = evaluate_partial(&ctx, &constraints, &opt);
            prop_assert!(cost.is_finite(), "feasible result evaluates to {cost}");
        }
    }

    /// Admissible A* never returns a costlier mapping than greedy under the
    /// same (finite) constraint set.
    #[test]
    fn astar_cost_at_most_greedy(
        constraints in prop::collection::vec(arb_constraint(), 0..8),
        predictions in arb_predictions(),
    ) {
        let labels = LabelSet::new(LABELS);
        let schema = schema();
        let data = data();
        let ctx = MatchingContext {
            labels: &labels,
            schema: &schema,
            tags: TAGS.iter().map(|t| t.to_string()).collect(),
            predictions,
            data: &data,
            alpha: 1.0,
        };
        let run = |algorithm| {
            ConstraintHandler::new(constraints.clone())
                .with_config(SearchConfig { algorithm, heuristic_weight: 1.0 })
                .find_mapping(&ctx)
        };
        let astar = run(SearchAlgorithm::AStar { max_expansions: 200_000 });
        let greedy = run(SearchAlgorithm::Greedy);
        prop_assume!(astar.feasible && astar.stats.optimal && greedy.feasible);
        prop_assert!(
            astar.cost <= greedy.cost + 1e-9,
            "A* cost {} > greedy cost {}",
            astar.cost,
            greedy.cost
        );
    }

    /// Partial-assignment evaluation is monotone for hard constraints:
    /// extending an infeasible prefix can never make it feasible.
    #[test]
    fn infeasible_prefixes_stay_infeasible(
        constraints in prop::collection::vec(arb_constraint(), 1..8),
        predictions in arb_predictions(),
        assignment in prop::collection::vec(prop::option::of(0usize..LABELS.len() + 1), TAGS.len()),
        extend_at in 0usize..TAGS.len(),
        extend_with in 0usize..LABELS.len() + 1,
    ) {
        let labels = LabelSet::new(LABELS);
        let schema = schema();
        let data = data();
        let ctx = MatchingContext {
            labels: &labels,
            schema: &schema,
            tags: TAGS.iter().map(|t| t.to_string()).collect(),
            predictions,
            data: &data,
            alpha: 1.0,
        };
        // Only meaningful when there is an unassigned slot to extend:
        // completing a partial assignment can trigger ExactlyOne's
        // at-completion check, which is not a prefix violation.
        prop_assume!(assignment[extend_at].is_none());
        let mut extended = assignment.clone();
        extended[extend_at] = Some(extend_with);
        prop_assume!(extended.iter().any(Option::is_none));
        let before = evaluate_partial(&ctx, &constraints, &assignment);
        let after = evaluate_partial(&ctx, &constraints, &extended);
        if before.is_infinite() {
            prop_assert!(after.is_infinite(), "extension repaired an infeasible prefix");
        }
    }
}
