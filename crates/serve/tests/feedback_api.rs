//! End-to-end tests of the feedback loop: `POST /v1/feedback` durably logs
//! typed corrections, the retrain worker folds them into a new model
//! generation, and the hot-swap serves the corrected mapping without a
//! single failed request. Also covers the crash path: corrections acked to
//! the WAL before a shutdown are replayed and folded on the next boot.

use lsd_core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher, StatsLearner};
use lsd_core::{
    Correction, Feedback, FeedbackRecord, FeedbackWal, Lsd, LsdBuilder, Source, TrainedSource,
};
use lsd_serve::{json, ModelRegistry, ServeConfig, Server, ServerHandle};
use lsd_xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const MEDIATED: &str = "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, PHONE)>\n\
                        <!ELEMENT ADDRESS (#PCDATA)>\n\
                        <!ELEMENT DESCRIPTION (#PCDATA)>\n\
                        <!ELEMENT PHONE (#PCDATA)>";

const SOURCE_DTD: &str = "<!ELEMENT home (location, comments, contact)>\n\
                          <!ELEMENT location (#PCDATA)>\n\
                          <!ELEMENT comments (#PCDATA)>\n\
                          <!ELEMENT contact (#PCDATA)>";

const QUERY_ROWS: [(&str, &str, &str); 2] = [
    ("Raleigh, NC", "Corner lot with big trees", "(919) 222 3333"),
    ("Tampa, FL", "Walkable and sunny", "(813) 444 5555"),
];

fn listings(rows: &[(&str, &str, &str)]) -> Vec<lsd_xml::Element> {
    rows.iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<home><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></home>"
            ))
            .expect("well-formed listing")
        })
        .collect()
}

fn train_model() -> Lsd {
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let dtd = parse_dtd(SOURCE_DTD).expect("source DTD");
    let train = TrainedSource {
        source: Source::from_xml(
            "train",
            dtd,
            listings(&[
                ("Miami, FL", "Great view of the bay", "(305) 111 2222"),
                ("Boston, MA", "Fantastic yard and porch", "(617) 333 4444"),
                ("Austin, TX", "Nice area near downtown", "(512) 555 6666"),
            ]),
        ),
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .expect("builds");
    lsd.train(std::slice::from_ref(&train)).expect("trains");
    lsd
}

fn query_source() -> Source {
    Source::from_xml(
        "query",
        parse_dtd(SOURCE_DTD).expect("query DTD"),
        listings(&QUERY_ROWS),
    )
}

fn source_json() -> serde::Value {
    let listing_strings: Vec<String> = QUERY_ROWS
        .iter()
        .map(|(a, d, p)| {
            format!(
                "<home><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></home>"
            )
        })
        .collect();
    serde::Value::Map(vec![
        ("name".to_string(), serde::Value::Str("query".to_string())),
        ("dtd".to_string(), serde::Value::Str(SOURCE_DTD.to_string())),
        (
            "listings".to_string(),
            serde::Value::Seq(listing_strings.into_iter().map(serde::Value::Str).collect()),
        ),
    ])
}

fn match_request_body() -> String {
    let doc = serde::Value::Map(vec![("source".to_string(), source_json())]);
    serde_json::to_string(&doc).expect("serializes")
}

/// The feedback body: "tag `comments` actually maps to PHONE".
fn feedback_request_body() -> String {
    let correction = serde::Value::Map(vec![
        ("tag".to_string(), serde::Value::Str("comments".to_string())),
        (
            "kind".to_string(),
            serde::Value::Map(vec![(
                "TagIs".to_string(),
                serde::Value::Map(vec![(
                    "label".to_string(),
                    serde::Value::Str("PHONE".to_string()),
                )]),
            )]),
        ),
    ]);
    let doc = serde::Value::Map(vec![
        ("origin".to_string(), serde::Value::Str("test".to_string())),
        ("source".to_string(), source_json()),
        (
            "corrections".to_string(),
            serde::Value::Seq(vec![correction]),
        ),
    ]);
    serde_json::to_string(&doc).expect("serializes")
}

struct HttpResponse {
    status: u16,
    body: Vec<u8>,
}

impl HttpResponse {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                length = v.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    HttpResponse { status, body }
}

fn dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("lsd-feedback-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let models = base.join("models");
    let wals = base.join("feedback");
    std::fs::create_dir_all(&models).expect("model dir");
    (models, wals)
}

fn boot(models: &Path, wals: &Path) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::open(models).expect("registry opens");
    let config = ServeConfig {
        feedback_dir: Some(wals.to_path_buf()),
        ..ServeConfig::default()
    };
    let server = Server::bind(config, registry).expect("binds");
    server.spawn()
}

/// Polls `GET /v1/models` until the active model reports `generation` (or
/// panics after a generous timeout). Returns how many polls it took.
fn wait_for_generation(addr: SocketAddr, generation: u64) -> usize {
    let needle = format!("\"generation\":{generation}");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut polls = 0;
    loop {
        polls += 1;
        let listing = http(addr, "GET", "/v1/models", b"").text();
        if listing.contains(&needle) {
            return polls;
        }
        assert!(
            Instant::now() < deadline,
            "generation {generation} never appeared; last listing: {listing}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// What the retrain worker should produce, computed directly: re-match the
/// feedback source under the correction, warm-train on the constrained
/// mapping, and match the query. The server's post-retrain response must be
/// byte-identical to this.
fn expected_after_retrain(snapshot: &Path) -> Lsd {
    let mut lsd = Lsd::load_json(snapshot).expect("loads");
    let source = query_source();
    let feedback = Feedback::from_corrections(vec![Correction::tag_is("comments", "PHONE")]);
    let outcome = lsd.match_source_with(&source, &feedback).expect("matches");
    let corrected = TrainedSource {
        source,
        mapping: outcome.mapping().clone(),
    };
    lsd.train_incremental(std::slice::from_ref(&corrected))
        .expect("warm-trains");
    lsd
}

#[test]
fn feedback_retrains_and_hot_swaps_without_dropping_requests() {
    let (models, wals) = dirs("loop");
    let lsd = train_model();
    lsd.save_json(models.join("m.json")).expect("saves");

    // Precondition: the model must get `comments` wrong w.r.t. the
    // correction we are about to send, or the test shows nothing.
    let baseline = lsd.match_source(&query_source()).expect("matches");
    assert_eq!(baseline.label_of("comments"), Some("DESCRIPTION"));

    let expected = expected_after_retrain(&models.join("m.json"));
    assert_eq!(
        expected
            .match_source(&query_source())
            .expect("matches")
            .label_of("comments"),
        Some("PHONE"),
        "warm-training on the corrected mapping must flip the label"
    );
    let expected_body = json::match_body(
        "m",
        &expected.match_source(&query_source()).expect("matches"),
    );

    let (handle, join) = boot(&models, &wals);
    let addr = handle.addr();

    // Clients hammer /v1/match for the whole retrain window; any 5xx fails
    // the zero-downtime guarantee.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let response = http(addr, "POST", "/v1/match", match_request_body().as_bytes());
                    statuses.push(response.status);
                }
                statuses
            })
        })
        .collect();

    let ack = http(
        addr,
        "POST",
        "/v1/feedback",
        feedback_request_body().as_bytes(),
    );
    assert_eq!(ack.status, 200, "body: {}", ack.text());
    let ack_text = ack.text();
    assert!(ack_text.contains("\"accepted\":1"), "{ack_text}");
    assert!(ack_text.contains("\"record\":0"), "{ack_text}");

    // The initial load is generation 1; the retrained install is 2.
    wait_for_generation(addr, 2);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for hammer in hammers {
        for status in hammer.join().expect("hammer finishes") {
            assert!(status < 500, "zero-downtime violated: saw a {status}");
        }
    }

    // The corrected mapping is served, byte-identical to the direct
    // warm-train path, and stable across repeated requests.
    let first = http(addr, "POST", "/v1/match", match_request_body().as_bytes());
    assert_eq!(first.status, 200, "body: {}", first.text());
    assert_eq!(first.text(), expected_body, "server == direct warm-train");
    let second = http(addr, "POST", "/v1/match", match_request_body().as_bytes());
    assert_eq!(second.text(), expected_body, "responses stay deterministic");

    // The retrained snapshot also reached disk with its fold point, so a
    // cold start serves the corrected mapping with no WAL replay needed.
    let reloaded = Lsd::load_json(models.join("m.json")).expect("reloads");
    assert_eq!(reloaded.feedback_applied(), 1, "fold point persisted");
    assert_eq!(
        reloaded
            .match_source(&query_source())
            .expect("matches")
            .label_of("comments"),
        Some("PHONE")
    );

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(models.parent().expect("base")).ok();
}

#[test]
fn acked_corrections_survive_restart_and_are_folded_on_boot() {
    let (models, wals) = dirs("restart");
    train_model()
        .save_json(models.join("m.json"))
        .expect("saves");

    // Simulate a server that acked a correction and then died before the
    // retrain worker ran: the record exists only in the WAL.
    std::fs::create_dir_all(&wals).expect("wal dir");
    {
        let (mut wal, existing) = FeedbackWal::open(wals.join("m.wal")).expect("wal opens");
        assert!(existing.is_empty());
        let record = FeedbackRecord::from_source(
            &query_source(),
            vec![Correction::tag_is("comments", "PHONE")],
        );
        wal.append(&record).expect("appends");
    }

    let (handle, join) = boot(&models, &wals);
    let addr = handle.addr();

    // Boot-time recovery: the replayed record is folded without any new
    // feedback arriving — generation 1 is the load, 2 the fold.
    wait_for_generation(addr, 2);
    let response = http(addr, "POST", "/v1/match", match_request_body().as_bytes());
    assert_eq!(response.status, 200, "body: {}", response.text());
    assert!(
        response.text().contains("\"comments\":\"PHONE\""),
        "replayed correction must be honored: {}",
        response.text()
    );

    handle.shutdown();
    join.join().expect("server exits");

    // A second boot finds the fold point in the snapshot and replays
    // nothing: the generation stays at 1 (no spurious retrains).
    let (handle, join) = boot(&models, &wals);
    let addr = handle.addr();
    std::thread::sleep(Duration::from_millis(200));
    let listing = http(addr, "GET", "/v1/models", b"").text();
    assert!(
        listing.contains("\"generation\":1") && !listing.contains("\"generation\":2"),
        "already-folded WAL records must not retrain again: {listing}"
    );
    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(models.parent().expect("base")).ok();
}

#[test]
fn feedback_error_surface() {
    let (models, wals) = dirs("errors");
    train_model()
        .save_json(models.join("m.json"))
        .expect("saves");

    // Feedback disabled: the endpoint answers 503 feedback_disabled.
    let registry = ModelRegistry::open(&models).expect("opens");
    let server = Server::bind(ServeConfig::default(), registry).expect("binds");
    let (handle, join) = server.spawn();
    let disabled = http(
        handle.addr(),
        "POST",
        "/v1/feedback",
        feedback_request_body().as_bytes(),
    );
    assert_eq!(disabled.status, 503, "body: {}", disabled.text());
    assert!(
        disabled.text().contains("feedback_disabled"),
        "{}",
        disabled.text()
    );
    handle.shutdown();
    join.join().expect("server exits");

    // Enabled: bad corrections are rejected before anything is logged.
    let (handle, join) = boot(&models, &wals);
    let addr = handle.addr();

    // Unknown label.
    let bad_label = feedback_request_body().replace("PHONE", "TELEPHONE");
    let rejected = http(addr, "POST", "/v1/feedback", bad_label.as_bytes());
    assert_eq!(rejected.status, 400, "body: {}", rejected.text());
    assert!(rejected.text().contains("TELEPHONE"), "{}", rejected.text());

    // Empty corrections array.
    let empty = match_request_body().replacen('{', "{\"corrections\": [], ", 1);
    let rejected = http(addr, "POST", "/v1/feedback", empty.as_bytes());
    assert_eq!(rejected.status, 400, "body: {}", rejected.text());

    // Wrong method.
    assert_eq!(http(addr, "GET", "/v1/feedback", b"").status, 405);

    // Nothing was logged: no WAL record, no retrain, generation stays 1.
    std::thread::sleep(Duration::from_millis(200));
    let listing = http(addr, "GET", "/v1/models", b"").text();
    assert!(listing.contains("\"generation\":1"), "{listing}");

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(models.parent().expect("base")).ok();
}
