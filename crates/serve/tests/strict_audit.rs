//! The deploy-time audit gate: a registry opened in [`AuditMode::Strict`]
//! refuses snapshots whose artifact audit finds error-severity `LSD2xx`
//! diagnostics — while continuing to serve the healthy models beside them
//! — and [`AuditMode::Warn`] (the library default) loads everything and
//! only counts the findings.

use lsd_core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher, StatsLearner};
use lsd_core::{Correction, FeedbackRecord, FeedbackWal, Lsd, LsdBuilder, Source, TrainedSource};
use lsd_serve::{AuditMode, ModelRegistry, ServeError};
use lsd_xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MEDIATED: &str = "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, PHONE)>\n\
                        <!ELEMENT ADDRESS (#PCDATA)>\n\
                        <!ELEMENT DESCRIPTION (#PCDATA)>\n\
                        <!ELEMENT PHONE (#PCDATA)>";

const SOURCE_DTD: &str = "<!ELEMENT home (location, comments, contact)>\n\
                          <!ELEMENT location (#PCDATA)>\n\
                          <!ELEMENT comments (#PCDATA)>\n\
                          <!ELEMENT contact (#PCDATA)>";

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("lsd-strict-audit-tests")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn train_model() -> Lsd {
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let dtd = parse_dtd(SOURCE_DTD).expect("source DTD");
    let listings = [
        ("Miami, FL", "Great view of the bay", "(305) 111 2222"),
        ("Boston, MA", "Fantastic yard and porch", "(617) 333 4444"),
        ("Austin, TX", "Nice area near downtown", "(512) 555 6666"),
    ]
    .iter()
    .map(|(a, d, p)| {
        parse_fragment(&format!(
            "<home><location>{a}</location><comments>{d}</comments>\
             <contact>{p}</contact></home>"
        ))
        .expect("well-formed listing")
    })
    .collect();
    let train = TrainedSource {
        source: Source::from_xml("train", dtd, listings),
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .expect("builds");
    lsd.train(std::slice::from_ref(&train)).expect("trains");
    lsd
}

/// Replaces the first meta-learner stacking weight in snapshot `text` with
/// the literal `replacement` (e.g. `1e999`, which parses to `f64::INFINITY`
/// — valid JSON, a valid `f64`, and invisible to everything but the audit).
fn poison_first_weight(text: &str, replacement: &str) -> String {
    let weights = text
        .find("\"weights\"")
        .expect("weights matrix in snapshot");
    let start = weights
        + text[weights..]
            .find(|c: char| c.is_ascii_digit() || c == '-')
            .expect("a first weight");
    let len = text[start..]
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .expect("weight ends");
    format!("{}{replacement}{}", &text[..start], &text[start + len..])
}

/// Writes one healthy snapshot and one copy whose first stacking weight is
/// `Infinity` — it deserializes fine and passes `ensure_servable` (which
/// checks schemas and constraints, not artifact bytes); only the artifact
/// audit sees it (`LSD202`).
fn write_healthy_and_poisoned(dir: &Path) {
    let healthy = dir.join("healthy.json");
    train_model().save_json(&healthy).expect("saves");
    let text = std::fs::read_to_string(&healthy).expect("reads");
    std::fs::write(
        dir.join("poisoned.json"),
        poison_first_weight(&text, "1e999"),
    )
    .expect("writes");
}

#[test]
fn strict_registry_refuses_the_poisoned_model_and_serves_the_healthy_one() {
    let dir = temp_dir("strict");
    write_healthy_and_poisoned(&dir);
    // A NaN weight can only appear in JSON as `null`; the deserializer
    // refuses that one layer earlier, as ModelInvalid rather than
    // AuditFailed. Either way the model never serves.
    let healthy = std::fs::read_to_string(dir.join("healthy.json")).expect("reads");
    std::fs::write(dir.join("nan.json"), poison_first_weight(&healthy, "null")).expect("writes");

    let registry = ModelRegistry::open_with(&dir, AuditMode::Strict).expect("opens");
    assert_eq!(registry.audit_mode(), AuditMode::Strict);
    assert_eq!(registry.names(), ["healthy"]);
    assert!(registry.model(Some("healthy")).is_ok());
    assert!(matches!(
        registry.model(Some("poisoned")),
        Err(ServeError::ModelNotFound { .. })
    ));

    // The rejections are visible, typed, and the audit one names its code.
    let listing = registry.list_json();
    assert!(listing.contains("poisoned"), "failure listed: {listing}");
    assert!(
        listing.contains("LSD202"),
        "failure carries the code: {listing}"
    );
    assert!(
        listing.contains("nan"),
        "deserializer rejection listed: {listing}"
    );

    // Explicit activation of the poisoned model fails the same way.
    let err = registry.activate("poisoned").expect_err("refused");
    assert!(matches!(err, ServeError::AuditFailed { .. }), "{err}");
    assert_eq!(err.status(), 422);
    assert_eq!(err.code(), "audit_failed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warn_mode_loads_everything_and_is_the_default() {
    let dir = temp_dir("warn");
    write_healthy_and_poisoned(&dir);

    let registry = ModelRegistry::open(&dir).expect("opens");
    assert_eq!(registry.audit_mode(), AuditMode::Warn);
    assert_eq!(registry.names(), ["healthy", "poisoned"]);
    assert!(registry.activate("poisoned").is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warning_only_findings_do_not_reject_under_strict() {
    let dir = temp_dir("torn-wal");
    let snapshot = dir.join("model.json");
    train_model().save_json(&snapshot).expect("saves");
    // A companion WAL with a crash-torn tail: LSD212 is a warning — the
    // model must still serve, strict mode or not.
    let wal_path = dir.join("model.wal");
    {
        let (mut wal, _) = FeedbackWal::open(&wal_path).expect("creates");
        let fb_dtd = parse_dtd(SOURCE_DTD).expect("dtd");
        let listing = parse_fragment(
            "<home><location>Kent, WA</location><comments>quiet</comments>\
             <contact>(206) 111 2222</contact></home>",
        )
        .expect("listing");
        wal.append(&FeedbackRecord::from_source(
            &Source::from_xml("fb", fb_dtd, vec![listing]),
            vec![Correction::tag_is("location", "ADDRESS")],
        ))
        .expect("appends");
    }
    let mut bytes = std::fs::read(&wal_path).expect("reads");
    bytes.extend_from_slice(&[0x17, 0x00, 0x00]); // torn next header
    std::fs::write(&wal_path, &bytes).expect("writes");

    let registry = ModelRegistry::open_with(&dir, AuditMode::Strict).expect("opens");
    assert_eq!(registry.names(), ["model"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn low_support_inferred_schema_warns_but_still_serves_under_strict() {
    use lsd_core::XmlReader;
    let dir = temp_dir("inferred");
    // A DTD-less training source with two instances, one of which carries
    // a tag seen only once: the inferred schema's occurrence decisions for
    // that tag rest on a single observation (LSD231 territory).
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let reader = XmlReader::from_document(
        "<corpus><home><location>Miami, FL</location>\
         <comments>Great view of the bay</comments>\
         <contact>(305) 111 2222</contact></home>\
         <home><location>Boston, MA</location>\
         <contact>(617) 333 4444</contact></home></corpus>",
    );
    let source = Source::from_reader("bare", &reader).expect("reads");
    let train = TrainedSource {
        source,
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .build()
        .expect("builds");
    lsd.train(std::slice::from_ref(&train)).expect("trains");
    let snapshot = dir.join("model.json");
    lsd.save_json(&snapshot).expect("saves");

    // The audit surfaces the weakly-supported inferred schema...
    let text = std::fs::read_to_string(&snapshot).expect("reads");
    let diags = lsd_analysis::audit_snapshot(&text);
    let lsd231: Vec<_> = diags
        .iter()
        .filter(|d| d.code.as_str() == "LSD231")
        .collect();
    assert_eq!(lsd231.len(), 1, "{diags:?}");
    assert!(!lsd231[0].is_error(), "LSD231 is a warning");
    assert!(lsd231[0].message.contains("`bare`"), "{:?}", lsd231[0]);

    // ...but as a warning: the strict gate still activates the model.
    let registry = ModelRegistry::open_with(&dir, AuditMode::Strict).expect("opens");
    assert_eq!(registry.names(), ["model"]);
    assert!(registry.model(Some("model")).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_from_a_different_model_rejects_under_strict() {
    let dir = temp_dir("foreign-wal");
    let snapshot = dir.join("model.json");
    train_model().save_json(&snapshot).expect("saves");
    // A companion WAL whose corrections name a label this model does not
    // have: LSD215 is an error — replaying it at retrain time would fail.
    let wal_path = dir.join("model.wal");
    {
        let (mut wal, _) = FeedbackWal::open(&wal_path).expect("creates");
        let fb_dtd = parse_dtd(SOURCE_DTD).expect("dtd");
        let listing = parse_fragment(
            "<home><location>Kent, WA</location><comments>quiet</comments>\
             <contact>(206) 111 2222</contact></home>",
        )
        .expect("listing");
        wal.append(&FeedbackRecord::from_source(
            &Source::from_xml("fb", fb_dtd, vec![listing]),
            vec![Correction::tag_is("location", "ZIPCODE")],
        ))
        .expect("appends");
    }

    let registry = ModelRegistry::open_with(&dir, AuditMode::Strict).expect("opens");
    assert!(registry.names().is_empty());
    assert!(registry.list_json().contains("LSD215"));

    // The same directory under Warn still loads.
    let registry = ModelRegistry::open_with(&dir, AuditMode::Warn).expect("opens");
    assert_eq!(registry.names(), ["model"]);
    std::fs::remove_dir_all(&dir).ok();
}
