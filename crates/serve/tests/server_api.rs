//! End-to-end tests over a real socket: every endpoint, the error surface,
//! backpressure, deadlines, graceful shutdown, and the concurrent hot-swap
//! guarantee (every request is served entirely by one model, byte-identical
//! per model).

use lsd_core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher, StatsLearner};
use lsd_core::{Lsd, LsdBuilder, Source, TrainedSource};
use lsd_serve::{json, ModelRegistry, ServeConfig, Server, ServerHandle};
use lsd_xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MEDIATED: &str = "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, PHONE)>\n\
                        <!ELEMENT ADDRESS (#PCDATA)>\n\
                        <!ELEMENT DESCRIPTION (#PCDATA)>\n\
                        <!ELEMENT PHONE (#PCDATA)>";

const SOURCE_DTD: &str = "<!ELEMENT home (location, comments, contact)>\n\
                          <!ELEMENT location (#PCDATA)>\n\
                          <!ELEMENT comments (#PCDATA)>\n\
                          <!ELEMENT contact (#PCDATA)>";

fn listings(rows: &[(&str, &str, &str)]) -> Vec<lsd_xml::Element> {
    rows.iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<home><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></home>"
            ))
            .expect("well-formed listing")
        })
        .collect()
}

/// Trains a small system on the given rows; different rows produce
/// different learned scores, which is what the hot-swap test relies on.
fn train_model(rows: &[(&str, &str, &str)]) -> Lsd {
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let dtd = parse_dtd(SOURCE_DTD).expect("source DTD");
    let train = TrainedSource {
        source: Source::from_xml("train", dtd, listings(rows)),
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .expect("builds");
    lsd.train(std::slice::from_ref(&train)).expect("trains");
    lsd
}

fn model_a() -> Lsd {
    train_model(&[
        ("Miami, FL", "Great view of the bay", "(305) 111 2222"),
        ("Boston, MA", "Fantastic yard and porch", "(617) 333 4444"),
        ("Austin, TX", "Nice area near downtown", "(512) 555 6666"),
    ])
}

fn model_b() -> Lsd {
    train_model(&[
        ("Seattle, WA", "Quiet street with garden", "(206) 777 8888"),
        ("Denver, CO", "Mountain views all around", "(303) 999 0000"),
        ("Portland, OR", "Close to parks and cafes", "(503) 123 4567"),
        (
            "Chicago, IL",
            "Renovated kitchen and bath",
            "(312) 765 4321",
        ),
    ])
}

/// The query every test sends: a small unseen source.
fn query_source() -> Source {
    Source::from_xml(
        "query",
        parse_dtd(SOURCE_DTD).expect("query DTD"),
        listings(&[
            ("Raleigh, NC", "Corner lot with big trees", "(919) 222 3333"),
            ("Tampa, FL", "Walkable and sunny", "(813) 444 5555"),
        ]),
    )
}

fn match_request_body() -> String {
    let listing_strings: Vec<String> = [
        ("Raleigh, NC", "Corner lot with big trees", "(919) 222 3333"),
        ("Tampa, FL", "Walkable and sunny", "(813) 444 5555"),
    ]
    .iter()
    .map(|(a, d, p)| {
        format!(
            "<home><location>{a}</location><comments>{d}</comments>\
             <contact>{p}</contact></home>"
        )
    })
    .collect();
    let doc = serde::Value::Map(vec![(
        "source".to_string(),
        serde::Value::Map(vec![
            ("name".to_string(), serde::Value::Str("query".to_string())),
            ("dtd".to_string(), serde::Value::Str(SOURCE_DTD.to_string())),
            (
                "listings".to_string(),
                serde::Value::Seq(listing_strings.into_iter().map(serde::Value::Str).collect()),
            ),
        ]),
    )]);
    serde_json::to_string(&doc).expect("serializes")
}

struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A minimal blocking HTTP client: one request per connection.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    HttpResponse {
        status,
        headers,
        body,
    }
}

fn post_match(addr: SocketAddr) -> HttpResponse {
    http(
        addr,
        "POST",
        "/v1/match",
        &[("Content-Type", "application/json")],
        match_request_body().as_bytes(),
    )
}

/// A fresh model directory under the target-adjacent temp dir.
fn model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsd-serve-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("model dir");
    dir
}

fn boot(dir: &Path, config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::open(dir).expect("registry opens");
    let server = Server::bind(config, registry).expect("binds");
    server.spawn()
}

#[test]
fn match_results_are_byte_identical_to_direct_calls() {
    let dir = model_dir("roundtrip");
    let lsd = model_a();
    lsd.save_json(dir.join("m.json")).expect("saves");
    let expected = json::match_body("m", &lsd.match_source(&query_source()).expect("matches"));

    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    let first = post_match(addr);
    assert_eq!(first.status, 200, "body: {}", first.text());
    assert_eq!(
        first.text(),
        expected,
        "server output == direct match_source"
    );
    let second = post_match(addr);
    assert_eq!(second.text(), expected, "responses are deterministic");

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_models_healthz_and_metrics_endpoints_work() {
    let dir = model_dir("endpoints");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    let explain = http(
        addr,
        "POST",
        "/v1/explain",
        &[],
        match_request_body().as_bytes(),
    );
    assert_eq!(explain.status, 200, "body: {}", explain.text());
    let explain_text = explain.text();
    assert!(explain_text.contains("\"explanations\""), "{explain_text}");
    assert!(explain_text.contains("\"candidates\""), "{explain_text}");

    let models = http(addr, "GET", "/v1/models", &[], b"");
    assert_eq!(models.status, 200);
    let models_text = models.text();
    assert!(models_text.contains("\"m\""), "{models_text}");
    assert!(models_text.contains("\"active\""), "{models_text}");

    let health = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 200);
    let health_text = health.text();
    assert!(health_text.contains("\"status\""), "{health_text}");
    assert!(health_text.contains("\"queue_capacity\""), "{health_text}");

    // A match first, so /metrics has server families to show.
    assert_eq!(post_match(addr).status, 200);
    let metrics = http(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let metrics_text = metrics.text();
    assert!(
        metrics_text.contains("serve_http_requests"),
        "{metrics_text}"
    );
    assert!(metrics_text.contains("serve_batch_size"), "{metrics_text}");

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_surface_maps_to_the_documented_statuses() {
    let dir = model_dir("errors");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let config = ServeConfig {
        max_body_bytes: 4096,
        ..ServeConfig::default()
    };
    let (handle, join) = boot(&dir, config);
    let addr = handle.addr();

    // Unknown path.
    assert_eq!(http(addr, "GET", "/nope", &[], b"").status, 404);
    // Wrong method on a known path.
    assert_eq!(http(addr, "GET", "/v1/match", &[], b"").status, 405);
    // Garbage JSON body.
    let bad = http(addr, "POST", "/v1/match", &[], b"not json");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("bad_request"), "{}", bad.text());
    // Unknown model.
    let body = match_request_body().replacen('{', "{\"model\": \"ghost\", ", 1);
    let missing = http(addr, "POST", "/v1/match", &[], body.as_bytes());
    assert_eq!(missing.status, 404);
    assert!(
        missing.text().contains("model_not_found"),
        "{}",
        missing.text()
    );
    // Oversized body (rejected from the Content-Length alone).
    let huge = vec![b'x'; 5000];
    assert_eq!(http(addr, "POST", "/v1/match", &[], &huge).status, 413);
    // Activating a model with no snapshot on disk.
    assert_eq!(http(addr, "PUT", "/v1/models/ghost", &[], b"").status, 404);
    // Path tricks in model names are rejected, not resolved.
    assert_eq!(http(addr, "PUT", "/v1/models/..%2Fx", &[], b"").status, 400);

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_full_returns_503_and_deadline_returns_504_never_hang() {
    let dir = model_dir("backpressure");
    model_a().save_json(dir.join("m.json")).expect("saves");
    // No workers: nothing drains the queue, so the first request parks in
    // the queue until its deadline and the second hits the capacity wall.
    let config = ServeConfig {
        workers: 0,
        queue_capacity: 1,
        default_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (handle, join) = boot(&dir, config);
    let addr = handle.addr();

    let parked = std::thread::spawn(move || post_match(addr));
    // Give the first request time to occupy the queue slot.
    std::thread::sleep(Duration::from_millis(100));
    let rejected = post_match(addr);
    assert_eq!(rejected.status, 503, "body: {}", rejected.text());
    assert!(
        rejected.text().contains("queue_full"),
        "{}",
        rejected.text()
    );
    assert_eq!(rejected.header("retry-after"), Some("1"));

    let parked = parked.join().expect("parked request returns");
    assert_eq!(parked.status, 504, "body: {}", parked.text());
    assert!(
        parked.text().contains("deadline_exceeded"),
        "{}",
        parked.text()
    );

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_and_rejects_new_work() {
    let dir = model_dir("shutdown");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    assert_eq!(post_match(addr).status, 200);
    handle.shutdown();
    join.join().expect("server drains and exits");
    // The listener is gone (or answers nothing): new connections fail.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
            || post_match_is_rejected(addr),
        "server must not accept new work after shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn post_match_is_rejected(addr: SocketAddr) -> bool {
    std::panic::catch_unwind(|| post_match(addr))
        .map(|r| r.status >= 500)
        .unwrap_or(true)
}

#[test]
fn concurrent_hot_swap_serves_every_request_from_exactly_one_model() {
    let dir = model_dir("hotswap");
    let a = model_a();
    let b = model_b();
    a.save_json(dir.join("m.json")).expect("saves A");

    let query = query_source();
    let expected_a = json::match_body("m", &a.match_source(&query).expect("A matches"));
    let expected_b = json::match_body("m", &b.match_source(&query).expect("B matches"));
    assert_ne!(
        expected_a, expected_b,
        "the two models must be distinguishable for this test to mean anything"
    );

    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    // Clients hammer /v1/match while the snapshot is swapped A -> B and
    // re-activated mid-flight. Each client keeps requesting until it has
    // observed model B (bounded), so the run is guaranteed to straddle the
    // swap regardless of scheduling.
    let expected_b_for_client = expected_b.clone();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let expected_b = expected_b_for_client.clone();
            std::thread::spawn(move || {
                let mut responses = Vec::new();
                for _ in 0..500 {
                    let response = post_match(addr);
                    let done = response.text() == expected_b;
                    responses.push(response);
                    if done {
                        break;
                    }
                }
                responses
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    b.save_json(dir.join("m.json")).expect("saves B");
    let swap = http(addr, "PUT", "/v1/models/m", &[], b"");
    assert_eq!(swap.status, 200, "body: {}", swap.text());
    assert!(swap.text().contains("\"generation\""), "{}", swap.text());

    let mut saw_a = 0usize;
    let mut saw_b = 0usize;
    for client in clients {
        for response in client.join().expect("client finishes") {
            assert_eq!(response.status, 200, "body: {}", response.text());
            let text = response.text();
            if text == expected_a {
                saw_a += 1;
            } else if text == expected_b {
                saw_b += 1;
            } else {
                panic!("response matches neither model byte-for-byte: {text}");
            }
        }
    }
    assert_eq!(saw_b, 8, "every client eventually saw model B");
    assert!(saw_a > 0, "clients started before the swap saw model A");

    // After the swap settles, only B answers.
    let settled = post_match(addr);
    assert_eq!(settled.text(), expected_b);

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn match_negotiates_json_csv_sql_and_xml_bodies() {
    let dir = model_dir("formats");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    // The same two listings in each serialization; leaf tags match the
    // trained source, so every format should map them identically.
    let json_body = r#"[
        {"location": "Raleigh, NC", "comments": "Corner lot with big trees", "contact": "(919) 222 3333"},
        {"location": "Tampa, FL", "comments": "Walkable and sunny", "contact": "(813) 444 5555"}
    ]"#;
    let csv_body = "location,comments,contact\n\
                    \"Raleigh, NC\",Corner lot with big trees,(919) 222 3333\n\
                    \"Tampa, FL\",Walkable and sunny,(813) 444 5555\n";
    let sql_body = "CREATE TABLE home (location TEXT NOT NULL, comments TEXT, contact TEXT);\n\
                    INSERT INTO home VALUES\n\
                      ('Raleigh, NC', 'Corner lot with big trees', '(919) 222 3333'),\n\
                      ('Tampa, FL', 'Walkable and sunny', '(813) 444 5555');";
    let xml_body = "<homes>\
        <home><location>Raleigh, NC</location>\
        <comments>Corner lot with big trees</comments>\
        <contact>(919) 222 3333</contact></home>\
        <home><location>Tampa, FL</location>\
        <comments>Walkable and sunny</comments>\
        <contact>(813) 444 5555</contact></home></homes>";
    for (content_type, body) in [
        ("application/json", json_body),
        ("text/csv", csv_body),
        ("application/sql", sql_body),
        ("application/xml", xml_body),
    ] {
        let response = http(
            addr,
            "POST",
            "/v1/match",
            &[("Content-Type", content_type), ("X-Lsd-Source", "multi")],
            body.as_bytes(),
        );
        assert_eq!(
            response.status,
            200,
            "{content_type} body: {}",
            response.text()
        );
        let text = response.text();
        for pair in [
            "\"location\":\"ADDRESS\"",
            "\"comments\":\"DESCRIPTION\"",
            "\"contact\":\"PHONE\"",
        ] {
            assert!(
                text.contains(pair),
                "{content_type}: missing {pair}: {text}"
            );
        }
    }

    // An unknown serialization is a 415, counted in /metrics.
    let unsupported = http(
        addr,
        "POST",
        "/v1/match",
        &[("Content-Type", "image/png")],
        b"bytes",
    );
    assert_eq!(unsupported.status, 415, "body: {}", unsupported.text());
    assert!(
        unsupported.text().contains("unsupported_media_type"),
        "{}",
        unsupported.text()
    );
    let metrics = http(addr, "GET", "/metrics", &[], b"").text();
    assert!(
        metrics.contains("serve_http_errors{label=\"unsupported_media_type\"}"),
        "{metrics}"
    );

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bare_dtd_less_xml_infers_a_schema_and_returns_a_mapping() {
    let dir = model_dir("bareinfer");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    // No DOCTYPE, no DTD anywhere: the schema must be inferred from the
    // instances. The second listing drops <comments> so inference has to
    // generalize (comments becomes optional) rather than memorize.
    let body = "<homes>\
        <home><location>Raleigh, NC</location>\
        <comments>Corner lot with big trees</comments>\
        <contact>(919) 222 3333</contact></home>\
        <home><location>Tampa, FL</location>\
        <contact>(813) 444 5555</contact></home></homes>";
    let response = http(
        addr,
        "POST",
        "/v1/match",
        &[
            ("Content-Type", "application/xml"),
            ("X-Lsd-Source", "bare"),
        ],
        body.as_bytes(),
    );
    assert_eq!(response.status, 200, "body: {}", response.text());
    let text = response.text();
    assert!(text.contains("\"mapping\""), "{text}");
    for pair in ["\"location\":\"ADDRESS\"", "\"contact\":\"PHONE\""] {
        assert!(text.contains(pair), "missing {pair}: {text}");
    }

    // The inference pass shows up in /metrics: elements were learned for
    // this request, and the optional <comments> counts as a
    // generalization.
    let metrics = http(addr, "GET", "/metrics", &[], b"").text();
    assert!(metrics.contains("infer_elements"), "{metrics}");
    assert!(metrics.contains("infer_generalizations"), "{metrics}");

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

/// Pulls the trace id out of a `00-{trace}-{span}-{flags}` traceparent.
fn traceparent_parts(header: &str) -> (String, String) {
    let parts: Vec<&str> = header.split('-').collect();
    assert_eq!(parts.len(), 4, "traceparent has 4 segments: {header}");
    assert_eq!(parts[0], "00", "version 00: {header}");
    assert_eq!(parts[1].len(), 32, "128-bit trace id: {header}");
    assert_eq!(parts[2].len(), 16, "64-bit span id: {header}");
    assert!(
        parts[1].chars().all(|c| c.is_ascii_hexdigit()),
        "hex trace id: {header}"
    );
    (parts[1].to_string(), parts[2].to_string())
}

#[test]
fn every_response_echoes_a_traceparent_and_continues_client_traces() {
    let dir = model_dir("traceparent");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    // Server-minted context: every route echoes a well-formed traceparent
    // with a nonzero trace id, including inline-answered and error routes.
    for (method, path, body) in [
        ("POST", "/v1/match", match_request_body()),
        ("GET", "/healthz", String::new()),
        ("GET", "/nope", String::new()),
    ] {
        let response = http(addr, method, path, &[], body.as_bytes());
        let echoed = response
            .header("traceparent")
            .unwrap_or_else(|| panic!("{method} {path} must echo traceparent"))
            .to_string();
        let (trace, _) = traceparent_parts(&echoed);
        assert_ne!(trace, "0".repeat(32), "{method} {path}: nonzero trace id");
    }

    // Client-provided context: the trace id is continued verbatim but the
    // span id is the server's own (a child span, not a replay).
    let upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
    let response = http(
        addr,
        "POST",
        "/v1/match",
        &[("traceparent", upstream)],
        match_request_body().as_bytes(),
    );
    assert_eq!(response.status, 200, "body: {}", response.text());
    let echoed = response.header("traceparent").expect("echoed").to_string();
    let (trace, span) = traceparent_parts(&echoed);
    assert_eq!(trace, "4bf92f3577b34da6a3ce929d0e0e4736", "trace continued");
    assert_ne!(span, "00f067aa0ba902b7", "span id is the server's own");

    // A malformed traceparent is ignored, not propagated: the server mints
    // a fresh context instead of echoing garbage back.
    let response = http(
        addr,
        "GET",
        "/healthz",
        &[("traceparent", "00-zzzz-bad-ff")],
        b"",
    );
    let echoed = response.header("traceparent").expect("echoed").to_string();
    traceparent_parts(&echoed);

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_traces_are_retrievable_from_debug_traces_with_span_tree() {
    let dir = model_dir("flightrec");
    model_a().save_json(dir.join("m.json")).expect("saves");
    // Threshold zero: every completed request counts as slow, so the test
    // does not depend on wall-clock behaviour of the match itself.
    let config = ServeConfig {
        slow_threshold: Duration::ZERO,
        ..ServeConfig::default()
    };
    let (handle, join) = boot(&dir, config);
    let addr = handle.addr();

    let upstream = "00-feedfacecafebeef0123456789abcdef-0123456789abcdef-01";
    let matched = http(
        addr,
        "POST",
        "/v1/match",
        &[("traceparent", upstream)],
        match_request_body().as_bytes(),
    );
    assert_eq!(matched.status, 200, "body: {}", matched.text());

    // Single-trace lookup: the full span tree, including the queue wait
    // and the micro-batch execution recorded by the worker pool.
    let lookup = http(
        addr,
        "GET",
        "/debug/traces?trace_id=feedfacecafebeef0123456789abcdef",
        &[],
        b"",
    );
    assert_eq!(lookup.status, 200, "body: {}", lookup.text());
    let body = lookup.text();
    assert!(
        body.contains("\"feedfacecafebeef0123456789abcdef\""),
        "{body}"
    );
    assert!(body.contains("\"reason\":\"slow\""), "{body}");
    for span in ["serve.request", "serve.queue_wait", "serve.match_batch"] {
        assert!(body.contains(span), "span {span} in tree: {body}");
    }

    // The listing endpoint reports the recorder's accounting and the most
    // recent samples, newest first.
    let listing = http(addr, "GET", "/debug/traces", &[], b"");
    assert_eq!(listing.status, 200);
    let listing_text = listing.text();
    for key in ["\"recorded\"", "\"evicted\"", "\"capacity\"", "\"traces\""] {
        assert!(listing_text.contains(key), "{key} in: {listing_text}");
    }

    // A malformed id is the caller's error; an unknown-but-valid id is a
    // clean miss, not a 500.
    assert_eq!(
        http(addr, "GET", "/debug/traces?trace_id=xyz", &[], b"").status,
        400
    );
    assert_eq!(
        http(
            addr,
            "GET",
            "/debug/traces?trace_id=11111111111111111111111111111111",
            &[],
            b""
        )
        .status,
        404
    );

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn access_log_is_valid_jsonl_with_per_request_timings() {
    let dir = model_dir("accesslog");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let log_path = dir.join("access.jsonl");
    let config = ServeConfig {
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    };
    let (handle, join) = boot(&dir, config);
    let addr = handle.addr();

    let matched = post_match(addr);
    assert_eq!(matched.status, 200);
    let match_trace = traceparent_parts(matched.header("traceparent").expect("echoed")).0;
    assert_eq!(http(addr, "GET", "/healthz", &[], b"").status, 200);
    assert_eq!(http(addr, "GET", "/nope", &[], b"").status, 404);

    handle.shutdown();
    join.join().expect("server exits");

    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one line per request:\n{text}");
    for line in &lines {
        let value: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        let serde::Value::Map(fields) = value else {
            panic!("line is an object: {line}");
        };
        for want in [
            "unix_ms", "trace_id", "route", "method", "path", "status", "model", "queue_ns",
            "batch_ns", "match_ns", "total_ns",
        ] {
            assert!(fields.iter().any(|(k, _)| k == want), "missing {want}");
        }
    }
    // The match line carries the echoed trace id, the resolved model and
    // real pipeline timings; the inline healthz line has no queue time.
    let match_line = lines[0];
    assert!(
        match_line.contains(&format!("\"{match_trace}\"")),
        "{match_line}"
    );
    assert!(match_line.contains("\"route\":\"match\""), "{match_line}");
    assert!(match_line.contains("\"model\":\"m\""), "{match_line}");
    assert!(!match_line.contains("\"match_ns\":0"), "{match_line}");
    assert!(lines[1].contains("\"route\":\"healthz\""), "{}", lines[1]);
    assert!(lines[1].contains("\"queue_ns\":0"), "{}", lines[1]);
    assert!(lines[2].contains("\"status\":404"), "{}", lines[2]);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_expose_rolling_window_quantiles_and_real_histograms() {
    let dir = model_dir("windows");
    model_a().save_json(dir.join("m.json")).expect("saves");
    let (handle, join) = boot(&dir, ServeConfig::default());
    let addr = handle.addr();

    assert_eq!(post_match(addr).status, 200);
    let metrics = http(addr, "GET", "/metrics", &[], b"").text();
    // Rolling-window gauges sit next to the cumulative series.
    for family in [
        "serve_request_ns_window_p50",
        "serve_request_ns_window_p95",
        "serve_request_ns_window_p99",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} gauge")),
            "{family} in:\n{metrics}"
        );
        assert!(
            metrics.contains(&format!("{family}{{label=\"match\"}}")),
            "{family} sample in:\n{metrics}"
        );
    }
    // The cumulative duration series is a real Prometheus histogram.
    assert!(
        metrics.contains("# TYPE serve_request_ns histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("serve_request_ns_bucket{label=\"match\",le=\"+Inf\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("serve_request_ns_sum"), "{metrics}");
    assert!(metrics.contains("serve_request_ns_count"), "{metrics}");

    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn untrained_snapshot_is_rejected_at_activation() {
    let dir = model_dir("unservable");
    // An untrained system snapshots fine but must not serve.
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let untrained = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .build()
        .expect("builds");
    untrained.save_json(dir.join("raw.json")).expect("saves");

    let registry = ModelRegistry::open(&dir).expect("opens");
    assert!(registry.is_empty(), "untrained snapshot must not activate");
    let listing = registry.list_json();
    assert!(listing.contains("raw"), "failure is reported: {listing}");

    let server = Server::bind(ServeConfig::default(), registry).expect("binds");
    let (handle, join) = server.spawn();
    let no_model = post_match(handle.addr());
    assert_eq!(no_model.status, 503, "body: {}", no_model.text());
    assert!(
        no_model.text().contains("no_active_model"),
        "{}",
        no_model.text()
    );
    handle.shutdown();
    join.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}
