//! `lsd-serve` — a zero-dependency HTTP/1.1 server for trained LSD models.
//!
//! The paper's end state is an *interactive* system: users submit new
//! source schemas with data and get proposed 1-1 mappings back. This crate
//! exposes that loop as a long-running service over nothing but `std`:
//!
//! * **Model registry** ([`ModelRegistry`]) — `SavedModel` JSON snapshots
//!   loaded from a directory, each gated through version checking and
//!   [`Lsd::ensure_servable`] (trained + clean static analysis) before it
//!   can serve, hot-swappable behind `Arc`s so in-flight requests finish on
//!   the model they started with.
//! * **Request pipeline** ([`RequestQueue`] + workers) — a bounded queue
//!   with explicit backpressure (`503` + `Retry-After` when full), a worker
//!   pool that coalesces concurrent single-source requests into
//!   deterministic [`Lsd::match_batch`] calls (micro-batching), and
//!   per-request queue deadlines (`504` instead of unbounded waiting).
//! * **Endpoints** — `POST /v1/match`, `POST /v1/explain` (provenance via
//!   `explain_all`), `GET /v1/models`, `PUT /v1/models/{name}` (hot-swap),
//!   `GET /healthz`, `GET /metrics` (Prometheus text dump of the `lsd-obs`
//!   registry plus server counters).
//! * **Robustness** — graceful queue-draining shutdown, slow-client
//!   read/write timeouts, oversized and malformed requests rejected onto
//!   the typed [`ServeError`].
//!
//! ```no_run
//! use lsd_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let registry = ModelRegistry::open("serve-models")?;
//! let server = Server::bind(ServeConfig::default(), registry)?;
//! println!("listening on {}", server.local_addr());
//! server.run(); // blocks until a handle calls shutdown()
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Lsd::ensure_servable`]: lsd_core::Lsd::ensure_servable
//! [`Lsd::match_batch`]: lsd_core::Lsd::match_batch

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod access_log;
mod error;
mod feedback;
pub mod http;
pub mod json;
pub mod media;
mod queue;
mod registry;
mod server;

pub use access_log::{AccessEntry, AccessLog};
pub use error::ServeError;
pub use feedback::FeedbackHub;
pub use queue::{Job, JobKind, JobTimings, RequestQueue, ServeStats};
pub use registry::{AuditMode, ModelEntry, ModelRegistry};
pub use server::{ServeConfig, Server, ServerHandle};
