//! JSON request parsing and response rendering for the `/v1` API.
//!
//! Responses are rendered through the deterministic `serde_json` writer
//! (sorted maps, shortest-roundtrip floats), so the same
//! [`MatchOutcome`] always produces the same bytes — the property the
//! batching tests and the load driver's byte-identical check rely on.

use crate::error::ServeError;
use lsd_core::{Correction, Explanation, MatchOutcome, Source};
use serde::{Deserialize, Serialize, Value};

fn bad(detail: impl Into<String>) -> ServeError {
    ServeError::BadRequest {
        detail: detail.into(),
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn as_str<'v>(value: &'v Value, what: &str) -> Result<&'v str, ServeError> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(bad(format!("{what} must be a string, got {other:?}"))),
    }
}

/// A parsed `POST /v1/match` / `POST /v1/explain` body: the optional model
/// name and the source to match.
#[derive(Debug)]
pub struct MatchRequest {
    /// Explicit model name; `None` targets the active model.
    pub model: Option<String>,
    /// The source assembled from the request's DTD text and XML listings.
    pub source: Source,
}

/// Parses the request body:
///
/// ```json
/// {
///   "model": "real-estate-1",          // optional; default: active model
///   "source": {
///     "name": "listings.com",          // optional display name
///     "dtd": "<!ELEMENT house (...)>", // DTD text
///     "listings": ["<house>...</house>", ...]
///   }
/// }
/// ```
///
/// All structural problems — non-JSON bodies, missing fields, unparseable
/// DTD or listings — map to `400` with a detail naming the offending part.
pub fn parse_match_request(body: &[u8]) -> Result<MatchRequest, ServeError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not valid UTF-8"))?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?;

    let model = match value.get("model") {
        None | Some(Value::Null) => None,
        Some(v) => Some(as_str(v, "\"model\"")?.to_string()),
    };

    let source_value = value
        .get("source")
        .ok_or_else(|| bad("missing \"source\" object"))?;
    Ok(MatchRequest {
        model,
        source: parse_source(source_value)?,
    })
}

/// Parses a `{"name": ..., "dtd": ..., "listings": [...]}` source object —
/// shared by the match and feedback bodies.
fn parse_source(source_value: &Value) -> Result<Source, ServeError> {
    let name = match source_value.get("name") {
        None | Some(Value::Null) => "request".to_string(),
        Some(v) => as_str(v, "\"source.name\"")?.to_string(),
    };
    let dtd_text = as_str(
        source_value
            .get("dtd")
            .ok_or_else(|| bad("missing \"source.dtd\""))?,
        "\"source.dtd\"",
    )?;
    let dtd = lsd_xml::parse_dtd(dtd_text)
        .map_err(|e| bad(format!("\"source.dtd\" is not a valid DTD: {e}")))?;

    let listings_value = source_value
        .get("listings")
        .ok_or_else(|| bad("missing \"source.listings\""))?;
    let Value::Seq(items) = listings_value else {
        return Err(bad("\"source.listings\" must be an array of XML strings"));
    };
    let mut listings = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let xml = as_str(item, &format!("\"source.listings[{i}]\""))?;
        let element = lsd_xml::parse_fragment(xml).map_err(|e| {
            bad(format!(
                "\"source.listings[{i}]\" is not well-formed XML: {e}"
            ))
        })?;
        listings.push(element);
    }

    Ok(Source::from_xml(name, dtd, listings))
}

/// A parsed `POST /v1/feedback` body: the optional model name, the source
/// the corrections are about, and the corrections themselves with
/// provenance stamped in.
#[derive(Debug)]
pub struct FeedbackRequest {
    /// Explicit model name; `None` targets the active model.
    pub model: Option<String>,
    /// The source the corrections describe.
    pub source: Source,
    /// The typed corrections, provenance filled from the request.
    pub corrections: Vec<Correction>,
}

/// Parses the feedback body:
///
/// ```json
/// {
///   "model": "real-estate-1",             // optional; default: active
///   "origin": "review-ui",                // optional provenance
///   "source": {
///     "name": "listings.com",
///     "dtd": "<!ELEMENT house (...)>",
///     "listings": ["<house>...</house>", ...]
///   },
///   "corrections": [
///     {"tag": "phone", "kind": {"TagIs": {"label": "AGENT_PHONE"}}},
///     {"tag": "extra", "kind": "TagIsOther"}
///   ]
/// }
/// ```
///
/// Corrections arrive without provenance; the source name, the server's
/// clock and the request's `origin` (default `"api"`) are stamped onto
/// each one. An empty corrections array is a `400` — an ack would promise
/// durability for nothing.
pub fn parse_feedback_request(body: &[u8]) -> Result<FeedbackRequest, ServeError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not valid UTF-8"))?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?;

    let model = match value.get("model") {
        None | Some(Value::Null) => None,
        Some(v) => Some(as_str(v, "\"model\"")?.to_string()),
    };
    let origin = match value.get("origin") {
        None | Some(Value::Null) => "api".to_string(),
        Some(v) => as_str(v, "\"origin\"")?.to_string(),
    };
    let source = parse_source(
        value
            .get("source")
            .ok_or_else(|| bad("missing \"source\" object"))?,
    )?;

    let corrections_value = value
        .get("corrections")
        .ok_or_else(|| bad("missing \"corrections\" array"))?;
    let Value::Seq(items) = corrections_value else {
        return Err(bad(
            "\"corrections\" must be an array of correction objects",
        ));
    };
    if items.is_empty() {
        return Err(bad("\"corrections\" must not be empty"));
    }
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut corrections = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let correction = Correction::from_value(item)
            .map_err(|e| bad(format!("\"corrections[{i}]\" is invalid: {e}")))?;
        corrections.push(correction.with_provenance(
            source.name.as_str(),
            timestamp_ms,
            origin.as_str(),
        ));
    }

    Ok(FeedbackRequest {
        model,
        source,
        corrections,
    })
}

/// Renders the `POST /v1/feedback` ack: which model the corrections were
/// logged against, the generation that served the ack (retraining bumps
/// it), how many corrections were accepted and the WAL index of the record
/// that durably holds them.
pub fn feedback_ack_body(model: &str, generation: u64, record: u64, accepted: usize) -> String {
    let doc = obj(vec![
        ("model", Value::Str(model.to_string())),
        ("generation", Value::Int(generation as i64)),
        ("record", Value::Int(record as i64)),
        ("accepted", Value::Int(accepted as i64)),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
}

/// How many ranked candidates per tag the match response carries.
pub const CANDIDATES_PER_TAG: usize = 5;

/// Renders a match outcome as the `/v1/match` response body. Deterministic:
/// tags in schema declaration order, the mapping sorted by source tag,
/// candidates capped at [`CANDIDATES_PER_TAG`] best-first.
pub fn match_body(model: &str, outcome: &MatchOutcome) -> String {
    let mut mapping: Vec<(String, String)> = outcome
        .mapping()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    mapping.sort();

    let labels = outcome
        .tags
        .iter()
        .zip(&outcome.labels)
        .map(|(tag, label)| {
            obj(vec![
                ("tag", Value::Str(tag.clone())),
                ("label", Value::Str(label.clone())),
            ])
        })
        .collect();

    let candidates = outcome
        .tags
        .iter()
        .map(|tag| {
            let ranked = outcome
                .candidates(tag)
                .iter()
                .take(CANDIDATES_PER_TAG)
                .map(|c| {
                    obj(vec![
                        ("label", Value::Str(c.label.clone())),
                        ("score", Value::Float(c.score)),
                    ])
                })
                .collect();
            (tag.to_string(), Value::Seq(ranked))
        })
        .collect();

    let doc = obj(vec![
        ("model", Value::Str(model.to_string())),
        ("feasible", Value::Bool(outcome.result.feasible)),
        (
            "mapping",
            Value::Map(
                mapping
                    .into_iter()
                    .map(|(k, v)| (k, Value::Str(v)))
                    .collect(),
            ),
        ),
        ("labels", Value::Seq(labels)),
        ("candidates", Value::Map(candidates)),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
}

/// Renders the `/v1/explain` response body: the full provenance report from
/// [`MatchOutcome::explain_all`], one explanation per tag.
pub fn explain_body(model: &str, outcome: &MatchOutcome) -> String {
    let explanations: Vec<Explanation> = outcome.explain_all();
    let doc = obj(vec![
        ("model", Value::Str(model.to_string())),
        ("explanations", explanations.to_value()),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DTD: &str = "<!ELEMENT h (addr)>\n<!ELEMENT addr (#PCDATA)>";

    fn body(model: Option<&str>) -> String {
        let model_field = model
            .map(|m| format!("\"model\": \"{m}\", "))
            .unwrap_or_default();
        format!(
            "{{{model_field}\"source\": {{\"name\": \"s\", \"dtd\": {dtd:?}, \
             \"listings\": [\"<h><addr>Miami, FL</addr></h>\"]}}}}",
            dtd = DTD
        )
    }

    #[test]
    fn parses_a_complete_request() {
        let parsed = parse_match_request(body(Some("m")).as_bytes()).expect("parses");
        assert_eq!(parsed.model.as_deref(), Some("m"));
        assert_eq!(parsed.source.name, "s");
        assert_eq!(parsed.source.listings.len(), 1);
        assert!(parsed.source.dtd.element_names().any(|n| n == "addr"));
    }

    #[test]
    fn model_is_optional() {
        let parsed = parse_match_request(body(None).as_bytes()).expect("parses");
        assert!(parsed.model.is_none());
    }

    #[test]
    fn structural_problems_are_bad_requests_with_detail() {
        let cases: Vec<(&[u8], &str)> = vec![
            (b"not json", "valid JSON"),
            (b"{}", "\"source\""),
            (b"{\"source\": {\"listings\": []}}", "source.dtd"),
            (
                b"{\"source\": {\"dtd\": \"<!ELEMENT h (#PCDATA)>\"}}",
                "source.listings",
            ),
            (
                b"{\"source\": {\"dtd\": \"garbage\", \"listings\": []}}",
                "valid DTD",
            ),
            (
                b"{\"source\": {\"dtd\": \"<!ELEMENT h (#PCDATA)>\", \
                   \"listings\": [\"<unclosed\"]}}",
                "well-formed XML",
            ),
            (b"\xff\xfe", "UTF-8"),
        ];
        for (input, expected) in cases {
            match parse_match_request(input) {
                Err(ServeError::BadRequest { detail }) => {
                    assert!(
                        detail.contains(expected),
                        "detail {detail:?} should mention {expected:?}"
                    );
                }
                other => panic!("expected BadRequest for {input:?}, got {other:?}"),
            }
        }
    }
}
