//! Structured JSONL access log: one JSON object per completed request.
//!
//! Each line carries the request's trace id, route, status, resolved model
//! and the micro-timings collected along the pipeline (queue wait, batch
//! residency, match time, end-to-end total — all nanoseconds), so a log
//! line is enough to decide whether to go pull the full span tree from
//! `GET /debug/traces?trace_id=...`.
//!
//! The log is append-only and line-atomic per request: the line is
//! formatted off-lock and written with a single `write_all` under a short
//! mutex, so concurrent connection threads cannot interleave bytes.

use lsd_obs::TraceId;
use serde::Serialize;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One access-log line, before serialization.
#[derive(Debug, Clone, Serialize)]
pub struct AccessEntry {
    /// Completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The request's trace id (32-hex).
    pub trace_id: TraceId,
    /// Route label (`"match"`, `"explain"`, `"feedback"`, ...).
    pub route: String,
    /// HTTP method.
    pub method: String,
    /// Request path (query stripped).
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Model slug the request resolved to; empty when none applies.
    pub model: String,
    /// Time spent queued before a worker claimed the job (ns; 0 for
    /// inline-answered routes).
    pub queue_ns: u64,
    /// Time from batch claim to reply (ns; 0 for inline routes).
    pub batch_ns: u64,
    /// Time inside the `match_batch` call that served this job (ns).
    pub match_ns: u64,
    /// End-to-end time on the connection thread (ns).
    pub total_ns: u64,
}

/// An open JSONL access log.
pub struct AccessLog {
    file: Mutex<std::fs::File>,
}

impl AccessLog {
    /// Opens (creating or appending to) the log file.
    ///
    /// # Errors
    /// Propagates the open failure.
    pub fn open(path: &Path) -> std::io::Result<AccessLog> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
        })
    }

    /// Appends one request line. Failures are counted in the metrics
    /// registry rather than surfaced — losing a log line must not fail the
    /// request it describes.
    pub fn log(&self, entry: &AccessEntry) {
        let Ok(mut line) = serde_json::to_string(entry) else {
            return;
        };
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if file.write_all(line.as_bytes()).is_err() {
            lsd_obs::counter_add("serve.access_log_errors", "", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn entry(status: u16) -> AccessEntry {
        AccessEntry {
            unix_ms: 1_700_000_000_000,
            trace_id: TraceId(0xabc),
            route: "match".to_string(),
            method: "POST".to_string(),
            path: "/v1/match".to_string(),
            status,
            model: "real-estate-1".to_string(),
            queue_ns: 1_000,
            batch_ns: 2_000,
            match_ns: 1_500,
            total_ns: 5_000,
        }
    }

    #[test]
    fn lines_are_one_json_object_each() {
        let dir = std::env::temp_dir().join(format!("lsd-access-{}", std::process::id()));
        let path = dir.join("access.log");
        let log = AccessLog::open(&path).expect("open");
        log.log(&entry(200));
        log.log(&entry(404));
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            let Value::Map(fields) = v else {
                panic!("line must be an object: {line}");
            };
            for want in [
                "unix_ms", "trace_id", "route", "method", "path", "status", "model", "queue_ns",
                "batch_ns", "match_ns", "total_ns",
            ] {
                assert!(fields.iter().any(|(k, _)| k == want), "missing {want}");
            }
        }
        assert!(lines[0].contains("\"00000000000000000000000000000abc\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends() {
        let dir = std::env::temp_dir().join(format!("lsd-access2-{}", std::process::id()));
        let path = dir.join("access.log");
        AccessLog::open(&path).expect("open").log(&entry(200));
        AccessLog::open(&path).expect("reopen").log(&entry(200));
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 2, "append, not truncate");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
