//! The server's typed error surface.
//!
//! Every failure a request can hit — transport, parsing, registry, queueing,
//! matching — is a [`ServeError`] variant with a fixed HTTP status, so
//! handlers return `Result<Response, ServeError>` and the connection loop
//! renders the error uniformly as a JSON body.

use lsd_core::LsdError;
use std::fmt;

/// Everything that can go wrong while serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// The request line, headers or JSON body could not be understood
    /// (`400`). `detail` names the offending part.
    BadRequest {
        /// Human-readable description of what was malformed.
        detail: String,
    },
    /// No route matches the request path (`404`).
    NotFound {
        /// The path that was requested.
        path: String,
    },
    /// The path exists but not with this method (`405`).
    MethodNotAllowed {
        /// The method that was used.
        method: String,
        /// The path it was used on.
        path: String,
    },
    /// The declared body length exceeds the configured limit (`413`). The
    /// body is never read.
    PayloadTooLarge {
        /// Declared `Content-Length`.
        length: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The request's `Content-Type` names no serialization the server can
    /// read (`415`). The supported types are `application/json`,
    /// `application/xml`, `text/csv` and `application/sql`.
    UnsupportedMediaType {
        /// The declared content type.
        content_type: String,
    },
    /// The request names a model the registry does not hold (`404`).
    ModelNotFound {
        /// The requested model name.
        name: String,
    },
    /// A snapshot loaded for activation failed validation (`422`): it was
    /// untrained, its analysis pass found errors, or its version is
    /// unsupported.
    ModelInvalid {
        /// The model name.
        name: String,
        /// Why activation was refused.
        detail: String,
    },
    /// The artifact audit (`lsd_analysis::audit_*`) found error-severity
    /// diagnostics in a model's snapshot or feedback WAL and the registry
    /// is running in strict mode (`422`). `detail` lists the `LSD2xx`
    /// codes.
    AuditFailed {
        /// The model name.
        name: String,
        /// The error diagnostics, one per line (`CODE: message`).
        detail: String,
    },
    /// The bounded request queue is full (`503` + `Retry-After`): explicit
    /// backpressure instead of unbounded buffering.
    QueueFull {
        /// Suggested client backoff in seconds.
        retry_after_secs: u64,
    },
    /// The server is draining for shutdown and accepts no new work (`503`).
    ShuttingDown,
    /// `POST /v1/feedback` was called but the server was started without a
    /// feedback directory, so corrections cannot be persisted (`503`).
    FeedbackDisabled,
    /// The registry holds no active model to match against (`503`).
    NoActiveModel,
    /// The request spent longer than its deadline in the queue (`504`).
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// The matching pipeline itself failed.
    /// [`LsdError::InvalidSchema`] maps to `400` (the client sent a bad
    /// source); everything else is a server-side `500`.
    Match(LsdError),
    /// Internal invariant failure (`500`), e.g. a worker dropped its reply
    /// channel.
    Internal {
        /// What broke.
        detail: String,
    },
}

impl ServeError {
    /// The HTTP status code this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest { .. } => 400,
            ServeError::NotFound { .. } | ServeError::ModelNotFound { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::UnsupportedMediaType { .. } => 415,
            ServeError::ModelInvalid { .. } | ServeError::AuditFailed { .. } => 422,
            ServeError::QueueFull { .. }
            | ServeError::ShuttingDown
            | ServeError::NoActiveModel
            | ServeError::FeedbackDisabled => 503,
            ServeError::DeadlineExceeded { .. } => 504,
            ServeError::Match(e) => match e {
                LsdError::InvalidSchema { .. } => 400,
                _ => 500,
            },
            ServeError::Internal { .. } => 500,
        }
    }

    /// Machine-readable error code for the JSON body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::NotFound { .. } => "not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::UnsupportedMediaType { .. } => "unsupported_media_type",
            ServeError::ModelNotFound { .. } => "model_not_found",
            ServeError::ModelInvalid { .. } => "model_invalid",
            ServeError::AuditFailed { .. } => "audit_failed",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::FeedbackDisabled => "feedback_disabled",
            ServeError::NoActiveModel => "no_active_model",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Match(_) => "match_failed",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// `Retry-After` value in seconds, for the statuses that advertise one.
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            ServeError::QueueFull { retry_after_secs } => Some(*retry_after_secs),
            ServeError::ShuttingDown => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::NotFound { path } => write!(f, "no route for {path}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed on {path}")
            }
            ServeError::PayloadTooLarge { length, limit } => {
                write!(f, "body of {length} bytes exceeds the {limit}-byte limit")
            }
            ServeError::UnsupportedMediaType { content_type } => {
                write!(
                    f,
                    "unsupported Content-Type {content_type:?}; use application/json, \
                     application/xml, text/csv or application/sql"
                )
            }
            ServeError::ModelNotFound { name } => write!(f, "no model named '{name}'"),
            ServeError::ModelInvalid { name, detail } => {
                write!(f, "model '{name}' failed validation: {detail}")
            }
            ServeError::AuditFailed { name, detail } => {
                write!(f, "model '{name}' failed its artifact audit: {detail}")
            }
            ServeError::QueueFull { retry_after_secs } => {
                write!(f, "request queue is full; retry after {retry_after_secs}s")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::FeedbackDisabled => {
                write!(
                    f,
                    "feedback is disabled; start the server with a feedback directory"
                )
            }
            ServeError::NoActiveModel => write!(f, "no active model in the registry"),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(
                    f,
                    "request exceeded its {deadline_ms}ms deadline in the queue"
                )
            }
            ServeError::Match(e) => write!(f, "matching failed: {e}"),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Match(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LsdError> for ServeError {
    fn from(e: LsdError) -> Self {
        ServeError::Match(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_the_documented_contract() {
        let cases: Vec<(ServeError, u16)> = vec![
            (ServeError::BadRequest { detail: "x".into() }, 400),
            (ServeError::NotFound { path: "/x".into() }, 404),
            (
                ServeError::MethodNotAllowed {
                    method: "GET".into(),
                    path: "/v1/match".into(),
                },
                405,
            ),
            (
                ServeError::PayloadTooLarge {
                    length: 10,
                    limit: 5,
                },
                413,
            ),
            (
                ServeError::UnsupportedMediaType {
                    content_type: "image/png".into(),
                },
                415,
            ),
            (ServeError::ModelNotFound { name: "m".into() }, 404),
            (
                ServeError::ModelInvalid {
                    name: "m".into(),
                    detail: "untrained".into(),
                },
                422,
            ),
            (
                ServeError::AuditFailed {
                    name: "m".into(),
                    detail: "LSD202: non-finite weight".into(),
                },
                422,
            ),
            (
                ServeError::QueueFull {
                    retry_after_secs: 1,
                },
                503,
            ),
            (ServeError::ShuttingDown, 503),
            (ServeError::FeedbackDisabled, 503),
            (ServeError::NoActiveModel, 503),
            (ServeError::DeadlineExceeded { deadline_ms: 10 }, 504),
            (ServeError::Internal { detail: "x".into() }, 500),
        ];
        for (e, status) in cases {
            assert_eq!(e.status(), status, "{e}");
        }
    }

    #[test]
    fn invalid_schema_is_the_clients_fault() {
        let bad = ServeError::Match(LsdError::InvalidSchema {
            source: "s".into(),
            detail: "broken".into(),
        });
        assert_eq!(bad.status(), 400);
        let internal = ServeError::Match(LsdError::NotTrained { operation: "serve" });
        assert_eq!(internal.status(), 500);
    }

    #[test]
    fn backpressure_statuses_advertise_retry_after() {
        assert_eq!(
            ServeError::QueueFull {
                retry_after_secs: 2
            }
            .retry_after_secs(),
            Some(2)
        );
        assert_eq!(ServeError::ShuttingDown.retry_after_secs(), Some(1));
        assert_eq!(ServeError::NoActiveModel.retry_after_secs(), None);
    }
}
