//! The HTTP server: accept loop, routing, worker pool and graceful
//! shutdown.
//!
//! Threading model: one OS thread per connection (bounded in practice by
//! keep-alive + read timeouts), a fixed worker pool draining the bounded
//! request queue, and the accept thread. Matching requests flow
//! connection-thread → queue → worker → reply channel → connection-thread;
//! registry and metrics endpoints are answered inline on the connection
//! thread.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is graceful: the accept loop
//! stops, the queue rejects new work, workers drain what is already
//! queued, and any leftover jobs (e.g. in a `workers = 0` configuration)
//! are failed with `503` so no client is left hanging.

use crate::access_log::{unix_ms, AccessEntry, AccessLog};
use crate::error::ServeError;
use crate::feedback::{retrain_worker, FeedbackHub};
use crate::http::{error_response, read_request, write_response, ReadOutcome, Request, Response};
use crate::json;
use crate::media;
use crate::queue::{worker_loop, Job, JobKind, JobTimings, RequestQueue};
use crate::registry::ModelRegistry;
use lsd_core::{Feedback, FeedbackRecord};
use lsd_obs::{trace, TraceContext, TraceId, TraceSample, TraceScope};
use serde::Value;
use std::cell::RefCell;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed — nothing drains,
    /// which is how the backpressure tests force queue-full conditions
    /// deterministically.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it fail with `503`.
    pub queue_capacity: usize,
    /// Maximum jobs coalesced into one `match_batch` call.
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more jobs.
    pub max_batch_delay: Duration,
    /// Queue deadline for requests that send no `X-Deadline-Ms` header.
    pub default_deadline: Duration,
    /// Ceiling on client-requested deadlines.
    pub max_deadline: Duration,
    /// How long a request already being processed may keep its connection
    /// thread waiting past its queue deadline.
    pub processing_grace: Duration,
    /// Per-connection socket read timeout (slow-client defense).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted request body; larger uploads get `413` unread.
    pub max_body_bytes: usize,
    /// `Retry-After` seconds advertised with `503 queue_full`.
    pub retry_after_secs: u64,
    /// Directory for per-model feedback WALs. `None` disables
    /// `POST /v1/feedback` (it answers `503 feedback_disabled`) and the
    /// retrain worker.
    pub feedback_dir: Option<std::path::PathBuf>,
    /// Latency at or above which a completed request is tail-sampled into
    /// the flight recorder (4xx/5xx responses are sampled regardless).
    /// `Duration::ZERO` samples everything — the test/CI setting.
    pub slow_threshold: Duration,
    /// JSONL access-log path; `None` disables access logging.
    pub access_log: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 128,
            max_batch: 8,
            max_batch_delay: Duration::from_millis(2),
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            processing_grace: Duration::from_secs(60),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1024 * 1024,
            retry_after_secs: 1,
            feedback_dir: None,
            slow_threshold: Duration::from_millis(500),
            access_log: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    registry: ModelRegistry,
    queue: RequestQueue,
    feedback: Option<FeedbackHub>,
    access_log: Option<AccessLog>,
    shutdown: AtomicBool,
    active_connections: AtomicU64,
}

/// Per-request observability state, threaded from accept to response:
/// the trace context stamped at accept time, the worker-filled
/// micro-timings, and the model the request resolved to (for the access
/// log and flight-recorder samples). Lives on one connection thread;
/// only `timings` crosses into the worker pool.
struct RequestObs {
    trace: TraceContext,
    timings: Arc<JobTimings>,
    model: RefCell<String>,
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    addr: SocketAddr,
}

/// Clonable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: stop accepting, drain the queue, fail
    /// whatever cannot be drained. Idempotent; returns immediately (the
    /// `run` call unwinds the rest).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue.begin_shutdown();
        // The accept loop may be blocked in `accept`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the listener and wires the queue; does not serve yet.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig, registry: ModelRegistry) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = RequestQueue::new(config.queue_capacity, config.retry_after_secs);
        let feedback = match &config.feedback_dir {
            Some(dir) => Some(
                FeedbackHub::open(dir, &registry)
                    .map_err(|e| std::io::Error::other(e.to_string()))?,
            ),
            None => None,
        };
        let access_log = match &config.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        };
        Ok(Server {
            shared: Arc::new(Shared {
                config,
                registry,
                queue,
                feedback,
                access_log,
                shutdown: AtomicBool::new(false),
                active_connections: AtomicU64::new(0),
            }),
            listener,
            addr,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Runs the server on a background thread, returning the handle and the
    /// join handle for its `run` loop.
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        (handle, join)
    }

    /// Serves until [`ServerHandle::shutdown`] is called: spawns the worker
    /// pool, accepts connections, then drains and joins everything.
    /// Metrics recording is switched on for the server's lifetime so
    /// `GET /metrics` sees the pipeline's own counters too.
    pub fn run(self) {
        lsd_obs::set_enabled(true);
        let shared = &self.shared;
        let workers: Vec<_> = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    worker_loop(
                        &shared.queue,
                        shared.config.max_batch,
                        shared.config.max_batch_delay,
                    )
                })
            })
            .collect();
        let retrainer = shared.feedback.as_ref().map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                if let Some(hub) = shared.feedback.as_ref() {
                    retrain_worker(&shared.registry, hub);
                }
            })
        });

        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(shared);
            shared.active_connections.fetch_add(1, Ordering::SeqCst);
            connections.push(std::thread::spawn(move || {
                handle_connection(&shared, stream);
                shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                lsd_obs::flush();
            }));
        }

        // Drain: the queue already rejects pushes; workers exit once it is
        // empty. Leftovers (workers = 0) are failed explicitly. The retrain
        // worker abandons its in-memory queue — the WAL keeps the records.
        if let Some(hub) = shared.feedback.as_ref() {
            hub.begin_shutdown();
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(retrainer) = retrainer {
            let _ = retrainer.join();
        }
        self.shared.queue.reject_remaining();
        for connection in connections {
            let _ = connection.join();
        }
    }
}

/// Parses `X-Deadline-Ms`, clamped to the configured ceiling.
fn request_deadline(request: &Request, config: &ServeConfig) -> Result<Duration, ServeError> {
    match request.header("x-deadline-ms") {
        None => Ok(config.default_deadline),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Duration::from_millis(ms).min(config.max_deadline)),
            _ => Err(ServeError::BadRequest {
                detail: format!("invalid X-Deadline-Ms {v:?}: expected a positive integer"),
            }),
        },
    }
}

/// Enqueues a parsed match/explain request and waits for the reply, never
/// longer than deadline + processing grace.
fn run_job(
    shared: &Shared,
    kind: JobKind,
    request: &Request,
    obs: &RequestObs,
) -> Result<String, ServeError> {
    let parsed = media::parse_request(request)?;
    let model = shared.registry.model(parsed.model.as_deref())?;
    obs.model.replace(model.name.clone());
    let deadline = request_deadline(request, &shared.config)?;
    let deadline_ms = deadline.as_millis() as u64;
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let claimed = Arc::new(AtomicBool::new(false));
    shared.queue.push(Job {
        kind,
        source: parsed.source,
        model,
        deadline: Instant::now() + deadline,
        deadline_ms,
        claimed: Arc::clone(&claimed),
        trace: obs.trace,
        enqueued_ns: lsd_obs::now_ns(),
        timings: Arc::clone(&obs.timings),
        reply: reply_tx,
    })?;
    match reply_rx.recv_timeout(deadline) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            if claimed.load(Ordering::SeqCst) {
                // A worker picked the job up in time; give processing room
                // to finish rather than abandoning completed work.
                match reply_rx.recv_timeout(shared.config.processing_grace) {
                    Ok(result) => result,
                    Err(_) => Err(ServeError::Internal {
                        detail: "worker did not reply within the processing grace".to_string(),
                    }),
                }
            } else {
                Err(ServeError::DeadlineExceeded { deadline_ms })
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Internal {
            detail: "worker dropped the reply channel".to_string(),
        }),
    }
}

/// Validates, durably logs and acks one feedback request. The corrections
/// are checked against the target model's label set *before* the WAL
/// append, so a `200` always means "these corrections will be folded into
/// a future generation (or replayed after a crash)".
fn handle_feedback(
    shared: &Shared,
    request: &Request,
    obs: &RequestObs,
) -> Result<String, ServeError> {
    let hub = shared
        .feedback
        .as_ref()
        .ok_or(ServeError::FeedbackDisabled)?;
    let parsed = json::parse_feedback_request(&request.body)?;
    let entry = shared.registry.model(parsed.model.as_deref())?;
    obs.model.replace(entry.name.clone());
    Feedback::from_corrections(parsed.corrections.clone())
        .to_constraints(entry.lsd.labels())
        .map_err(|e| ServeError::BadRequest {
            detail: e.to_string(),
        })?;
    let accepted = parsed.corrections.len();
    let record = FeedbackRecord::from_source(&parsed.source, parsed.corrections);
    let index = hub.submit(&entry.name, entry.lsd.feedback_applied(), record)?;
    lsd_obs::counter_add("serve.feedback_records", "accepted", 1);
    Ok(json::feedback_ack_body(
        &entry.name,
        entry.generation,
        index,
        accepted,
    ))
}

fn healthz_body(shared: &Shared) -> String {
    let stats = &shared.queue.stats;
    let int = |v: u64| Value::Int(v as i64);
    let doc = Value::Map(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("models".to_string(), int(shared.registry.len() as u64)),
        ("queue_depth".to_string(), int(shared.queue.depth() as u64)),
        (
            "queue_capacity".to_string(),
            int(shared.queue.capacity() as u64),
        ),
        (
            "requests_enqueued".to_string(),
            int(stats.enqueued.load(Ordering::Relaxed)),
        ),
        (
            "requests_rejected_full".to_string(),
            int(stats.rejected_full.load(Ordering::Relaxed)),
        ),
        (
            "requests_expired".to_string(),
            int(stats.expired.load(Ordering::Relaxed)),
        ),
        (
            "batches".to_string(),
            int(stats.batches.load(Ordering::Relaxed)),
        ),
        (
            "requests_processed".to_string(),
            int(stats.processed.load(Ordering::Relaxed)),
        ),
        (
            "max_batch".to_string(),
            int(stats.max_batch.load(Ordering::Relaxed)),
        ),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"status\":\"ok\"}".to_string())
}

/// Renders `GET /debug/traces`: with `?trace_id=` a single sampled trace
/// (404 when it was not sampled or has been evicted), otherwise the most
/// recent sampled traces plus the recorder's accounting.
fn debug_traces_body(request: &Request) -> Result<String, ServeError> {
    let recorder = lsd_obs::flight_recorder();
    let render = |v: &Value| {
        serde_json::to_string(v).map_err(|e| ServeError::Internal {
            detail: format!("cannot render trace sample: {e}"),
        })
    };
    match request.query_param("trace_id") {
        Some(id) => {
            let trace_id: TraceId = id.parse().map_err(|()| ServeError::BadRequest {
                detail: format!("invalid trace_id {id:?}: expected 32 hex digits"),
            })?;
            let sample = recorder
                .find(trace_id)
                .ok_or_else(|| ServeError::NotFound {
                    path: format!("/debug/traces?trace_id={id}"),
                })?;
            render(&serde::Serialize::to_value(&sample))
        }
        None => {
            // Newest first; bounded so the response stays scrapeable even
            // with the ring full.
            let samples: Vec<TraceSample> = recorder.samples().into_iter().rev().take(32).collect();
            let doc = Value::Map(vec![
                (
                    "recorded".to_string(),
                    Value::Int(recorder.recorded() as i64),
                ),
                ("evicted".to_string(), Value::Int(recorder.evicted() as i64)),
                (
                    "capacity".to_string(),
                    Value::Int(recorder.capacity() as i64),
                ),
                ("traces".to_string(), serde::Serialize::to_value(&samples)),
            ]);
            render(&doc)
        }
    }
}

/// Routes one request. Matching endpoints go through the queue; everything
/// else is answered inline.
fn route(shared: &Shared, request: &Request, obs: &RequestObs) -> Result<Response, ServeError> {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => Ok(Response::json(healthz_body(shared))),
        ("GET", "/metrics") => Ok(Response::text(lsd_obs::export::prometheus_text(
            &lsd_obs::snapshot(),
        ))),
        ("GET", "/debug/traces") => debug_traces_body(request).map(Response::json),
        ("GET", "/v1/models") => Ok(Response::json(shared.registry.list_json())),
        ("POST", "/v1/match") => run_job(shared, JobKind::Match, request, obs).map(Response::json),
        ("POST", "/v1/explain") => {
            run_job(shared, JobKind::Explain, request, obs).map(Response::json)
        }
        ("POST", "/v1/feedback") => handle_feedback(shared, request, obs).map(Response::json),
        ("PUT", path) if path.starts_with("/v1/models/") => {
            let name = &path["/v1/models/".len()..];
            let entry = shared.registry.activate(name)?;
            Ok(Response::json(
                serde_json::to_string(&Value::Map(vec![
                    ("activated".to_string(), Value::Str(entry.name.clone())),
                    (
                        "generation".to_string(),
                        Value::Int(entry.generation as i64),
                    ),
                ]))
                .unwrap_or_else(|_| "{}".to_string()),
            ))
        }
        (
            _,
            "/healthz" | "/metrics" | "/debug/traces" | "/v1/models" | "/v1/match" | "/v1/explain"
            | "/v1/feedback",
        ) => Err(ServeError::MethodNotAllowed {
            method: method.to_string(),
            path: path.to_string(),
        }),
        _ => Err(ServeError::NotFound {
            path: path.to_string(),
        }),
    }
}

fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/v1/match" => "match",
        "/v1/explain" => "explain",
        "/v1/feedback" => "feedback",
        "/v1/models" => "models",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/debug/traces" => "traces",
        p if p.starts_with("/v1/models/") => "models",
        _ => "other",
    }
}

/// Closes out one request's observability: ends the trace, tail-samples it
/// into the flight recorder when it was slow (>= `slow_threshold`) or
/// failed (4xx/5xx), and appends the access-log line.
fn finish_request_trace(
    shared: &Shared,
    request: &Request,
    obs: &RequestObs,
    tracked: bool,
    status: u16,
    total: Duration,
) {
    let total_ns = total.as_nanos() as u64;
    let (spans, truncated_spans) = if tracked {
        trace::finish(obs.trace.trace_id)
    } else {
        (Vec::new(), 0)
    };
    let slow = total >= shared.config.slow_threshold;
    let failed = status >= 400;
    if tracked && (slow || failed) {
        let reason = match (slow, failed) {
            (true, true) => "slow+error",
            (true, false) => "slow",
            _ => "error",
        };
        lsd_obs::counter_add("serve.traces_sampled", reason, 1);
        lsd_obs::flight_recorder().record(TraceSample {
            trace_id: obs.trace.trace_id,
            route: endpoint_label(&request.path).to_string(),
            model: obs.model.borrow().clone(),
            status,
            total_ns,
            reason: reason.to_string(),
            unix_ms: unix_ms(),
            spans,
            truncated_spans,
        });
    }
    if let Some(log) = &shared.access_log {
        log.log(&AccessEntry {
            unix_ms: unix_ms(),
            trace_id: obs.trace.trace_id,
            route: endpoint_label(&request.path).to_string(),
            method: request.method.clone(),
            path: request.path.clone(),
            status,
            model: obs.model.borrow().clone(),
            queue_ns: obs.timings.queue_ns.load(Ordering::Relaxed),
            batch_ns: obs.timings.batch_ns.load(Ordering::Relaxed),
            match_ns: obs.timings.match_ns.load(Ordering::Relaxed),
            total_ns,
        });
    }
}

/// Serves one connection until close, EOF, error or server shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_side) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_side);
    let mut stream = stream;
    loop {
        match read_request(&mut reader, shared.config.max_body_bytes) {
            ReadOutcome::Closed => break,
            ReadOutcome::Failed(error) => {
                // The request was unreadable; answer and close — the stream
                // position is unreliable now.
                lsd_obs::counter_add("serve.http_errors", error.code(), 1);
                lsd_obs::flush();
                let _ = write_response(&mut stream, &error_response(&error), true);
                break;
            }
            ReadOutcome::Request(request) => {
                let started = Instant::now();
                // Stamp the request: ingest the client's W3C traceparent
                // (continuing its trace with a fresh span id) or mint a
                // fresh context. `begin` only tracks spans while recording
                // is on, so a disabled server pays one atomic load here.
                let ctx = request
                    .header("traceparent")
                    .and_then(TraceContext::from_traceparent)
                    .map(|upstream| upstream.child())
                    .unwrap_or_else(TraceContext::generate);
                let tracked = lsd_obs::enabled() && trace::begin(&ctx);
                let label = endpoint_label(&request.path);
                let obs = RequestObs {
                    trace: ctx,
                    timings: Arc::new(JobTimings::default()),
                    model: RefCell::new(String::new()),
                };
                let draining = shared.shutdown.load(Ordering::SeqCst);
                let mut response = if draining {
                    error_response(&ServeError::ShuttingDown)
                } else {
                    // The scope tags every span this thread opens (and the
                    // root span below) with the request's trace; batch
                    // workers re-enter it per job on their side.
                    let _scope = TraceScope::enter(ctx);
                    let _root = lsd_obs::span!("serve.request", label);
                    match route(shared, &request, &obs) {
                        Ok(response) => response,
                        Err(error) => {
                            lsd_obs::counter_add("serve.http_errors", error.code(), 1);
                            error_response(&error)
                        }
                    }
                };
                // Every response echoes the (possibly server-minted)
                // context so clients can correlate and propagate.
                response
                    .extra_headers
                    .push(("traceparent", ctx.to_traceparent()));
                let total = started.elapsed();
                lsd_obs::counter_add("serve.http_requests", label, 1);
                lsd_obs::record_duration("serve.request_ns", label, total);
                lsd_obs::window_record_duration("serve.request_ns", label, total);
                finish_request_trace(shared, &request, &obs, tracked, response.status, total);
                // Merge this thread's shard before answering: once the
                // client has the response, a follow-up `/metrics` scrape
                // (on a different connection thread) must see the request
                // counted.
                lsd_obs::flush();
                let close = request.wants_close() || draining;
                if write_response(&mut stream, &response, close).is_err() || close {
                    break;
                }
            }
        }
    }
}
