//! The bounded request queue and the micro-batching workers.
//!
//! Connection threads parse requests and push [`Job`]s; worker threads pop
//! them in batches and run the matching pipeline. The queue is the server's
//! only buffer and it is *bounded*: when full, `push` fails immediately
//! with [`ServeError::QueueFull`] (rendered as `503` + `Retry-After`) so
//! overload surfaces as explicit backpressure instead of latency collapse.
//!
//! # Micro-batching
//!
//! A worker that pops a job does not process it immediately: it keeps
//! popping until it holds `max_batch` jobs or `max_batch_delay` has passed
//! since the first pop, then runs one [`Lsd::match_batch`] call per model
//! in the batch. Concurrent single-source requests therefore coalesce into
//! batch calls, at a bounded latency cost for the first request in the
//! batch. `match_batch` is deterministic (byte-identical to serial
//! matching), so batching is invisible in response bodies.
//!
//! # Deadlines
//!
//! Every job carries an absolute deadline. Workers drop jobs whose deadline
//! passed while queued (replying `504`), and the connection thread waits on
//! the reply channel with a timeout — so even a stalled pipeline (or a
//! `workers = 0` test configuration) cannot hang a client past its
//! deadline.

use crate::error::ServeError;
use crate::json;
use crate::registry::ModelEntry;
use lsd_core::{ExecPolicy, Source};
use lsd_obs::{trace, TraceContext, TraceScope};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-job micro-timings, written by the worker *before* it replies (the
/// reply-channel send/recv pair orders the writes before the connection
/// thread's reads) and read by the connection thread for the access log.
#[derive(Debug, Default)]
pub struct JobTimings {
    /// Nanoseconds the job waited in the queue before a worker claimed it.
    pub queue_ns: AtomicU64,
    /// Nanoseconds from batch claim to this job's reply.
    pub batch_ns: AtomicU64,
    /// Nanoseconds inside the `match_batch` (or fallback `match_source`)
    /// call that served this job.
    pub match_ns: AtomicU64,
}

/// What to do with a job's match outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Render the mapping + ranked candidates (`POST /v1/match`).
    Match,
    /// Render the full provenance report (`POST /v1/explain`).
    Explain,
}

/// One queued request: the parsed source, the model resolved at enqueue
/// time (so a hot-swap mid-flight cannot change it), the deadline, and the
/// channel the rendered response body goes back on.
pub struct Job {
    /// Response rendering mode.
    pub kind: JobKind,
    /// The source to match.
    pub source: Source,
    /// The model this job is pinned to.
    pub model: Arc<ModelEntry>,
    /// Absolute queue deadline.
    pub deadline: Instant,
    /// The deadline as requested, for the `504` message.
    pub deadline_ms: u64,
    /// Set by the worker the moment processing starts. The connection
    /// thread checks it when its deadline fires: unclaimed means the job is
    /// still queued (reply `504` now), claimed means the result is coming
    /// (wait out the processing grace).
    pub claimed: Arc<AtomicBool>,
    /// The request's trace context; batch-level spans are attached to it
    /// even though one `match_batch` call covers many traces.
    pub trace: TraceContext,
    /// When the job entered the queue, on the span timeline
    /// ([`lsd_obs::now_ns`]) — the start of the synthetic queue-wait span.
    pub enqueued_ns: u64,
    /// Where the worker publishes queue/batch/match micro-timings.
    pub timings: Arc<JobTimings>,
    /// Where the rendered body (or error) is sent.
    pub reply: mpsc::SyncSender<Result<String, ServeError>>,
}

/// Monotonic counters the server exposes in `/healthz`; all relaxed, read
/// without locks.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs accepted into the queue.
    pub enqueued: AtomicU64,
    /// Jobs rejected with `503 queue_full`.
    pub rejected_full: AtomicU64,
    /// Jobs dropped with `504` after their queue deadline passed.
    pub expired: AtomicU64,
    /// Batches processed.
    pub batches: AtomicU64,
    /// Jobs processed (sum of batch sizes).
    pub processed: AtomicU64,
    /// Largest batch processed so far.
    pub max_batch: AtomicU64,
}

impl ServeStats {
    fn note_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.processed.fetch_add(size, Ordering::Relaxed);
        self.max_batch.fetch_max(size, Ordering::Relaxed);
    }
}

struct Inner {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// The bounded queue shared by connection threads and workers.
pub struct RequestQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
    /// Seconds a `503 queue_full` response tells the client to back off.
    retry_after_secs: u64,
    /// Shared serving counters.
    pub stats: ServeStats,
}

fn lock_err<T>(_: T) -> ServeError {
    ServeError::Internal {
        detail: "request queue lock poisoned".to_string(),
    }
}

impl RequestQueue {
    /// A queue holding at most `capacity` jobs (at least 1).
    pub fn new(capacity: usize, retry_after_secs: u64) -> RequestQueue {
        RequestQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            retry_after_secs,
            stats: ServeStats::default(),
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().map(|i| i.jobs.len()).unwrap_or(0)
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a job, failing fast when the queue is full or draining.
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] at capacity, [`ServeError::ShuttingDown`]
    /// once shutdown began.
    pub fn push(&self, job: Job) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().map_err(lock_err)?;
        if inner.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if inner.jobs.len() >= self.capacity {
            self.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                retry_after_secs: self.retry_after_secs,
            });
        }
        inner.jobs.push_back(job);
        self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        lsd_obs::gauge_max("serve.queue_depth", "", inner.jobs.len() as u64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Marks the queue as draining: new pushes fail, blocked workers wake.
    /// Already queued jobs stay and will still be processed (graceful
    /// drain).
    pub fn begin_shutdown(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.shutting_down = true;
        }
        self.ready.notify_all();
    }

    /// Replies `503 shutting_down` to every job still queued. The safety
    /// net for configurations without workers to drain the queue.
    pub fn reject_remaining(&self) {
        let drained: Vec<Job> = match self.inner.lock() {
            Ok(mut inner) => inner.jobs.drain(..).collect(),
            Err(_) => return,
        };
        for job in drained {
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }

    /// Pops the next batch: blocks for the first job, then keeps popping
    /// until `max_batch` jobs are held or `max_batch_delay` has elapsed.
    /// Returns `None` when the queue is empty *and* shutting down — the
    /// worker's signal to exit after the queue has drained.
    fn pop_batch(&self, max_batch: usize, max_batch_delay: Duration) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().ok()?;
        loop {
            if let Some(first) = inner.jobs.pop_front() {
                let mut batch = vec![first];
                let batch_deadline = Instant::now() + max_batch_delay;
                while batch.len() < max_batch {
                    if let Some(job) = inner.jobs.pop_front() {
                        batch.push(job);
                        continue;
                    }
                    if inner.shutting_down {
                        break; // Draining: don't linger for stragglers.
                    }
                    let remaining = batch_deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, timeout) = self
                        .ready
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                    if timeout.timed_out() && inner.jobs.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Renders one finished outcome for its job and replies. Send failures are
/// ignored: the client may have timed out and gone away.
fn reply(job: &Job, result: Result<String, ServeError>) {
    let _ = job.reply.send(result);
}

/// Processes one batch: expired jobs get `504`, the rest are grouped by
/// model and run through one [`Lsd::match_batch`] call per group. A failed
/// group call falls back to per-source matching so one bad source cannot
/// poison its batch-mates.
fn process_batch(batch: Vec<Job>, stats: &ServeStats) {
    let started = Instant::now();
    let claim_ns = lsd_obs::now_ns();
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = batch.into_iter().partition(|j| j.deadline > now);
    for job in &expired {
        stats.expired.fetch_add(1, Ordering::Relaxed);
        lsd_obs::counter_add("serve.requests_expired", "", 1);
        // Publish the queue wait before replying so the 504's access-log
        // line shows where the deadline went.
        let wait = claim_ns.saturating_sub(job.enqueued_ns);
        job.timings.queue_ns.store(wait, Ordering::Relaxed);
        note_queue_wait(job, wait);
        reply(
            job,
            Err(ServeError::DeadlineExceeded {
                deadline_ms: job.deadline_ms,
            }),
        );
    }
    if live.is_empty() {
        return;
    }
    for job in &live {
        job.claimed.store(true, Ordering::SeqCst);
        let wait = claim_ns.saturating_sub(job.enqueued_ns);
        job.timings.queue_ns.store(wait, Ordering::Relaxed);
        note_queue_wait(job, wait);
    }

    stats.note_batch(live.len() as u64);
    lsd_obs::record_value("serve.batch_size", "", live.len() as u64);

    // Group batch-mates by model identity (hot swaps can interleave jobs
    // for different generations of the same name).
    let mut groups: Vec<(Arc<ModelEntry>, Vec<Job>)> = Vec::new();
    for job in live {
        match groups
            .iter_mut()
            .find(|(model, _)| Arc::ptr_eq(model, &job.model))
        {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((Arc::clone(&job.model), vec![job])),
        }
    }

    for (model, jobs) in groups {
        let sources: Vec<Source> = jobs.iter().map(|j| j.source.clone()).collect();
        let match_start = Instant::now();
        let match_start_ns = lsd_obs::now_ns();
        // The batch engine is deterministic at any thread count; serial
        // policy keeps each worker single-threaded so concurrency comes
        // from the worker pool, not nested thread pools.
        let outcome = model.lsd.match_batch(&sources, &ExecPolicy::serial());
        let match_ns = match_start.elapsed().as_nanos() as u64;
        // One `match_batch` call served every trace in the group: a single
        // thread-local scope cannot cover them, so the micro-batch span is
        // attached to each member trace explicitly (with the group size as
        // a label so the tree shows the coalescing).
        for job in &jobs {
            let batch_label: &'static str = if jobs.len() == 1 {
                "single"
            } else {
                "coalesced"
            };
            trace::attach(
                job.trace.trace_id,
                trace::synthetic_span(
                    "serve.match_batch",
                    batch_label,
                    match_start_ns,
                    match_ns,
                    job.trace.trace_id,
                    None,
                ),
            );
        }
        match outcome {
            Ok(outcomes) => {
                for (job, outcome) in jobs.iter().zip(outcomes) {
                    // Render under the job's scope so any span the renderer
                    // opens lands in the right trace.
                    let _scope = TraceScope::enter(job.trace);
                    let body = match job.kind {
                        JobKind::Match => json::match_body(&model.name, &outcome),
                        JobKind::Explain => json::explain_body(&model.name, &outcome),
                    };
                    finish_timings(job, match_ns, started);
                    lsd_obs::counter_add("serve.requests_ok", "", 1);
                    reply(job, Ok(body));
                }
            }
            Err(_) => {
                // One source in the batch is bad; re-run each alone so only
                // the offender fails. Single-trace calls can use a real
                // scope, so the pipeline's own spans get trace-tagged.
                for job in &jobs {
                    let _scope = TraceScope::enter(job.trace);
                    let single_start = Instant::now();
                    let result = model
                        .lsd
                        .match_source(&job.source)
                        .map(|outcome| match job.kind {
                            JobKind::Match => json::match_body(&model.name, &outcome),
                            JobKind::Explain => json::explain_body(&model.name, &outcome),
                        })
                        .map_err(ServeError::from);
                    finish_timings(job, single_start.elapsed().as_nanos() as u64, started);
                    lsd_obs::counter_add(
                        if result.is_ok() {
                            "serve.requests_ok"
                        } else {
                            "serve.requests_failed"
                        },
                        "",
                        1,
                    );
                    reply(job, result);
                }
            }
        }
    }
    let batch_elapsed = started.elapsed();
    lsd_obs::record_duration("serve.batch_ns", "", batch_elapsed);
    lsd_obs::window_record_duration("serve.batch_ns", "", batch_elapsed);
}

/// Attaches the synthetic queue-wait span to the job's trace and feeds the
/// wait into the cumulative + rolling registries.
fn note_queue_wait(job: &Job, wait_ns: u64) {
    trace::attach(
        job.trace.trace_id,
        trace::synthetic_span(
            "serve.queue_wait",
            "",
            job.enqueued_ns,
            wait_ns,
            job.trace.trace_id,
            None,
        ),
    );
    lsd_obs::record_value("serve.queue_wait_ns", "", wait_ns);
    lsd_obs::window_record("serve.queue_wait_ns", "", wait_ns);
}

/// Publishes the worker-side micro-timings. Must run before [`reply`]: the
/// sync-channel send/recv pair is the fence that makes these relaxed
/// stores visible to the connection thread.
fn finish_timings(job: &Job, match_ns: u64, batch_started: Instant) {
    job.timings.match_ns.store(match_ns, Ordering::Relaxed);
    job.timings
        .batch_ns
        .store(batch_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// One worker's run loop: pop batches until shutdown drains the queue, then
/// flush this thread's metric shard and exit.
pub fn worker_loop(queue: &RequestQueue, max_batch: usize, max_batch_delay: Duration) {
    while let Some(batch) = queue.pop_batch(max_batch.max(1), max_batch_delay) {
        process_batch(batch, &queue.stats);
        lsd_obs::flush();
    }
    lsd_obs::flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(reply: mpsc::SyncSender<Result<String, ServeError>>) -> Job {
        // A job that will never be processed in these tests — queue
        // mechanics only.
        let dtd = lsd_xml::parse_dtd("<!ELEMENT a (#PCDATA)>").expect("dtd");
        Job {
            kind: JobKind::Match,
            source: Source::from_xml("q", dtd, Vec::new()),
            model: Arc::new(ModelEntry {
                name: "m".into(),
                lsd: untrained_model(),
                generation: 1,
            }),
            deadline: Instant::now() + Duration::from_secs(5),
            deadline_ms: 5000,
            claimed: Arc::new(AtomicBool::new(false)),
            trace: TraceContext::generate(),
            enqueued_ns: lsd_obs::now_ns(),
            timings: Arc::new(JobTimings::default()),
            reply,
        }
    }

    fn untrained_model() -> lsd_core::Lsd {
        let mediated = lsd_xml::parse_dtd("<!ELEMENT A (#PCDATA)>").expect("dtd");
        let builder = lsd_core::LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        builder
            .add_learner(Box::new(lsd_core::learners::NameMatcher::new(
                n,
                std::collections::HashMap::new(),
            )))
            .build()
            .expect("builds")
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        let queue = RequestQueue::new(2, 1);
        let (tx, _rx) = mpsc::sync_channel(1);
        queue.push(dummy_job(tx.clone())).expect("1 fits");
        queue.push(dummy_job(tx.clone())).expect("2 fits");
        match queue.push(dummy_job(tx)) {
            Err(ServeError::QueueFull { retry_after_secs }) => {
                assert_eq!(retry_after_secs, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.stats.rejected_full.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_rejects_new_pushes_and_drains() {
        let queue = RequestQueue::new(8, 1);
        let (tx, rx) = mpsc::sync_channel(8);
        queue.push(dummy_job(tx.clone())).expect("fits");
        queue.begin_shutdown();
        assert!(matches!(
            queue.push(dummy_job(tx)),
            Err(ServeError::ShuttingDown)
        ));
        queue.reject_remaining();
        let queued_reply = rx.recv().expect("queued job got a reply");
        assert!(matches!(queued_reply, Err(ServeError::ShuttingDown)));
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn worker_exits_once_shutdown_drains_the_queue() {
        let queue = Arc::new(RequestQueue::new(8, 1));
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                worker_loop(&queue, 4, Duration::from_millis(1));
            })
        };
        queue.begin_shutdown();
        worker.join().expect("worker exits");
    }

    #[test]
    fn expired_jobs_get_deadline_exceeded() {
        let (tx, rx) = mpsc::sync_channel(1);
        let mut job = dummy_job(tx);
        job.deadline = Instant::now() - Duration::from_millis(1);
        job.deadline_ms = 1;
        let stats = ServeStats::default();
        process_batch(vec![job], &stats);
        match rx.recv().expect("reply") {
            Err(ServeError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(stats.expired.load(Ordering::Relaxed), 1);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 0);
    }
}
