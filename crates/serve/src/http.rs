//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for
//! `lsd-serve`'s JSON API, with the robustness the server contract needs:
//! bounded header blocks, a `Content-Length` cap enforced *before* the body
//! is read, read/write timeouts against slow clients, and keep-alive.
//!
//! Not supported (and rejected cleanly): chunked transfer encoding, HTTP
//! upgrade, multi-line headers.

use crate::error::ServeError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + header block, to stop a hostile client
/// from streaming an unbounded preamble.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `"POST"`.
    pub method: String,
    /// Path with any query string stripped, e.g. `"/v1/match"`.
    pub path: String,
    /// The raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// First value of a `key=value` query parameter, unescaped only for
    /// `%XX` triplets and `+` (enough for hex trace ids and simple slugs).
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then(|| percent_decode(v))
        })
    }
}

/// Minimal percent-decoding (`%XX` and `+`); invalid escapes pass through.
fn percent_decode(v: &str) -> String {
    let bytes = v.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => match bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                Some(b) => {
                    out.push(b);
                    i += 2;
                }
                None => out.push(b'%'),
            },
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Outcome of reading from an open connection.
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The client closed the connection (EOF before any bytes).
    Closed,
    /// The request was unreadable; respond with this error and close.
    Failed(ServeError),
}

fn bad(detail: impl Into<String>) -> ServeError {
    ServeError::BadRequest {
        detail: detail.into(),
    }
}

/// Reads one request from the stream. `max_body_bytes` is enforced against
/// the declared `Content-Length` before any body byte is read, so an
/// oversized upload costs the server nothing but the header parse.
pub fn read_request(reader: &mut BufReader<TcpStream>, max_body_bytes: usize) -> ReadOutcome {
    let mut head = String::new();
    let mut line = String::new();
    // Request line + headers, terminated by an empty line.
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Failed(bad("connection closed mid-headers"))
                };
            }
            Ok(_) => {}
            Err(e) => {
                return if head.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                    // Idle keep-alive connection timed out: just close.
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Failed(bad(format!("read failed: {e}")))
                };
            }
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Failed(bad("header block exceeds 16KiB"));
        }
    }

    let mut lines = head.lines();
    let Some(request_line) = lines.next() else {
        return ReadOutcome::Failed(bad("empty request"));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Failed(bad(format!("malformed request line: {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Failed(bad(format!("unsupported protocol {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Failed(bad(format!("malformed header line: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ReadOutcome::Failed(bad("chunked transfer encoding is not supported"));
    }

    let length = match request.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Failed(bad(format!("invalid Content-Length {v:?}")));
            }
        },
    };
    if length > max_body_bytes {
        return ReadOutcome::Failed(ServeError::PayloadTooLarge {
            length,
            limit: max_body_bytes,
        });
    }

    let mut request = request;
    if length > 0 {
        let mut body = vec![0u8; length];
        if let Err(e) = reader.read_exact(&mut body) {
            return ReadOutcome::Failed(bad(format!("body shorter than Content-Length: {e}")));
        }
        request.body = body;
    }
    ReadOutcome::Request(request)
}

/// A response ready to serialize: status, content type, body and optional
/// extra headers.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A `200 OK` plain-text response (the `/metrics` format).
    pub fn text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes one response. `close` adds `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Renders a [`ServeError`] as its JSON response, carrying `Retry-After`
/// when the error advertises one.
pub fn error_response(error: &ServeError) -> Response {
    let body = serde_json::to_string(&serde::Value::Map(vec![
        (
            "error".to_string(),
            serde::Value::Str(error.code().to_string()),
        ),
        ("detail".to_string(), serde::Value::Str(error.to_string())),
    ]))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
    let mut extra_headers = Vec::new();
    if let Some(secs) = error.retry_after_secs() {
        extra_headers.push(("Retry-After", secs.to_string()));
    }
    Response {
        status: error.status(),
        content_type: "application/json",
        body: body.into_bytes(),
        extra_headers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `bytes` to `read_request` through a real socket pair.
    fn parse(bytes: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(bytes).expect("write");
        drop(client);
        let (server_side, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(server_side);
        read_request(&mut reader, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome =
            parse(b"POST /v1/match?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd");
        let ReadOutcome::Request(r) = outcome else {
            panic!("expected a request");
        };
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/match");
        assert_eq!(r.query, "x=1");
        assert_eq!(r.query_param("x").as_deref(), Some("1"));
        assert_eq!(r.query_param("y"), None);
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn query_params_percent_decode() {
        let outcome = parse(b"GET /debug/traces?trace_id=0af7%2B1&b=x+y HTTP/1.1\r\n\r\n");
        let ReadOutcome::Request(r) = outcome else {
            panic!("expected a request");
        };
        assert_eq!(r.path, "/debug/traces");
        assert_eq!(r.query_param("trace_id").as_deref(), Some("0af7+1"));
        assert_eq!(r.query_param("b").as_deref(), Some("x y"));
    }

    #[test]
    fn eof_before_bytes_is_a_clean_close() {
        assert!(matches!(parse(b""), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_declared_body_is_rejected_unread() {
        let outcome = parse(b"POST /v1/match HTTP/1.1\r\nContent-Length: 99999\r\n\r\n");
        let ReadOutcome::Failed(e) = outcome else {
            panic!("expected failure");
        };
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn garbage_request_line_is_a_bad_request() {
        let outcome = parse(b"not-http\r\n\r\n");
        let ReadOutcome::Failed(e) = outcome else {
            panic!("expected failure");
        };
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let outcome = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        let ReadOutcome::Failed(e) = outcome else {
            panic!("expected failure");
        };
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn error_response_carries_retry_after() {
        let r = error_response(&ServeError::QueueFull {
            retry_after_secs: 3,
        });
        assert_eq!(r.status, 503);
        assert!(r
            .extra_headers
            .iter()
            .any(|(k, v)| *k == "Retry-After" && v == "3"));
        let text = String::from_utf8(r.body).expect("utf8");
        assert!(text.contains("queue_full"));
    }
}
