//! The model registry: `SavedModel` snapshots on disk, validated and
//! hot-swappable behind `Arc`s.
//!
//! Every snapshot goes through the same gate before it can serve traffic:
//! [`Lsd::load_json`] (which rejects snapshots from newer builds) followed
//! by [`Lsd::ensure_servable`] (trained + clean static analysis), followed
//! by the artifact audit (`lsd_analysis::audit_snapshot` over the snapshot
//! text and, when a `<name>.wal` sits beside it, `audit_wal` over the
//! feedback log). Audit findings are always counted as
//! `audit.diagnostics/<code>` obs metrics; under [`AuditMode::Strict`],
//! error-severity findings additionally reject the model with
//! [`ServeError::AuditFailed`]. Loading and validation happen *outside*
//! the registry lock; the swap itself is a pointer write under a short
//! write lock. Requests hold an `Arc<ModelEntry>` for their whole
//! lifetime, so a swap never changes the model under an in-flight request
//! — the old model is dropped when its last request finishes.

use crate::error::ServeError;
use lsd_core::Lsd;
use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// One loaded, validated model. Immutable once constructed; shared with
/// every request that matched against it.
pub struct ModelEntry {
    /// Registry name (the snapshot's file stem).
    pub name: String,
    /// The loaded system. [`Lsd`] is `Send + Sync` and all serving entry
    /// points take `&self`, so one instance serves concurrent requests.
    pub lsd: Lsd,
    /// Monotonic generation, bumped on every (re)load of this name —
    /// distinguishes two loads of the same file in hot-swap tests.
    pub generation: u64,
}

#[derive(Default)]
struct State {
    models: BTreeMap<String, Arc<ModelEntry>>,
    active: Option<String>,
    /// Snapshots that failed validation at `open` time, with the reason —
    /// reported by `GET /v1/models` instead of silently dropped.
    failures: BTreeMap<String, String>,
    next_generation: u64,
}

/// How the registry treats artifact-audit findings when loading a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Findings of any severity are counted as `audit.diagnostics/<code>`
    /// obs metrics; nothing is rejected. The library default — embedding
    /// callers opt into gating explicitly.
    #[default]
    Warn,
    /// Error-severity findings reject the model with
    /// [`ServeError::AuditFailed`]; warnings are counted. What
    /// `lsd-serve` runs with unless started with `--no-strict-audit`.
    Strict,
}

/// Directory-backed registry of serving models. See the module docs for the
/// swap discipline.
pub struct ModelRegistry {
    dir: PathBuf,
    audit: AuditMode,
    state: RwLock<State>,
}

fn lock_err<T>(_: T) -> ServeError {
    ServeError::Internal {
        detail: "registry lock poisoned".to_string(),
    }
}

/// Registry names come from URLs; keep them to file stems so a crafted
/// `PUT /v1/models/../x` cannot escape the model directory.
fn validate_name(name: &str) -> Result<(), ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.contains("..");
    if ok {
        Ok(())
    } else {
        Err(ServeError::BadRequest {
            detail: format!(
                "invalid model name {name:?}: use ASCII letters, digits, '-', '_', '.'"
            ),
        })
    }
}

impl ModelRegistry {
    /// Opens the registry over `dir`, loading every `*.json` snapshot in
    /// name order. Snapshots that fail to load or validate are recorded as
    /// failures (visible in [`ModelRegistry::list_json`]) and skipped; the
    /// first
    /// healthy model (alphabetically) becomes active. An empty or missing
    /// directory yields an empty registry — the server then answers
    /// matching requests with `503 no_active_model`.
    ///
    /// # Errors
    /// [`ServeError::Internal`] only for directory-read failures on an
    /// *existing* path.
    pub fn open(dir: impl AsRef<Path>) -> Result<ModelRegistry, ServeError> {
        ModelRegistry::open_with(dir, AuditMode::default())
    }

    /// [`ModelRegistry::open`] with an explicit [`AuditMode`]. Under
    /// [`AuditMode::Strict`], snapshots whose artifact audit finds
    /// error-severity diagnostics are recorded as failures and skipped,
    /// exactly like snapshots that fail to load.
    ///
    /// # Errors
    /// As for [`ModelRegistry::open`].
    pub fn open_with(dir: impl AsRef<Path>, audit: AuditMode) -> Result<ModelRegistry, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        let registry = ModelRegistry {
            dir: dir.clone(),
            audit,
            state: RwLock::new(State::default()),
        };
        if !dir.exists() {
            return Ok(registry);
        }
        let entries = std::fs::read_dir(&dir).map_err(|e| ServeError::Internal {
            detail: format!("cannot read model directory {}: {e}", dir.display()),
        })?;
        let mut names: Vec<String> = entries
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                if path.extension().is_some_and(|ext| ext == "json") {
                    Some(path.file_stem()?.to_str()?.to_string())
                } else {
                    None
                }
            })
            .collect();
        names.sort();
        for name in names {
            if let Err(e) = registry.activate_if_first(&name) {
                let mut state = registry.state.write().map_err(lock_err)?;
                state.failures.insert(name, e.to_string());
            }
        }
        Ok(registry)
    }

    /// The directory snapshots are loaded from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The audit mode every load goes through.
    pub fn audit_mode(&self) -> AuditMode {
        self.audit
    }

    pub(crate) fn snapshot_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    /// Loads and validates `name` from disk — the expensive part, done
    /// without holding any lock.
    fn load_validated(&self, name: &str) -> Result<Lsd, ServeError> {
        validate_name(name)?;
        let path = self.snapshot_path(name);
        if !path.exists() {
            return Err(ServeError::ModelNotFound {
                name: name.to_string(),
            });
        }
        let lsd = Lsd::load_json(&path).map_err(|e| ServeError::ModelInvalid {
            name: name.to_string(),
            detail: e.to_string(),
        })?;
        lsd.ensure_servable()
            .map_err(|e| ServeError::ModelInvalid {
                name: name.to_string(),
                detail: e.to_string(),
            })?;
        self.audit_gate(name)?;
        Ok(lsd)
    }

    /// Runs the artifact audit over `name`'s on-disk snapshot and — when a
    /// `<name>.wal` feedback log sits beside it (the default feedback-dir
    /// layout) — the WAL, cross-checked against the snapshot. Every
    /// finding is counted as an `audit.diagnostics/<code>` obs metric;
    /// under [`AuditMode::Strict`], error-severity findings reject the
    /// model.
    fn audit_gate(&self, name: &str) -> Result<(), ServeError> {
        let path = self.snapshot_path(name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(()); // vanished between load and audit; the load already succeeded
        };
        let (mut diags, summary) = lsd_analysis::audit_snapshot_with_summary(&text);
        let wal_path = self.dir.join(format!("{name}.wal"));
        if let Ok(bytes) = std::fs::read(&wal_path) {
            let ctx = lsd_analysis::WalAuditContext {
                labels: summary.labels.clone(),
                feedback_applied: summary.feedback_applied,
            };
            diags.extend(lsd_analysis::audit_wal(&bytes, Some(&ctx)));
        }
        record_audit(name, &diags, self.audit)
    }

    fn install(
        &self,
        name: &str,
        lsd: Lsd,
        make_active: bool,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        let mut state = self.state.write().map_err(lock_err)?;
        state.next_generation += 1;
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            lsd,
            generation: state.next_generation,
        });
        state.models.insert(name.to_string(), Arc::clone(&entry));
        state.failures.remove(name);
        if make_active || state.active.is_none() {
            state.active = Some(name.to_string());
        }
        Ok(entry)
    }

    fn activate_if_first(&self, name: &str) -> Result<(), ServeError> {
        let lsd = self.load_validated(name)?;
        self.install(name, lsd, false)?;
        Ok(())
    }

    /// Installs an already-validated, retrained instance of `name` — the
    /// retrain worker's hot-swap. Bumps the generation and replaces the
    /// entry atomically; the active selection is untouched, so a retrained
    /// non-active model stays non-active while a retrained active model
    /// keeps serving (new requests resolve the new `Arc`, in-flight
    /// requests finish on the generation they started with).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for invalid names,
    /// [`ServeError::ModelInvalid`] when `lsd` fails
    /// [`Lsd::ensure_servable`], [`ServeError::Internal`] on lock poison.
    pub fn install_retrained(&self, name: &str, lsd: Lsd) -> Result<Arc<ModelEntry>, ServeError> {
        validate_name(name)?;
        lsd.ensure_servable()
            .map_err(|e| ServeError::ModelInvalid {
                name: name.to_string(),
                detail: e.to_string(),
            })?;
        self.audit_gate(name)?;
        self.install(name, lsd, false)
    }

    /// Names of all installed models, sorted.
    pub fn names(&self) -> Vec<String> {
        self.state
            .read()
            .map(|s| s.models.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// The installed entry's generation, if `name` is installed — the
    /// cheap probe the retrain tests and `/metrics` poller rely on.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.state
            .read()
            .ok()
            .and_then(|s| s.models.get(name).map(|m| m.generation))
    }

    /// (Re)loads `name` from disk, validates it, atomically installs it and
    /// makes it the active model — the `PUT /v1/models/{name}` operation.
    /// In-flight requests keep the `Arc` of whichever model they resolved
    /// and are unaffected.
    ///
    /// # Errors
    /// [`ServeError::ModelNotFound`] when no `{name}.json` exists,
    /// [`ServeError::ModelInvalid`] when it fails loading or validation —
    /// in both cases the previously installed model (if any) stays in
    /// place and active.
    pub fn activate(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        let lsd = self.load_validated(name)?;
        self.install(name, lsd, true)
    }

    /// Resolves the model a request should use: `Some(name)` looks up that
    /// model, `None` takes the active one.
    ///
    /// # Errors
    /// [`ServeError::ModelNotFound`] / [`ServeError::NoActiveModel`].
    pub fn model(&self, name: Option<&str>) -> Result<Arc<ModelEntry>, ServeError> {
        let state = self.state.read().map_err(lock_err)?;
        match name {
            Some(n) => state
                .models
                .get(n)
                .cloned()
                .ok_or_else(|| ServeError::ModelNotFound {
                    name: n.to_string(),
                }),
            None => state
                .active
                .as_ref()
                .and_then(|n| state.models.get(n))
                .cloned()
                .ok_or(ServeError::NoActiveModel),
        }
    }

    /// Number of installed models.
    pub fn len(&self) -> usize {
        self.state.read().map(|s| s.models.len()).unwrap_or(0)
    }

    /// True when no model is installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `GET /v1/models` body: every installed model (name, label count,
    /// generation, active flag) plus load failures with reasons.
    pub fn list_json(&self) -> String {
        let Ok(state) = self.state.read() else {
            return "{}".to_string();
        };
        let models = state
            .models
            .values()
            .map(|m| {
                Value::Map(vec![
                    ("name".to_string(), Value::Str(m.name.clone())),
                    (
                        "labels".to_string(),
                        Value::Int(m.lsd.labels().len() as i64),
                    ),
                    ("generation".to_string(), Value::Int(m.generation as i64)),
                    (
                        "active".to_string(),
                        Value::Bool(state.active.as_deref() == Some(m.name.as_str())),
                    ),
                ])
            })
            .collect();
        let failures = state
            .failures
            .iter()
            .map(|(name, reason)| (name.clone(), Value::Str(reason.clone())))
            .collect();
        let doc = Value::Map(vec![
            ("models".to_string(), Value::Seq(models)),
            (
                "active".to_string(),
                state
                    .active
                    .as_ref()
                    .map_or(Value::Null, |n| Value::Str(n.clone())),
            ),
            ("failures".to_string(), Value::Map(failures)),
        ]);
        serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Counts every audit finding as an `audit.diagnostics/<code>` obs metric
/// and, under [`AuditMode::Strict`], rejects error-severity findings with
/// [`ServeError::AuditFailed`]. Shared with the retrain worker's
/// pre-hot-swap audit.
pub(crate) fn record_audit(
    name: &str,
    diags: &[lsd_analysis::Diagnostic],
    mode: AuditMode,
) -> Result<(), ServeError> {
    for d in diags {
        lsd_obs::counter_add("audit.diagnostics", d.code.as_str(), 1);
    }
    if !diags.is_empty() {
        // Audits run at boot and on hot-swaps — on threads that may never
        // exit (and so never merge their metric shard). Flush eagerly so
        // `GET /metrics` sees the findings; audits are rare enough that
        // the extra lock is irrelevant.
        lsd_obs::flush();
    }
    if mode == AuditMode::Strict && lsd_analysis::has_errors(diags) {
        let detail = diags
            .iter()
            .filter(|d| d.severity == lsd_analysis::Severity::Error)
            .map(|d| format!("{}: {}", d.code.as_str(), d.message))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(ServeError::AuditFailed {
            name: name.to_string(),
            detail,
        });
    }
    Ok(())
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("name", &self.name)
            .field("generation", &self.generation)
            .finish()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("dir", &self.dir)
            .field("models", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_with_path_tricks_are_rejected() {
        for bad in ["", "../x", "a/b", "a\\b", "x..y"] {
            assert!(validate_name(bad).is_err(), "{bad:?} should be rejected");
        }
        for good in ["m", "real-estate-1", "v1.2_final"] {
            assert!(validate_name(good).is_ok(), "{good:?} should be accepted");
        }
    }

    #[test]
    fn missing_directory_yields_an_empty_registry() {
        let registry =
            ModelRegistry::open(std::env::temp_dir().join("lsd-serve-no-such-dir")).expect("opens");
        assert!(registry.is_empty());
        assert!(matches!(
            registry.model(None),
            Err(ServeError::NoActiveModel)
        ));
        assert!(matches!(
            registry.model(Some("ghost")),
            Err(ServeError::ModelNotFound { .. })
        ));
    }

    #[test]
    fn invalid_snapshots_are_reported_not_fatal() {
        let dir = std::env::temp_dir().join("lsd-serve-registry-invalid");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("broken.json"), "{not json").expect("write");
        let registry = ModelRegistry::open(&dir).expect("opens");
        assert!(registry.is_empty());
        let listing = registry.list_json();
        assert!(listing.contains("broken"), "failures listed: {listing}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
