//! Content negotiation for the matching endpoints.
//!
//! `POST /v1/match` and `POST /v1/explain` accept any serialization with a
//! [`SourceReader`]: the `Content-Type` header picks the reader, and the
//! whole body is the source. The JSON envelope (`{"model": ..., "source":
//! {"dtd": ..., "listings": [...]}}`) remains the native representation;
//! raw bodies name their source with `X-Lsd-Source` and pick a model with
//! `X-Lsd-Model` instead of envelope fields.
//!
//! | `Content-Type` | Interpretation |
//! |---|---|
//! | none or `application/json` | envelope if the top level has a `"source"` key, else raw JSON documents via [`JsonReader`] |
//! | `application/xml`, `text/xml` | container document via [`XmlReader::from_document`] |
//! | `text/csv` | header + rows via [`CsvReader`] |
//! | `application/sql` | `CREATE TABLE` DDL + `INSERT`s via [`SqlReader`] |
//! | anything else | `415 unsupported_media_type` |

use crate::error::ServeError;
use crate::http::Request;
use crate::json::{self, MatchRequest};
use lsd_core::{CsvReader, JsonReader, Source, SourceReader, SqlReader, XmlReader};
use serde::Value;

/// Strips parameters (`; charset=...`) and normalizes case, so
/// `Text/CSV; charset=utf-8` negotiates as `text/csv`.
fn essence(content_type: &str) -> String {
    content_type
        .split(';')
        .next()
        .unwrap_or("")
        .trim()
        .to_ascii_lowercase()
}

/// Whether a JSON body is the native envelope (a top-level object with a
/// `"source"` key) rather than a raw document.
fn is_envelope(text: &str) -> bool {
    matches!(
        serde_json::from_str::<Value>(text),
        Ok(Value::Map(entries)) if entries.iter().any(|(k, _)| k == "source")
    )
}

/// Parses one matching request according to its `Content-Type`.
///
/// # Errors
/// [`ServeError::UnsupportedMediaType`] for an unknown type,
/// [`ServeError::BadRequest`] when the negotiated reader rejects the body.
pub fn parse_request(request: &Request) -> Result<MatchRequest, ServeError> {
    let content_type = request.header("content-type").map(essence);
    match content_type.as_deref() {
        None | Some("") | Some("application/json") => {
            let text = body_text(request)?;
            if is_envelope(text) {
                json::parse_match_request(&request.body)
            } else {
                from_reader(request, &JsonReader::new(text))
            }
        }
        Some("application/xml" | "text/xml") => {
            from_reader(request, &XmlReader::from_document(body_text(request)?))
        }
        Some("text/csv") => from_reader(request, &CsvReader::new(body_text(request)?)),
        Some("application/sql") => from_reader(request, &SqlReader::new(body_text(request)?)),
        Some(other) => Err(ServeError::UnsupportedMediaType {
            content_type: other.to_string(),
        }),
    }
}

fn body_text(request: &Request) -> Result<&str, ServeError> {
    std::str::from_utf8(&request.body).map_err(|_| ServeError::BadRequest {
        detail: "body is not valid UTF-8".to_string(),
    })
}

/// Runs a reader over the whole body; model and source name come from the
/// `X-Lsd-Model` / `X-Lsd-Source` headers.
fn from_reader(request: &Request, reader: &dyn SourceReader) -> Result<MatchRequest, ServeError> {
    let name = request.header("x-lsd-source").unwrap_or("request");
    let source = Source::from_reader(name, reader).map_err(|e| ServeError::BadRequest {
        detail: e.to_string(),
    })?;
    Ok(MatchRequest {
        model: request.header("x-lsd-model").map(str::to_string),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_core::SourceFormat;

    fn request(content_type: Option<&str>, body: &str) -> Request {
        let mut headers = vec![("x-lsd-source".to_string(), "unit".to_string())];
        if let Some(ct) = content_type {
            headers.push(("content-type".to_string(), ct.to_string()));
        }
        Request {
            method: "POST".to_string(),
            path: "/v1/match".to_string(),
            query: String::new(),
            headers,
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn json_envelope_still_parses() {
        let body = r#"{"source": {"dtd": "<!ELEMENT h (#PCDATA)>", "listings": ["<h>x</h>"]}}"#;
        let parsed = parse_request(&request(Some("application/json"), body)).expect("parses");
        assert_eq!(parsed.source.format, SourceFormat::Xml);
        assert_eq!(parsed.source.listings.len(), 1);
    }

    #[test]
    fn raw_json_negotiates_the_json_reader() {
        let body = r#"[{"area": "Miami"}, {"area": "Kent"}]"#;
        let parsed =
            parse_request(&request(Some("application/json; charset=utf-8"), body)).expect("parses");
        assert_eq!(parsed.source.format, SourceFormat::Json);
        assert_eq!(parsed.source.name, "unit");
        assert_eq!(parsed.source.listings.len(), 2);
    }

    #[test]
    fn csv_sql_and_xml_negotiate_their_readers() {
        let cases: [(&str, &str, SourceFormat, usize); 3] = [
            ("text/csv", "area\nMiami\nKent\n", SourceFormat::Csv, 2),
            (
                "application/sql",
                "CREATE TABLE h (area TEXT); INSERT INTO h VALUES ('Miami');",
                SourceFormat::Sql,
                1,
            ),
            (
                "Application/XML",
                "<hs><h><area>Miami</area></h></hs>",
                SourceFormat::Xml,
                1,
            ),
        ];
        for (ct, body, format, listings) in cases {
            let parsed = parse_request(&request(Some(ct), body)).expect(ct);
            assert_eq!(parsed.source.format, format, "{ct}");
            assert_eq!(parsed.source.listings.len(), listings, "{ct}");
        }
    }

    #[test]
    fn unknown_content_type_is_415() {
        let e = parse_request(&request(Some("image/png"), "x")).expect_err("rejects");
        assert_eq!(e.status(), 415);
        assert_eq!(e.code(), "unsupported_media_type");
    }

    #[test]
    fn reader_failures_are_bad_requests_naming_the_format() {
        let e = parse_request(&request(Some("text/csv"), "")).expect_err("rejects");
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("csv"), "{e}");
    }
}
