//! The serve side of the feedback loop: a durable per-model correction WAL
//! and a background retrain worker with zero-downtime hot-swap.
//!
//! Flow: `POST /v1/feedback` validates the corrections against the target
//! model's label set, appends one [`FeedbackRecord`] to `<dir>/<model>.wal`
//! — fsynced before the request is acknowledged — and notifies the worker.
//! The worker drains a model's pending records, re-matches each recorded
//! source under its corrections, warm-trains a copy of the served model on
//! the corrected mappings (`Lsd::train_incremental`), snapshots the new
//! generation to disk (write-to-temp + rename), and installs it in the
//! [`ModelRegistry`]. In-flight requests hold an `Arc` of the old entry and
//! finish on the generation they started with; new requests resolve the new
//! one.
//!
//! Crash safety: a correction is acknowledged only after its WAL append has
//! been synced. Each snapshot records how many WAL records it has folded
//! ([`Lsd::feedback_applied`]); on restart the hub replays every WAL and
//! schedules only the unfolded suffix, so a kill anywhere between ack and
//! retrain loses nothing. A retrain failure drops the in-memory batch but
//! never the WAL — the records are retried on the next restart.
//!
//! [`Lsd::feedback_applied`]: lsd_core::Lsd::feedback_applied

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use lsd_core::{Feedback, FeedbackRecord, FeedbackWal, Lsd, TrainedSource};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

fn internal(detail: impl Into<String>) -> ServeError {
    ServeError::Internal {
        detail: detail.into(),
    }
}

/// One model's feedback log: the durable WAL plus the replayed-or-appended
/// records the retrain worker has not folded into a snapshot yet.
struct ModelLog {
    wal: FeedbackWal,
    pending: Vec<FeedbackRecord>,
}

struct HubState {
    logs: BTreeMap<String, ModelLog>,
    shutdown: bool,
}

/// Shared state between the feedback endpoint and the retrain worker:
/// per-model WALs behind one mutex, with a condvar waking the worker when
/// records arrive.
pub struct FeedbackHub {
    dir: PathBuf,
    state: Mutex<HubState>,
    wake: Condvar,
}

impl FeedbackHub {
    /// Opens (or creates) the feedback directory and replays the WAL of
    /// every model currently installed in `registry`. Records beyond each
    /// model's `feedback_applied` fold point become pending work for the
    /// retrain worker — this is the kill-and-restart recovery path.
    ///
    /// # Errors
    /// [`ServeError::Internal`] when the directory cannot be created or a
    /// WAL is unreadable (foreign magic is an error; a torn tail is not).
    pub fn open(dir: impl Into<PathBuf>, registry: &ModelRegistry) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            internal(format!(
                "cannot create feedback directory {}: {e}",
                dir.display()
            ))
        })?;
        let mut logs = BTreeMap::new();
        for name in registry.names() {
            let applied = registry
                .model(Some(&name))
                .map(|entry| entry.lsd.feedback_applied())
                .unwrap_or(0);
            let path = dir.join(format!("{name}.wal"));
            let (wal, records) = FeedbackWal::open(&path)
                .map_err(|e| internal(format!("cannot open WAL {}: {e}", path.display())))?;
            let pending = records.into_iter().skip(applied as usize).collect();
            logs.insert(name, ModelLog { wal, pending });
        }
        Ok(FeedbackHub {
            dir,
            state: Mutex::new(HubState {
                logs,
                shutdown: false,
            }),
            wake: Condvar::new(),
        })
    }

    /// Durably appends one record to `model`'s WAL and queues it for the
    /// retrain worker. Returns the record's zero-based WAL index; when this
    /// returns, the record has been fsynced and will survive a crash.
    ///
    /// `applied` is the model's current fold point, used only when the
    /// model has no log yet (activated after the hub opened) to skip the
    /// already-folded prefix of a pre-existing WAL.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] during drain, [`ServeError::Internal`]
    /// for WAL I/O failures.
    pub fn submit(
        &self,
        model: &str,
        applied: u64,
        record: FeedbackRecord,
    ) -> Result<u64, ServeError> {
        let mut state = self
            .state
            .lock()
            .map_err(|_| internal("feedback hub lock poisoned"))?;
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if !state.logs.contains_key(model) {
            let path = self.dir.join(format!("{model}.wal"));
            let (wal, records) = FeedbackWal::open(&path)
                .map_err(|e| internal(format!("cannot open WAL {}: {e}", path.display())))?;
            let pending = records.into_iter().skip(applied as usize).collect();
            state
                .logs
                .insert(model.to_string(), ModelLog { wal, pending });
        }
        let log = state
            .logs
            .get_mut(model)
            .ok_or_else(|| internal("feedback log vanished under the lock"))?;
        let index = log
            .wal
            .append(&record)
            .map_err(|e| internal(format!("WAL append failed: {e}")))?;
        log.pending.push(record);
        self.wake.notify_all();
        Ok(index)
    }

    /// Where `model`'s WAL lives — for the retrain worker's pre-hot-swap
    /// fold-point sanity check.
    pub(crate) fn wal_path(&self, model: &str) -> PathBuf {
        self.dir.join(format!("{model}.wal"))
    }

    /// Wakes the worker and makes further submits fail with `503`. Pending
    /// batches are abandoned (the WAL keeps them for the next start) so
    /// shutdown is never blocked behind a retrain.
    pub(crate) fn begin_shutdown(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.shutdown = true;
        }
        self.wake.notify_all();
    }

    /// Blocks until some model has pending records (returning the model
    /// name, the drained batch and the new fold point — the WAL record
    /// count after the batch) or shutdown begins (returning `None`).
    fn next_batch(&self) -> Option<(String, Vec<FeedbackRecord>, u64)> {
        let mut state = self.state.lock().ok()?;
        loop {
            if state.shutdown {
                return None;
            }
            let found = state.logs.iter_mut().find_map(|(name, log)| {
                if log.pending.is_empty() {
                    None
                } else {
                    Some((
                        name.clone(),
                        std::mem::take(&mut log.pending),
                        log.wal.record_count(),
                    ))
                }
            });
            if let Some(batch) = found {
                return Some(batch);
            }
            state = self.wake.wait(state).ok()?;
        }
    }
}

impl std::fmt::Debug for FeedbackHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedbackHub")
            .field("dir", &self.dir)
            .finish()
    }
}

/// The retrain worker loop: drain batches until shutdown. Failures are
/// counted and logged, never fatal — the WAL retains the records.
pub(crate) fn retrain_worker(registry: &ModelRegistry, hub: &FeedbackHub) {
    while let Some((name, batch, folded)) = hub.next_batch() {
        match retrain_one(registry, hub, &name, &batch, folded) {
            Ok(generation) => {
                lsd_obs::counter_add("serve.retrain_runs", "ok", 1);
                lsd_obs::gauge_max("serve.model_generation", "max", generation);
            }
            Err(e) => {
                lsd_obs::counter_add("serve.retrain_failures", "error", 1);
                eprintln!("lsd-serve: retrain of '{name}' failed: {e}");
            }
        }
        lsd_obs::flush();
    }
}

/// Folds one batch into a fresh generation of `name`:
/// clone the served model, re-match each recorded source under its
/// corrections (the constrained mapping is the new ground truth),
/// warm-train, snapshot, audit, install.
fn retrain_one(
    registry: &ModelRegistry,
    hub: &FeedbackHub,
    name: &str,
    batch: &[FeedbackRecord],
    folded: u64,
) -> Result<u64, ServeError> {
    let entry = registry.model(Some(name))?;
    let saved = entry
        .lsd
        .to_saved()
        .map_err(|e| internal(format!("cannot snapshot '{name}' for retraining: {e}")))?;
    let mut lsd = Lsd::from_saved(saved);

    let mut corrected = Vec::with_capacity(batch.len());
    for record in batch {
        let source = record
            .to_source()
            .map_err(|e| internal(format!("WAL record does not reconstruct: {e}")))?;
        let feedback = Feedback::from_corrections(record.corrections.clone());
        let outcome = lsd.match_source_with(&source, &feedback)?;
        corrected.push(TrainedSource {
            source,
            mapping: outcome.mapping().clone(),
        });
    }
    lsd.train_incremental(&corrected)?;
    lsd.set_feedback_applied(folded);
    lsd.ensure_servable()?;

    // Persist before installing, via temp + rename, so the on-disk snapshot
    // is never torn and never newer than what has actually been validated.
    let path = registry.snapshot_path(name);
    let tmp = path.with_extension("json.tmp");
    lsd.save_json(&tmp)
        .map_err(|e| internal(format!("cannot write retrained snapshot: {e}")))?;

    // Pre-hot-swap audit, always strict regardless of the registry's mode:
    // a corrupted warm-start (non-finite weights, label skew, a fold point
    // the WAL cannot back) must never replace the on-disk snapshot, let
    // alone be promoted to a live generation. On failure the temp file is
    // removed and the served model keeps running on its old generation; the
    // WAL retains the batch for the next restart.
    if let Err(e) = audit_before_swap(hub, name, &tmp) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }

    std::fs::rename(&tmp, &path)
        .map_err(|e| internal(format!("cannot install retrained snapshot: {e}")))?;

    let entry = registry.install_retrained(name, lsd)?;
    Ok(entry.generation)
}

/// Audits the candidate snapshot at `tmp` plus `name`'s WAL before the
/// rename that would make it the model's on-disk truth.
fn audit_before_swap(
    hub: &FeedbackHub,
    name: &str,
    tmp: &std::path::Path,
) -> Result<(), ServeError> {
    let text = std::fs::read_to_string(tmp)
        .map_err(|e| internal(format!("cannot read back retrained snapshot: {e}")))?;
    let (mut diags, summary) = lsd_analysis::audit_snapshot_with_summary(&text);
    // The WAL's own framing health is scanned non-destructively; its record
    // count must back the fold point this snapshot claims.
    match FeedbackWal::scan_file(hub.wal_path(name)) {
        Ok(scan) => {
            let ctx = lsd_analysis::WalAuditContext {
                labels: summary.labels.clone(),
                feedback_applied: summary.feedback_applied.min(scan.record_count()),
            };
            if summary.feedback_applied > scan.record_count() {
                return Err(ServeError::AuditFailed {
                    name: name.to_string(),
                    detail: format!(
                        "LSD214: retrained snapshot claims {} folded record(s) but the WAL \
                         holds only {}",
                        summary.feedback_applied,
                        scan.record_count()
                    ),
                });
            }
            // Another submit may be appending concurrently, so a torn tail
            // (a warning) is possible and tolerated; error-severity WAL
            // damage is not.
            let wal_bytes = std::fs::read(hub.wal_path(name)).unwrap_or_default();
            diags.extend(lsd_analysis::audit_wal(&wal_bytes, Some(&ctx)));
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(internal(format!("cannot scan WAL for audit: {e}"))),
    }
    crate::registry::record_audit(name, &diags, crate::registry::AuditMode::Strict)
}
