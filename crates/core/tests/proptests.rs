//! Property-based tests for the core pipeline's building blocks:
//! instance extraction, the meta-learner and the converter.

use lsd_core::{convert_column_with, extract_instances, CombinationRule, MetaLearner};
use lsd_learn::Prediction;
use lsd_xml::Element;
use proptest::prelude::*;

/// An arbitrary listing tree (bounded), with distinct-ish tag names.
fn arb_listing() -> impl Strategy<Value = Element> {
    let leaf =
        ("[a-z]{1,6}", "[a-z0-9 ]{0,12}").prop_map(|(name, text)| Element::text_leaf(name, text));
    leaf.prop_recursive(3, 20, 4, |inner| {
        ("[a-z]{1,6}", prop::collection::vec(inner, 1..4)).prop_map(|(name, children)| {
            let mut e = Element::new(name);
            for c in children {
                e.push_child(c);
            }
            e
        })
    })
}

proptest! {
    /// Extraction is exhaustive and faithful: each element occurrence of
    /// each listing appears in exactly one column, paths start at the
    /// listing root and end at the instance's own tag.
    #[test]
    fn extraction_covers_every_element(listings in prop::collection::vec(arb_listing(), 1..5)) {
        let columns = extract_instances(&listings);
        let extracted: usize = columns.values().map(Vec::len).sum();
        let expected: usize = listings.iter().map(Element::subtree_size).sum();
        prop_assert_eq!(extracted, expected);
        let roots: std::collections::HashSet<&str> =
            listings.iter().map(|l| l.name.as_str()).collect();
        for (tag, instances) in &columns {
            for instance in instances {
                prop_assert_eq!(&instance.element.name, tag);
                prop_assert_eq!(instance.path.last().map(String::as_str), Some(tag.as_str()));
                prop_assert!(roots.contains(instance.path[0].as_str()));
            }
        }
    }

    /// Meta-learner training on arbitrary CV sets yields non-negative
    /// weights, and its combinations are distributions for full learner
    /// sets and subsets alike.
    #[test]
    fn meta_combination_is_distribution(
        cv_scores in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0.01f64..1.0, 4), 10),
            3,
        ),
        truths in prop::collection::vec(0usize..4, 10),
        scores in prop::collection::vec(prop::collection::vec(0.01f64..1.0, 4), 3),
    ) {
        // 3 learners x 10 CV examples x 4 labels.
        let cv: Vec<Vec<Prediction>> = cv_scores
            .into_iter()
            .map(|learner| learner.into_iter().map(Prediction::from_scores).collect())
            .collect();
        let ml = MetaLearner::train(&cv, &truths, 4);
        for label in 0..4 {
            for learner in 0..3 {
                prop_assert!(ml.weight(label, learner) >= 0.0);
            }
        }
        let preds: Vec<Prediction> =
            scores.into_iter().map(Prediction::from_scores).collect();
        let combined = ml.combine(&preds);
        prop_assert!((combined.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let subset = ml.combine_subset(&preds[..2], &[0, 2]);
        prop_assert!((subset.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Every converter rule returns a distribution and agrees with the
    /// single-instance identity.
    #[test]
    fn converter_rules_well_behaved(
        column in prop::collection::vec(prop::collection::vec(0.01f64..1.0, 5), 1..8),
    ) {
        let preds: Vec<Prediction> =
            column.into_iter().map(Prediction::from_scores).collect();
        for rule in [CombinationRule::Average, CombinationRule::Max, CombinationRule::Median] {
            let out = convert_column_with(&preds, 5, rule);
            prop_assert!((out.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9, "{rule:?}");
            if preds.len() == 1 {
                for l in 0..5 {
                    prop_assert!((out.score(l) - preds[0].score(l)).abs() < 1e-9);
                }
            }
        }
    }
}
