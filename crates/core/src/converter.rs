//! The prediction converter (paper Section 3.2, step 2).
//!
//! Base learners and the meta-learner predict per *instance*; the constraint
//! handler needs one prediction per source *tag*. "The prediction converter
//! then combines the … predictions of the … data instances into a single
//! prediction … Currently, the prediction converter simply computes the
//! average score of each label from the given predictions." — the
//! "currently" invites alternatives, so the rule is pluggable:
//! [`CombinationRule::Average`] (the paper's), `Max` (optimistic: one very
//! confident instance decides) and `Median` (robust to outlier instances).

use lsd_learn::Prediction;
use serde::{Deserialize, Serialize};

/// How per-instance predictions merge into the tag-level prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CombinationRule {
    /// Per-label mean — the paper's converter.
    #[default]
    Average,
    /// Per-label maximum, renormalized: one confident instance suffices.
    Max,
    /// Per-label median, renormalized: robust to a few outlier instances.
    Median,
}

/// Converts per-instance predictions of one tag's column into the tag-level
/// prediction. An empty column yields the uniform distribution over
/// `num_labels` (nothing observed — no opinion).
pub fn convert_column(instance_predictions: &[Prediction], num_labels: usize) -> Prediction {
    convert_column_with(instance_predictions, num_labels, CombinationRule::Average)
}

/// [`convert_column`] under an explicit combination rule.
pub fn convert_column_with(
    instance_predictions: &[Prediction],
    num_labels: usize,
    rule: CombinationRule,
) -> Prediction {
    lsd_obs::counter_add("converter.conversions", "", 1);
    if instance_predictions.is_empty() {
        return Prediction::uniform(num_labels);
    }
    match rule {
        CombinationRule::Average => Prediction::average(instance_predictions.iter())
            .unwrap_or_else(|| Prediction::uniform(num_labels)),
        CombinationRule::Max => {
            let n = instance_predictions[0].len();
            let scores: Vec<f64> = (0..n)
                .map(|l| {
                    instance_predictions
                        .iter()
                        .map(|p| p.score(l))
                        .fold(0.0f64, f64::max)
                })
                .collect();
            Prediction::from_scores(scores)
        }
        CombinationRule::Median => {
            let n = instance_predictions[0].len();
            let scores: Vec<f64> = (0..n)
                .map(|l| {
                    let mut column: Vec<f64> =
                        instance_predictions.iter().map(|p| p.score(l)).collect();
                    column.sort_by(f64::total_cmp);
                    let mid = column.len() / 2;
                    if column.len() % 2 == 1 {
                        column[mid]
                    } else {
                        (column[mid - 1] + column[mid]) / 2.0
                    }
                })
                .collect();
            Prediction::from_scores(scores)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds() -> Vec<Prediction> {
        vec![
            Prediction::from_scores(vec![0.7, 0.2, 0.1]),
            Prediction::from_scores(vec![0.5, 0.2, 0.3]),
            Prediction::from_scores(vec![0.9, 0.09, 0.01]),
        ]
    }

    #[test]
    fn averages_instance_predictions() {
        // The paper's `area` column example (Section 3.2).
        let tag_pred = convert_column(&preds(), 3);
        assert!((tag_pred.score(0) - 0.7).abs() < 1e-9);
        assert_eq!(tag_pred.best_label(), 0);
    }

    #[test]
    fn empty_column_is_uniform_under_every_rule() {
        for rule in [
            CombinationRule::Average,
            CombinationRule::Max,
            CombinationRule::Median,
        ] {
            let p = convert_column_with(&[], 4, rule);
            assert!(
                p.scores().iter().all(|&s| (s - 0.25).abs() < 1e-12),
                "{rule:?}"
            );
        }
    }

    #[test]
    fn single_instance_passes_through() {
        let p = Prediction::from_scores(vec![0.6, 0.4]);
        for rule in [
            CombinationRule::Average,
            CombinationRule::Max,
            CombinationRule::Median,
        ] {
            assert_eq!(
                convert_column_with(std::slice::from_ref(&p), 2, rule),
                p,
                "{rule:?}"
            );
        }
    }

    #[test]
    fn max_rewards_single_confident_instance() {
        // Three mildly label-0 instances and one strongly label-1 outlier:
        // averaging stays with label 0 (mean 0.54 vs 0.46), max flips to
        // the single confident vote (0.95 vs 0.7).
        let column = vec![
            Prediction::from_scores(vec![0.7, 0.3]),
            Prediction::from_scores(vec![0.7, 0.3]),
            Prediction::from_scores(vec![0.7, 0.3]),
            Prediction::from_scores(vec![0.05, 0.95]),
        ];
        let avg = convert_column_with(&column, 2, CombinationRule::Average);
        let max = convert_column_with(&column, 2, CombinationRule::Max);
        assert_eq!(avg.best_label(), 0);
        assert_eq!(max.best_label(), 1);
    }

    #[test]
    fn median_shrugs_off_outliers() {
        let column = vec![
            Prediction::from_scores(vec![0.8, 0.2]),
            Prediction::from_scores(vec![0.7, 0.3]),
            Prediction::from_scores(vec![0.75, 0.25]),
            Prediction::from_scores(vec![0.0, 1.0]), // one corrupt instance
        ];
        let median = convert_column_with(&column, 2, CombinationRule::Median);
        assert_eq!(median.best_label(), 0);
        assert!(median.score(0) > 0.6);
    }

    #[test]
    fn outputs_are_distributions() {
        for rule in [
            CombinationRule::Average,
            CombinationRule::Max,
            CombinationRule::Median,
        ] {
            let p = convert_column_with(&preds(), 3, rule);
            assert!(
                (p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "{rule:?}"
            );
        }
    }
}
